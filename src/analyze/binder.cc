#include "analyze/binder.h"

#include <map>
#include <set>

#include "analyze/parser.h"
#include "cube/lattice.h"
#include "expr/conjuncts.h"

namespace mdjoin {
namespace analyze {

namespace {

/// One MD-join in the emitted chain: the default (unqualified) component or a
/// grouping variable.
struct Component {
  std::string var;  // "" for the default component
  ExprPtr theta;
  std::vector<AggSpec> aggs;
  std::set<std::string> output_names;  // for visibility checks downstream
};

struct BinderState {
  const Query* query;
  const Catalog* catalog;
  Schema detail_schema;
  std::set<std::string> attrs;          // analyze-by attributes
  std::vector<Component> components;    // [0] is the default component
  std::map<std::string, size_t> component_of_var;
  int hidden_counter = 0;
};

BinaryOp LowerBinaryOp(AstBinaryOp op) {
  switch (op) {
    case AstBinaryOp::kAdd:
      return BinaryOp::kAdd;
    case AstBinaryOp::kSub:
      return BinaryOp::kSub;
    case AstBinaryOp::kMul:
      return BinaryOp::kMul;
    case AstBinaryOp::kDiv:
      return BinaryOp::kDiv;
    case AstBinaryOp::kMod:
      return BinaryOp::kMod;
    case AstBinaryOp::kEq:
      return BinaryOp::kEq;
    case AstBinaryOp::kNe:
      return BinaryOp::kNe;
    case AstBinaryOp::kLt:
      return BinaryOp::kLt;
    case AstBinaryOp::kLe:
      return BinaryOp::kLe;
    case AstBinaryOp::kGt:
      return BinaryOp::kGt;
    case AstBinaryOp::kGe:
      return BinaryOp::kGe;
    case AstBinaryOp::kAnd:
      return BinaryOp::kAnd;
    case AstBinaryOp::kOr:
      return BinaryOp::kOr;
  }
  return BinaryOp::kAnd;
}

UnaryOp LowerUnaryOp(AstUnaryOp op) {
  switch (op) {
    case AstUnaryOp::kNot:
      return UnaryOp::kNot;
    case AstUnaryOp::kNegate:
      return UnaryOp::kNegate;
    case AstUnaryOp::kIsNull:
      return UnaryOp::kIsNull;
  }
  return UnaryOp::kNot;
}

/// Collects the grouping-variable qualifiers appearing in `e` (ignoring
/// nested aggregate calls, which bind their own frame).
void CollectQualifiers(const AstExprPtr& e, std::set<std::string>* out) {
  if (e == nullptr) return;
  if (e->kind == AstKind::kColumnRef) {
    if (!e->qualifier.empty()) out->insert(e->qualifier);
    return;
  }
  if (e->kind == AstKind::kAggCall) return;  // separate frame
  CollectQualifiers(e->left, out);
  CollectQualifiers(e->right, out);
  for (const auto& [when, then] : e->case_arms) {
    CollectQualifiers(when, out);
    CollectQualifiers(then, out);
  }
}

/// Lowers a single-frame scalar expression where column references resolve
/// against the detail tuple of variable `var` (qualified `var.col` or, when
/// `allow_unqualified_detail`, bare `col`) — used for WHERE clauses and
/// aggregate arguments.
Result<ExprPtr> LowerDetailScalar(const BinderState& state, const AstExprPtr& e,
                                  const std::string& var,
                                  bool allow_unqualified_detail) {
  switch (e->kind) {
    case AstKind::kLiteral:
      return Expr::Literal(e->literal);
    case AstKind::kColumnRef: {
      if (!e->qualifier.empty() && e->qualifier != var) {
        return Status::BindError("reference to '", e->qualifier, ".", e->column,
                                 "' is not valid in this context (expected '",
                                 var.empty() ? "<unqualified>" : var, "')");
      }
      if (e->qualifier.empty() && !allow_unqualified_detail) {
        return Status::BindError("unqualified column '", e->column,
                                 "' is not valid inside this aggregate argument; "
                                 "qualify it with the grouping variable");
      }
      MDJ_ASSIGN_OR_RETURN(int idx, state.detail_schema.GetFieldIndex(e->column));
      (void)idx;
      return Expr::ColumnRef(Side::kDetail, e->column);
    }
    case AstKind::kUnary: {
      MDJ_ASSIGN_OR_RETURN(
          ExprPtr operand,
          LowerDetailScalar(state, e->left, var, allow_unqualified_detail));
      return Expr::Unary(LowerUnaryOp(e->unary_op), std::move(operand));
    }
    case AstKind::kBinary: {
      MDJ_ASSIGN_OR_RETURN(ExprPtr l,
                           LowerDetailScalar(state, e->left, var,
                                             allow_unqualified_detail));
      MDJ_ASSIGN_OR_RETURN(ExprPtr r,
                           LowerDetailScalar(state, e->right, var,
                                             allow_unqualified_detail));
      return Expr::Binary(LowerBinaryOp(e->binary_op), std::move(l), std::move(r));
    }
    case AstKind::kIn: {
      MDJ_ASSIGN_OR_RETURN(
          ExprPtr operand,
          LowerDetailScalar(state, e->left, var, allow_unqualified_detail));
      return Expr::In(std::move(operand), e->in_list);
    }
    case AstKind::kCase: {
      std::vector<std::pair<ExprPtr, ExprPtr>> arms;
      for (const auto& [when_ast, then_ast] : e->case_arms) {
        MDJ_ASSIGN_OR_RETURN(
            ExprPtr when,
            LowerDetailScalar(state, when_ast, var, allow_unqualified_detail));
        MDJ_ASSIGN_OR_RETURN(
            ExprPtr then,
            LowerDetailScalar(state, then_ast, var, allow_unqualified_detail));
        arms.emplace_back(std::move(when), std::move(then));
      }
      ExprPtr else_expr;
      if (e->left != nullptr) {
        MDJ_ASSIGN_OR_RETURN(
            else_expr, LowerDetailScalar(state, e->left, var, allow_unqualified_detail));
      }
      return Expr::Case(std::move(arms), std::move(else_expr));
    }
    case AstKind::kAggCall:
      return Status::BindError("aggregate call not allowed inside this expression");
  }
  return Status::Internal("unreachable AST kind");
}

/// Registers an aggregate call on component `comp_index`, returning the
/// output column name (existing one when the same call was added before).
Result<std::string> AddAggregate(BinderState* state, size_t comp_index,
                                 const AstExprPtr& call,
                                 const std::string& explicit_name) {
  Component& comp = state->components[comp_index];
  MDJ_ASSIGN_OR_RETURN(const AggregateFunction* fn,
                       AggregateRegistry::Global()->Lookup(call->agg_name));
  (void)fn;
  ExprPtr arg;
  if (!call->agg_star) {
    MDJ_ASSIGN_OR_RETURN(
        arg, LowerDetailScalar(*state, call->left, comp.var,
                               /*allow_unqualified_detail=*/comp.var.empty()));
  }
  std::string name = explicit_name;
  if (name.empty()) {
    // Deduplicate identical calls (common when a condition and the SELECT
    // list both mention avg(X.sale)).
    // Within a component, count(*) and count(X.*) for this component's own
    // variable X are the same aggregate; normalize the signature to "*".
    std::string signature =
        call->agg_name + "(" + (arg ? arg->ToString() : std::string("*")) + ")";
    for (const AggSpec& existing : comp.aggs) {
      std::string have =
          existing.function + "(" +
          (existing.argument ? existing.argument->ToString() : "*") + ")";
      if (have == signature) return existing.output_name;
    }
    // Derived name: fn_col for simple arguments, fn_<n> otherwise, prefixed
    // with the variable for qualified aggregates.
    name = call->agg_name;
    if (!comp.var.empty()) name += "_" + comp.var;
    if (arg != nullptr && call->left->kind == AstKind::kColumnRef) {
      name += "_" + call->left->column;
    } else if (arg != nullptr) {
      name += "_expr" + std::to_string(state->hidden_counter++);
    }
  }
  // Uniquify across all components.
  for (const Component& c : state->components) {
    if (c.output_names.count(name)) {
      if (!explicit_name.empty()) {
        return Status::BindError("duplicate output column '", name, "'");
      }
      name += "_" + std::to_string(state->hidden_counter++);
    }
  }
  comp.aggs.push_back(AggSpec{call->agg_name, arg, name});
  comp.output_names.insert(name);
  return name;
}

/// Lowers a SUCH THAT condition for the binding at `comp_index`: unqualified
/// names are base attributes (or outputs of earlier components), `var.col`
/// is the detail tuple, and aggregate calls over earlier variables become
/// hidden base columns.
Result<ExprPtr> LowerCondition(BinderState* state, size_t comp_index,
                               const AstExprPtr& e) {
  const std::string& var = state->components[comp_index].var;
  switch (e->kind) {
    case AstKind::kLiteral:
      return Expr::Literal(e->literal);
    case AstKind::kColumnRef: {
      if (e->qualifier.empty()) {
        // Base attribute or an earlier component's output.
        if (state->attrs.count(e->column)) {
          return Expr::ColumnRef(Side::kBase, e->column);
        }
        for (size_t i = 0; i < comp_index; ++i) {
          if (state->components[i].output_names.count(e->column)) {
            return Expr::ColumnRef(Side::kBase, e->column);
          }
        }
        return Status::BindError(
            "unqualified name '", e->column,
            "' is neither an ANALYZE BY attribute nor an earlier aggregate output");
      }
      if (e->qualifier == var) return Expr::ColumnRef(Side::kDetail, e->column);
      return Status::BindError("condition for variable '", var,
                               "' may not reference tuples of variable '",
                               e->qualifier, "' directly; aggregate them instead");
    }
    case AstKind::kUnary: {
      MDJ_ASSIGN_OR_RETURN(ExprPtr operand, LowerCondition(state, comp_index, e->left));
      return Expr::Unary(LowerUnaryOp(e->unary_op), std::move(operand));
    }
    case AstKind::kBinary: {
      MDJ_ASSIGN_OR_RETURN(ExprPtr l, LowerCondition(state, comp_index, e->left));
      MDJ_ASSIGN_OR_RETURN(ExprPtr r, LowerCondition(state, comp_index, e->right));
      return Expr::Binary(LowerBinaryOp(e->binary_op), std::move(l), std::move(r));
    }
    case AstKind::kIn: {
      MDJ_ASSIGN_OR_RETURN(ExprPtr operand, LowerCondition(state, comp_index, e->left));
      return Expr::In(std::move(operand), e->in_list);
    }
    case AstKind::kCase: {
      std::vector<std::pair<ExprPtr, ExprPtr>> arms;
      for (const auto& [when_ast, then_ast] : e->case_arms) {
        MDJ_ASSIGN_OR_RETURN(ExprPtr when, LowerCondition(state, comp_index, when_ast));
        MDJ_ASSIGN_OR_RETURN(ExprPtr then, LowerCondition(state, comp_index, then_ast));
        arms.emplace_back(std::move(when), std::move(then));
      }
      ExprPtr else_expr;
      if (e->left != nullptr) {
        MDJ_ASSIGN_OR_RETURN(else_expr, LowerCondition(state, comp_index, e->left));
      }
      return Expr::Case(std::move(arms), std::move(else_expr));
    }
    case AstKind::kAggCall: {
      // avg(X.sale): which variable does the argument aggregate?
      std::set<std::string> quals;
      CollectQualifiers(e->left, &quals);
      if (e->agg_star && !e->star_qualifier.empty()) {
        quals.insert(e->star_qualifier);  // count(X.*) counts X's tuples
      } else if (e->agg_star) {
        return Status::BindError(
            "count(*) inside a condition must qualify a variable, e.g. count(X.*)");
      }
      if (quals.size() != 1) {
        return Status::BindError("aggregate in a condition must reference exactly one "
                                 "grouping variable, e.g. avg(X.sale)");
      }
      const std::string& target = *quals.begin();
      auto it = state->component_of_var.find(target);
      if (it == state->component_of_var.end()) {
        return Status::BindError("unknown grouping variable '", target, "'");
      }
      if (it->second >= comp_index) {
        return Status::BindError("variable '", target,
                                 "' is not defined before '", var,
                                 "'; aggregates may only reference earlier variables");
      }
      MDJ_ASSIGN_OR_RETURN(std::string hidden,
                           AddAggregate(state, it->second, e, /*explicit_name=*/""));
      return Expr::ColumnRef(Side::kBase, hidden);
    }
  }
  return Status::Internal("unreachable AST kind");
}

Result<PlanPtr> BuildBasePlan(const BinderState& state, const PlanPtr& detail_plan) {
  const BaseGen& gen = state.query->base;
  switch (gen.kind) {
    case BaseGenKind::kGroup: {
      std::vector<ProjectItem> items;
      for (const std::string& a : gen.attrs) {
        items.push_back({Expr::ColumnRef(Side::kDetail, a), a});
      }
      return DistinctPlan(ProjectPlan(detail_plan, std::move(items)));
    }
    case BaseGenKind::kCube:
      return CubeBasePlan(detail_plan, gen.attrs);
    case BaseGenKind::kRollup: {
      std::vector<PlanPtr> pieces;
      for (int k = static_cast<int>(gen.attrs.size()); k >= 0; --k) {
        CuboidMask mask = (CuboidMask{1} << k) - 1;
        pieces.push_back(CuboidBasePlan(detail_plan, gen.attrs, mask));
      }
      return UnionPlan(std::move(pieces));
    }
    case BaseGenKind::kUnpivot: {
      std::vector<PlanPtr> pieces;
      for (size_t i = 0; i < gen.attrs.size(); ++i) {
        pieces.push_back(CuboidBasePlan(detail_plan, gen.attrs, CuboidMask{1} << i));
      }
      return UnionPlan(std::move(pieces));
    }
    case BaseGenKind::kGroupingSets: {
      std::vector<PlanPtr> pieces;
      for (const std::vector<std::string>& set : gen.sets) {
        CuboidMask mask = 0;
        for (const std::string& a : set) {
          for (size_t i = 0; i < gen.attrs.size(); ++i) {
            if (gen.attrs[i] == a) mask |= CuboidMask{1} << i;
          }
        }
        pieces.push_back(CuboidBasePlan(detail_plan, gen.attrs, mask));
      }
      return UnionPlan(std::move(pieces));
    }
    case BaseGenKind::kTable: {
      // Example 2.4: base values handed in as a table. Normalize column order
      // to the declared attribute list.
      std::vector<ProjectItem> items;
      for (const std::string& a : gen.attrs) {
        items.push_back({Expr::ColumnRef(Side::kDetail, a), a});
      }
      return ProjectPlan(TableRef(gen.table_name), std::move(items));
    }
  }
  return Status::Internal("unreachable generator kind");
}

}  // namespace

Result<BoundQuery> BindQuery(const Query& query, const Catalog& catalog) {
  BinderState state;
  state.query = &query;
  state.catalog = &catalog;

  // Detail relation (+ WHERE).
  PlanPtr detail_plan = TableRef(query.from_table);
  MDJ_ASSIGN_OR_RETURN(state.detail_schema, InferSchema(detail_plan, catalog));
  if (query.where != nullptr) {
    MDJ_ASSIGN_OR_RETURN(ExprPtr where,
                         LowerDetailScalar(state, query.where, /*var=*/"",
                                           /*allow_unqualified_detail=*/true));
    detail_plan = FilterPlan(detail_plan, std::move(where));
  }

  // ANALYZE BY attributes must exist on the detail relation (for kTable
  // generators they must also exist on the base table; InferSchema of the
  // base plan checks that below).
  if (query.base.attrs.empty()) {
    return Status::BindError("ANALYZE BY needs at least one attribute");
  }
  for (const std::string& a : query.base.attrs) {
    MDJ_ASSIGN_OR_RETURN(int idx, state.detail_schema.GetFieldIndex(a));
    (void)idx;
    state.attrs.insert(a);
  }

  MDJ_ASSIGN_OR_RETURN(PlanPtr base_plan, BuildBasePlan(state, detail_plan));
  MDJ_ASSIGN_OR_RETURN(Schema base_schema, InferSchema(base_plan, catalog));
  (void)base_schema;

  // Component 0: the default (unqualified) grouping — θ is attribute
  // equality, the classical GROUP BY link.
  {
    Component def;
    std::vector<ExprPtr> eqs;
    for (const std::string& a : query.base.attrs) {
      eqs.push_back(Expr::Binary(BinaryOp::kEq, Expr::ColumnRef(Side::kBase, a),
                                 Expr::ColumnRef(Side::kDetail, a)));
    }
    def.theta = CombineConjuncts(std::move(eqs));
    state.components.push_back(std::move(def));
  }
  // One component per SUCH THAT binding, in declaration order.
  for (const Binding& b : query.bindings) {
    if (b.var.empty() || state.component_of_var.count(b.var)) {
      return Status::BindError("duplicate or empty grouping-variable name '", b.var,
                               "'");
    }
    Component comp;
    comp.var = b.var;
    state.component_of_var[b.var] = state.components.size();
    state.components.push_back(std::move(comp));
  }
  // Lower conditions (may add hidden aggregates to earlier components).
  for (const Binding& b : query.bindings) {
    size_t idx = state.component_of_var[b.var];
    MDJ_ASSIGN_OR_RETURN(ExprPtr theta, LowerCondition(&state, idx, b.condition));
    state.components[idx].theta = std::move(theta);
  }

  // SELECT list: resolve columns and attach aggregates to components.
  std::vector<std::string> output_columns;
  for (const SelectItem& item : query.select) {
    if (item.expr->kind == AstKind::kColumnRef) {
      if (!item.expr->qualifier.empty()) {
        return Status::BindError("SELECT columns must be unqualified attributes");
      }
      if (!state.attrs.count(item.expr->column)) {
        return Status::BindError("SELECT column '", item.expr->column,
                                 "' is not an ANALYZE BY attribute");
      }
      output_columns.push_back(item.alias.value_or(item.expr->column));
      continue;
    }
    // Aggregate call: route to the right component.
    std::set<std::string> quals;
    CollectQualifiers(item.expr->left, &quals);
    if (item.expr->agg_star && !item.expr->star_qualifier.empty()) {
      quals.insert(item.expr->star_qualifier);  // count(X.*)
    }
    size_t comp_index = 0;
    if (quals.size() == 1) {
      auto it = state.component_of_var.find(*quals.begin());
      if (it == state.component_of_var.end()) {
        return Status::BindError("unknown grouping variable '", *quals.begin(), "'");
      }
      comp_index = it->second;
    } else if (!quals.empty()) {
      return Status::BindError(
          "an aggregate may reference at most one grouping variable");
    }
    MDJ_ASSIGN_OR_RETURN(
        std::string name,
        AddAggregate(&state, comp_index, item.expr, item.alias.value_or("")));
    output_columns.push_back(std::move(name));
  }

  // Emit the MD-join chain (components with no aggregates contribute nothing
  // and are skipped).
  PlanPtr current = base_plan;
  for (const Component& comp : state.components) {
    if (comp.aggs.empty()) continue;
    current = MdJoinPlan(current, detail_plan, comp.aggs, comp.theta);
  }

  // Final projection: the SELECT list in order. Renames attribute aliases
  // and hides internal columns.
  std::vector<ProjectItem> final_items;
  for (size_t i = 0; i < query.select.size(); ++i) {
    const SelectItem& item = query.select[i];
    std::string source = item.expr->kind == AstKind::kColumnRef ? item.expr->column
                                                                : output_columns[i];
    final_items.push_back({Expr::ColumnRef(Side::kDetail, source), output_columns[i]});
  }
  BoundQuery bound;
  bound.plan = ProjectPlan(std::move(current), std::move(final_items));
  bound.output_columns = std::move(output_columns);

  // HAVING: a post-aggregation filter over the SELECT outputs.
  if (query.having != nullptr) {
    MDJ_ASSIGN_OR_RETURN(Schema out_schema, InferSchema(bound.plan, catalog));
    BinderState having_state = state;
    having_state.detail_schema = out_schema;
    MDJ_ASSIGN_OR_RETURN(ExprPtr having,
                         LowerDetailScalar(having_state, query.having, /*var=*/"",
                                           /*allow_unqualified_detail=*/true));
    bound.plan = FilterPlan(bound.plan, std::move(having));
  }

  // ORDER BY: output columns only.
  if (!query.order_by.empty()) {
    std::vector<std::string> columns;
    std::vector<bool> ascending;
    for (const OrderItem& item : query.order_by) {
      bool known = false;
      for (const std::string& out : bound.output_columns) known = known || out == item.column;
      if (!known) {
        return Status::BindError("ORDER BY column '", item.column,
                                 "' is not in the SELECT list");
      }
      columns.push_back(item.column);
      ascending.push_back(item.ascending);
    }
    bound.plan = SortPlan(bound.plan, std::move(columns), std::move(ascending));
  }

  // Type-check the whole plan before returning it.
  MDJ_ASSIGN_OR_RETURN(Schema final_schema, InferSchema(bound.plan, catalog));
  (void)final_schema;
  return bound;
}

Result<BoundQuery> BindQueryString(const std::string& sql, const Catalog& catalog) {
  MDJ_ASSIGN_OR_RETURN(Query query, ParseQuery(sql));
  return BindQuery(query, catalog);
}

Result<BoundQuery> BindEmfQueryString(const std::string& sql, const Catalog& catalog) {
  MDJ_ASSIGN_OR_RETURN(Query query, ParseEmfQuery(sql));
  return BindQuery(query, catalog);
}

}  // namespace analyze
}  // namespace mdjoin
