#ifndef MDJOIN_ANALYZE_RANGE_ANALYSIS_H_
#define MDJOIN_ANALYZE_RANGE_ANALYSIS_H_

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "types/value.h"

namespace mdjoin {

/// Interval + null-domain abstract interpretation over θ-conditions.
///
/// For every column θ references, the analysis derives the set of Values that
/// column *may* hold in a (b, t) pair satisfying θ, as an element of a finite
/// abstract domain: presence flags for the NULL / ALL / numeric / string
/// payload classes, plus an interval (open or closed endpoints) per ordered
/// class. Conjuncts refine by meet; OR takes the join of its arms. The domain
/// starts at Top (any value), so everything derived is a *sound upper bound*:
/// if θ evaluates truthy on a pair, every derived fact admits the actual
/// column values (the differential fuzz suite checks exactly this).
///
/// Three consumers:
///  - the optimizer: a Bottom element (or a constant-false conjunct) proves θ
///    statically unsatisfiable, licensing the empty-detail rewrite
///    (CertifyUnsatTheta in plan_analyzer.h);
///  - ROADMAP item 1: detail-side facts export as ZoneMapPredicate, the
///    block-pruning hook for per-block min/max zone maps;
///  - EXPLAIN: facts render in the "static analysis" section.
///
/// Semantics pinned by expr/eval_ops.h that the transfer functions encode:
/// ordered comparisons are false on NULL, ALL, or mixed numeric/string
/// operands; θ-equality treats ALL as a wildcard (so facts derived from
/// `col = lit` keep may_be_all — `x = 5 AND x = 10` is satisfiable, by ALL);
/// NaN compares neither less nor greater, so `col <= NaN` is true for every
/// numeric col and NaN never becomes an interval endpoint.

/// Abstract over-approximation of one column's value set. Top admits
/// everything; IsEmpty() is the Bottom element (no concrete value admitted).
struct ValueRange {
  bool may_be_null = true;
  bool may_be_all = true;
  bool may_be_numeric = true;
  bool may_be_string = true;
  /// Tracked separately from the interval because Value::Compare orders NaN
  /// equal to every number: a NaN cell passes `col <= k` and `col >= k` for
  /// any k, so it belongs to no interval yet satisfies non-strict bounds.
  bool may_be_nan = true;

  // Numeric window, meaningful while may_be_numeric. Endpoints are never NaN.
  double num_lo = -std::numeric_limits<double>::infinity();
  double num_hi = std::numeric_limits<double>::infinity();
  bool num_lo_open = false;
  bool num_hi_open = false;

  // String window; an unset bound is unbounded.
  std::optional<std::string> str_lo;
  std::optional<std::string> str_hi;
  bool str_lo_open = false;
  bool str_hi_open = false;

  static ValueRange Top() { return ValueRange(); }

  bool IsTop() const;
  /// The numeric (resp. string) class admits no value.
  bool NumericEmpty() const;
  bool StringEmpty() const;
  /// Bottom: no concrete Value is admitted — a conjunct constraining a
  /// column to this range is unsatisfiable.
  bool IsEmpty() const;

  /// Greatest lower bound (conjunction of constraints).
  void MeetWith(const ValueRange& other);
  /// Least upper bound (disjunction of constraints).
  void JoinWith(const ValueRange& other);

  /// The soundness predicate: may a column holding `v` satisfy the
  /// constraints this range abstracts?
  bool Admits(const Value& v) const;

  /// e.g. "num:(5, inf] str:none null:no all:yes".
  std::string ToString() const;
};

/// One derived fact: in any pair satisfying θ, column `column` of `side` holds
/// a value admitted by `range`.
struct RangeFact {
  Side side = Side::kDetail;
  std::string column;
  ValueRange range;
  /// Derived through an Observation-4.1 equi conjunct from the opposite
  /// side's facts rather than from a direct constraint on this column.
  bool from_transfer = false;

  std::string ToString() const;  // "R.sale ∈ num:[1, 500] null:no all:yes"
};

/// Block-pruning export for ROADMAP item 1 (out-of-core columnar blocks with
/// per-block min/max zone maps): a detail-column predicate a block reader can
/// test against block statistics before decompressing anything.
struct ZoneMapPredicate {
  std::string column;  // detail-relation column name
  double num_lo = -std::numeric_limits<double>::infinity();
  double num_hi = std::numeric_limits<double>::infinity();
  bool num_lo_open = false;
  bool num_hi_open = false;
  bool allow_null = true;
  /// The column may satisfy θ with a non-numeric payload (string or the ALL
  /// marker); numeric zone-map stats cannot prune such blocks.
  bool allow_non_numeric = true;
  /// A NaN cell may satisfy θ; min/max stats do not witness NaN presence.
  bool allow_nan = true;
  /// Per-class refinement of allow_non_numeric for readers that track payload
  /// classes separately (storage/block_format's per-class zone counts): may an
  /// ALL marker (resp. a string payload) satisfy θ, and if strings may, the
  /// admitted string window. allow_non_numeric stays `allow_all ||
  /// allow_string` so CouldMatch keeps its original conservative contract.
  bool allow_all = true;
  bool allow_string = true;
  std::optional<std::string> str_lo;  // unset bound = unbounded
  std::optional<std::string> str_hi;
  bool str_lo_open = false;
  bool str_hi_open = false;

  /// Conservative test: may a block whose numeric values span
  /// [block_min, block_max] (with `block_has_null` marking stored NULLs)
  /// contain a row satisfying the predicate? Never returns false for a block
  /// holding a qualifying row.
  bool CouldMatch(double block_min, double block_max, bool block_has_null) const;

  /// String analogue over a block's string payload window [block_str_min,
  /// block_str_max]. False when strings cannot satisfy θ at all or the windows
  /// are disjoint; only meaningful for blocks that do hold string cells.
  bool CouldMatchString(const std::string& block_str_min,
                        const std::string& block_str_max) const;

  std::string ToString() const;
};

/// The full analysis result for one θ.
struct RangeAnalysis {
  /// False when θ provably evaluates non-truthy on every pair: some column's
  /// range met to Bottom, or a constant conjunct folded false.
  bool satisfiable = true;
  std::string unsat_reason;  // set when !satisfiable

  std::vector<RangeFact> facts;
  std::vector<ZoneMapPredicate> zone_predicates;  // detail-side facts only

  const RangeFact* FindFact(Side side, const std::string& column) const;
  std::string ToString() const;  // one line per fact / the unsat reason
};

/// Runs the abstract interpreter over θ's conjuncts (plan_analyzer's
/// classification). A null θ is trivially true: satisfiable, no facts.
RangeAnalysis AnalyzeRanges(const ExprPtr& theta);

}  // namespace mdjoin

#endif  // MDJOIN_ANALYZE_RANGE_ANALYSIS_H_
