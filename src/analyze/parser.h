#ifndef MDJOIN_ANALYZE_PARSER_H_
#define MDJOIN_ANALYZE_PARSER_H_

#include <string>

#include "analyze/ast.h"
#include "common/result.h"

namespace mdjoin {
namespace analyze {

/// Parses one query of the §5 dialect:
///
///   SELECT item [, item ...]
///   FROM table
///   [WHERE condition]
///   ANALYZE BY generator(attrs)
///   [SUCH THAT var: condition [, var: condition ...]]
///   [;]
///
/// where `generator` is one of group, cube, rollup, unpivot,
/// grouping_sets((a,b),(c),()), or any table name (table-driven base values,
/// Example 2.4). SELECT items are analyze-by attributes or aggregate calls
/// like sum(sale), count(*), avg(X.sale) [AS name]; conditions support
/// and/or/not, comparisons, arithmetic, IN, BETWEEN, IS NULL, and aggregate
/// calls over grouping variables (avg(X.sale)).
Result<Query> ParseQuery(const std::string& input);

/// Parses the paper's literal EMF-SQL shape ([Cha99], quoted in §5):
///
///   SELECT prod, month, count(Z.*)
///   FROM Sales WHERE year = 1997
///   GROUP BY prod, month ; X, Y, Z
///   SUCH THAT X.prod = prod and X.month = month - 1,
///             Y.prod = prod and Y.month = month + 1,
///             Z.prod = prod and Z.month = month and
///             Z.sale > avg(X.sale) and Z.sale < avg(Y.sale)
///
/// The i-th SUCH THAT condition binds the i-th declared variable. Produces
/// the same Query AST as the ANALYZE BY dialect (base generator = group).
Result<Query> ParseEmfQuery(const std::string& input);

}  // namespace analyze
}  // namespace mdjoin

#endif  // MDJOIN_ANALYZE_PARSER_H_
