#include "analyze/range_analysis.h"

#include <cmath>
#include <map>
#include <set>

#include "analyze/plan_analyzer.h"
#include "common/string_util.h"
#include "expr/compile.h"
#include "obs/metrics.h"

namespace mdjoin {

namespace {

bool IsInf(double v) { return std::isinf(v); }

std::string Endpoint(double v) {
  if (IsInf(v)) return v < 0 ? "-inf" : "inf";
  return FormatDouble(v);
}

/// (side, column) key for the per-column constraint maps.
struct ColKey {
  Side side;
  std::string name;
  bool operator<(const ColKey& other) const {
    if (side != other.side) return side == Side::kBase;
    return name < other.name;
  }
};

std::string ColKeyToString(const ColKey& k) {
  return StrCat(k.side == Side::kBase ? "B." : "R.", k.name);
}

/// The constraints implied by "this expression evaluates truthy": a range per
/// referenced column (absent column = unconstrained), plus an always-false
/// marker for expressions no row pair can satisfy.
struct Constraints {
  std::map<ColKey, ValueRange> cols;
  bool always_false = false;
  std::string false_reason;
};

Constraints AlwaysFalse(const ExprPtr& source) {
  Constraints c;
  c.always_false = true;
  c.false_reason = source->ToString();
  return c;
}

ValueRange NotNull() {
  ValueRange r;
  r.may_be_null = false;
  return r;
}

/// Ordered comparisons and Ne exclude both NULL and ALL operands.
ValueRange OrderedOperand() {
  ValueRange r;
  r.may_be_null = false;
  r.may_be_all = false;
  return r;
}

void Constrain(Constraints* c, Side side, const std::string& name, const ValueRange& r) {
  ColKey key{side, name};
  auto [it, inserted] = c->cols.emplace(key, r);
  if (!inserted) it->second.MeetWith(r);
}

/// `col OP lit` with a numeric or string literal (never NULL/ALL here; those
/// are handled by the caller). Returns the range the column is confined to.
ValueRange RangeFromCompare(BinaryOp op, const Value& lit, bool* always_false) {
  *always_false = false;
  ValueRange r;
  if (lit.is_numeric()) {
    double k = lit.AsDouble();
    bool nan_lit = std::isnan(k);
    switch (op) {
      case BinaryOp::kEq:
        r.may_be_null = false;
        r.may_be_string = false;
        if (nan_lit) {
          // Equals(x, NaN) is false for every number: only ALL matches.
          r.may_be_numeric = false;
          r.may_be_nan = false;
        } else {
          r.num_lo = r.num_hi = k;
          r.may_be_nan = false;
        }
        return r;
      case BinaryOp::kNe:
        return OrderedOperand();
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        r = OrderedOperand();
        r.may_be_string = false;  // mixed numeric/string compares are false
        if (nan_lit) {
          // Value::Compare orders NaN equal to everything: strict bounds
          // against NaN never hold, non-strict ones always do (numerics).
          if (op == BinaryOp::kLt || op == BinaryOp::kGt) *always_false = true;
          return r;
        }
        if (op == BinaryOp::kLt || op == BinaryOp::kLe) {
          r.num_hi = k;
          r.num_hi_open = op == BinaryOp::kLt;
        } else {
          r.num_lo = k;
          r.num_lo_open = op == BinaryOp::kGt;
        }
        // A NaN cell compares equal to k, so it passes Le/Ge but not Lt/Gt.
        r.may_be_nan = op == BinaryOp::kLe || op == BinaryOp::kGe;
        return r;
      }
      default:
        break;
    }
    return ValueRange::Top();
  }
  // String literal.
  const std::string& s = lit.string();
  switch (op) {
    case BinaryOp::kEq:
      r.may_be_null = false;
      r.may_be_numeric = false;
      r.may_be_nan = false;
      r.str_lo = s;
      r.str_hi = s;
      return r;
    case BinaryOp::kNe:
      return OrderedOperand();
    case BinaryOp::kLt:
    case BinaryOp::kLe:
      r = OrderedOperand();
      r.may_be_numeric = false;
      r.may_be_nan = false;
      r.str_hi = s;
      r.str_hi_open = op == BinaryOp::kLt;
      return r;
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      r = OrderedOperand();
      r.may_be_numeric = false;
      r.may_be_nan = false;
      r.str_lo = s;
      r.str_lo_open = op == BinaryOp::kGt;
      return r;
    default:
      break;
  }
  return ValueRange::Top();
}

BinaryOp FlipCompare(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

bool IsCompare(BinaryOp op) {
  return op == BinaryOp::kEq || op == BinaryOp::kNe || op == BinaryOp::kLt ||
         op == BinaryOp::kLe || op == BinaryOp::kGt || op == BinaryOp::kGe;
}

/// The transfer function: constraints implied by `e` being truthy. Returns
/// nullopt when nothing is derivable (the conjunct contributes Top — always
/// sound, never wrong).
std::optional<Constraints> DeriveTruthy(const ExprPtr& e) {
  if (e == nullptr) return std::nullopt;
  // Column-free subtree: fold it. (ClassifyTheta folds constants before
  // splitting, but OR arms and hand-built θs still reach here unfolded.)
  if (!e->ReferencesSide(Side::kBase) && !e->ReferencesSide(Side::kDetail)) {
    Result<Value> v = EvalConstExpr(e);
    if (!v.ok()) return std::nullopt;
    if (v->IsTruthy()) return Constraints{};
    return AlwaysFalse(e);
  }
  switch (e->kind()) {
    case ExprKind::kColumnRef: {
      // Bare column as a conjunct: IsTruthy requires a non-zero int64.
      ValueRange r = OrderedOperand();
      r.may_be_string = false;
      r.may_be_nan = false;
      Constraints c;
      Constrain(&c, e->side(), e->column_name(), r);
      return c;
    }
    case ExprKind::kUnary: {
      const ExprPtr& in = e->operand();
      if (e->unary_op() == UnaryOp::kIsNull && in->kind() == ExprKind::kColumnRef) {
        ValueRange r;  // NULL only
        r.may_be_all = false;
        r.may_be_numeric = false;
        r.may_be_string = false;
        r.may_be_nan = false;
        Constraints c;
        Constrain(&c, in->side(), in->column_name(), r);
        return c;
      }
      if (e->unary_op() == UnaryOp::kNot && in->kind() == ExprKind::kUnary &&
          in->unary_op() == UnaryOp::kIsNull &&
          in->operand()->kind() == ExprKind::kColumnRef) {
        const ExprPtr& col = in->operand();
        Constraints c;
        Constrain(&c, col->side(), col->column_name(), NotNull());
        return c;
      }
      return std::nullopt;
    }
    case ExprKind::kIn: {
      const ExprPtr& in = e->operand();
      if (in->kind() != ExprKind::kColumnRef) return std::nullopt;
      const std::vector<Value>& cands = e->candidates();
      bool any_non_null = false, any_all = false;
      ValueRange r;
      r.may_be_null = false;
      r.may_be_numeric = false;
      r.may_be_string = false;
      r.may_be_nan = false;  // Equals(NaN, cand) is false for every candidate
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      std::optional<std::string> slo, shi;
      for (const Value& cand : cands) {
        if (cand.is_null()) continue;  // MatchesEq(v, NULL) never holds
        any_non_null = true;
        if (cand.is_all()) {
          any_all = true;
          continue;
        }
        if (cand.is_numeric()) {
          double k = cand.AsDouble();
          if (std::isnan(k)) continue;  // matched only by ALL, handled above
          r.may_be_numeric = true;
          lo = std::min(lo, k);
          hi = std::max(hi, k);
        } else if (cand.is_string()) {
          r.may_be_string = true;
          if (!slo || cand.string() < *slo) slo = cand.string();
          if (!shi || cand.string() > *shi) shi = cand.string();
        }
      }
      if (!any_non_null) return AlwaysFalse(e);
      if (any_all) {
        // An ALL candidate matches every non-null value: only NULL is ruled
        // out.
        Constraints c;
        Constrain(&c, in->side(), in->column_name(), NotNull());
        return c;
      }
      // may_be_all stays true: an ALL cell matches any non-null candidate.
      if (r.may_be_numeric) {
        r.num_lo = lo;
        r.num_hi = hi;
      }
      r.str_lo = slo;
      r.str_hi = shi;
      Constraints c;
      Constrain(&c, in->side(), in->column_name(), r);
      return c;
    }
    case ExprKind::kBinary: {
      BinaryOp op = e->binary_op();
      const ExprPtr& l = e->left();
      const ExprPtr& r = e->right();
      if (op == BinaryOp::kAnd) {
        // Both arms are truthy: union of constraints, met per column.
        std::optional<Constraints> a = DeriveTruthy(l);
        std::optional<Constraints> b = DeriveTruthy(r);
        if (!a && !b) return std::nullopt;
        Constraints out = a ? std::move(*a) : Constraints{};
        if (b) {
          if (b->always_false && !out.always_false) {
            out.always_false = true;
            out.false_reason = b->false_reason;
          }
          for (auto& [key, range] : b->cols) Constrain(&out, key.side, key.name, range);
        }
        return out;
      }
      if (op == BinaryOp::kOr) {
        // Either arm may hold: join per column, and only columns constrained
        // by BOTH arms stay constrained.
        std::optional<Constraints> a = DeriveTruthy(l);
        std::optional<Constraints> b = DeriveTruthy(r);
        if (!a || !b) return std::nullopt;
        if (a->always_false) return b;
        if (b->always_false) return a;
        Constraints out;
        for (auto& [key, range] : a->cols) {
          auto it = b->cols.find(key);
          if (it == b->cols.end()) continue;
          ValueRange joined = range;
          joined.JoinWith(it->second);
          out.cols.emplace(key, std::move(joined));
        }
        return out;
      }
      if (!IsCompare(op)) return std::nullopt;
      // Normalize to col OP rhs.
      const ExprPtr* col = nullptr;
      const ExprPtr* other = nullptr;
      if (l->kind() == ExprKind::kColumnRef) {
        col = &l;
        other = &r;
      } else if (r->kind() == ExprKind::kColumnRef) {
        col = &r;
        other = &l;
        op = FlipCompare(op);
      } else {
        return std::nullopt;
      }
      if ((*other)->kind() == ExprKind::kColumnRef) {
        // col ⋈ col (either side): both operands exclude NULL, and ordered
        // operators exclude ALL as well.
        ValueRange operand = op == BinaryOp::kEq ? NotNull() : OrderedOperand();
        Constraints c;
        Constrain(&c, (*col)->side(), (*col)->column_name(), operand);
        Constrain(&c, (*other)->side(), (*other)->column_name(), operand);
        return c;
      }
      if ((*other)->kind() != ExprKind::kLiteral) return std::nullopt;
      const Value& lit = (*other)->literal();
      if (lit.is_null()) return AlwaysFalse(e);  // every compare vs NULL is false
      if (lit.is_all()) {
        if (op == BinaryOp::kEq) {
          // ALL is the θ-equality wildcard: matches any non-null value.
          Constraints c;
          Constrain(&c, (*col)->side(), (*col)->column_name(), NotNull());
          return c;
        }
        return AlwaysFalse(e);  // Ne/ordered against ALL never hold
      }
      bool always_false = false;
      ValueRange range = RangeFromCompare(op, lit, &always_false);
      if (always_false) return AlwaysFalse(e);
      if (range.IsTop()) return std::nullopt;
      Constraints c;
      Constrain(&c, (*col)->side(), (*col)->column_name(), range);
      return c;
    }
    default:
      return std::nullopt;
  }
}

/// Observation 4.1 as a fact-transfer rule: for a plain-column equi conjunct
/// B.x = R.y, a satisfying pair has MatchesEq(b.x, t.y). When the facts
/// confine B.x to non-ALL payloads, t.y is either ALL (the wildcard) or a
/// value Equals-equal to b.x — so B.x's payload classes and windows carry
/// over to R.y with NULL removed and ALL re-admitted. Symmetric in the other
/// direction.
ValueRange TransferThrough(const ValueRange& from) {
  ValueRange to = from;
  to.may_be_null = false;
  to.may_be_all = true;
  return to;
}

}  // namespace

// ---------------------------------------------------------------------------
// ValueRange
// ---------------------------------------------------------------------------

bool ValueRange::IsTop() const {
  return may_be_null && may_be_all && may_be_numeric && may_be_string && may_be_nan &&
         IsInf(num_lo) && num_lo < 0 && IsInf(num_hi) && num_hi > 0 && !str_lo &&
         !str_hi;
}

bool ValueRange::NumericEmpty() const {
  if (!may_be_numeric) return true;
  bool window_empty =
      num_lo > num_hi || (num_lo == num_hi && (num_lo_open || num_hi_open));
  return window_empty && !may_be_nan;
}

bool ValueRange::StringEmpty() const {
  if (!may_be_string) return true;
  if (!str_lo || !str_hi) return false;
  return *str_lo > *str_hi ||
         (*str_lo == *str_hi && (str_lo_open || str_hi_open));
}

bool ValueRange::IsEmpty() const {
  return !may_be_null && !may_be_all && NumericEmpty() && StringEmpty();
}

void ValueRange::MeetWith(const ValueRange& other) {
  may_be_null = may_be_null && other.may_be_null;
  may_be_all = may_be_all && other.may_be_all;
  may_be_nan = may_be_nan && other.may_be_nan;
  may_be_string = may_be_string && other.may_be_string;
  if (may_be_numeric && other.may_be_numeric) {
    if (other.num_lo > num_lo) {
      num_lo = other.num_lo;
      num_lo_open = other.num_lo_open;
    } else if (other.num_lo == num_lo) {
      num_lo_open = num_lo_open || other.num_lo_open;
    }
    if (other.num_hi < num_hi) {
      num_hi = other.num_hi;
      num_hi_open = other.num_hi_open;
    } else if (other.num_hi == num_hi) {
      num_hi_open = num_hi_open || other.num_hi_open;
    }
  } else {
    may_be_numeric = false;
    may_be_nan = false;
  }
  if (may_be_string && other.may_be_string) {
    if (other.str_lo && (!str_lo || *other.str_lo > *str_lo)) {
      str_lo = other.str_lo;
      str_lo_open = other.str_lo_open;
    } else if (other.str_lo && str_lo && *other.str_lo == *str_lo) {
      str_lo_open = str_lo_open || other.str_lo_open;
    }
    if (other.str_hi && (!str_hi || *other.str_hi < *str_hi)) {
      str_hi = other.str_hi;
      str_hi_open = other.str_hi_open;
    } else if (other.str_hi && str_hi && *other.str_hi == *str_hi) {
      str_hi_open = str_hi_open || other.str_hi_open;
    }
  } else {
    may_be_string = false;
    str_lo.reset();
    str_hi.reset();
  }
}

void ValueRange::JoinWith(const ValueRange& other) {
  may_be_null = may_be_null || other.may_be_null;
  may_be_all = may_be_all || other.may_be_all;
  may_be_nan = may_be_nan || other.may_be_nan;
  if (may_be_numeric && other.may_be_numeric) {
    if (other.num_lo < num_lo) {
      num_lo = other.num_lo;
      num_lo_open = other.num_lo_open;
    } else if (other.num_lo == num_lo) {
      num_lo_open = num_lo_open && other.num_lo_open;
    }
    if (other.num_hi > num_hi) {
      num_hi = other.num_hi;
      num_hi_open = other.num_hi_open;
    } else if (other.num_hi == num_hi) {
      num_hi_open = num_hi_open && other.num_hi_open;
    }
  } else if (other.may_be_numeric) {
    may_be_numeric = true;
    num_lo = other.num_lo;
    num_hi = other.num_hi;
    num_lo_open = other.num_lo_open;
    num_hi_open = other.num_hi_open;
  }
  if (may_be_string && other.may_be_string) {
    if (!other.str_lo || (str_lo && *other.str_lo < *str_lo)) {
      str_lo = other.str_lo;
      str_lo_open = other.str_lo_open;
    } else if (other.str_lo && str_lo && *other.str_lo == *str_lo) {
      str_lo_open = str_lo_open && other.str_lo_open;
    }
    if (!other.str_hi || (str_hi && *other.str_hi > *str_hi)) {
      str_hi = other.str_hi;
      str_hi_open = other.str_hi_open;
    } else if (other.str_hi && str_hi && *other.str_hi == *str_hi) {
      str_hi_open = str_hi_open && other.str_hi_open;
    }
  } else if (other.may_be_string) {
    may_be_string = true;
    str_lo = other.str_lo;
    str_hi = other.str_hi;
    str_lo_open = other.str_lo_open;
    str_hi_open = other.str_hi_open;
  }
}

bool ValueRange::Admits(const Value& v) const {
  if (v.is_null()) return may_be_null;
  if (v.is_all()) return may_be_all;
  if (v.is_numeric()) {
    if (!may_be_numeric) return false;
    double x = v.AsDouble();
    if (std::isnan(x)) return may_be_nan;
    if (x < num_lo || (x == num_lo && num_lo_open)) return false;
    if (x > num_hi || (x == num_hi && num_hi_open)) return false;
    return true;
  }
  // String payload.
  if (!may_be_string) return false;
  const std::string& s = v.string();
  if (str_lo && (s < *str_lo || (s == *str_lo && str_lo_open))) return false;
  if (str_hi && (s > *str_hi || (s == *str_hi && str_hi_open))) return false;
  return true;
}

std::string ValueRange::ToString() const {
  if (IsEmpty()) return "⊥ (no value)";
  if (IsTop()) return "⊤ (any value)";
  std::string out;
  if (may_be_numeric) {
    bool bounded = !IsInf(num_lo) || !IsInf(num_hi);
    out += StrCat("num:", num_lo_open ? "(" : "[", Endpoint(num_lo), ", ",
                  Endpoint(num_hi), num_hi_open ? ")" : "]");
    if (!bounded) out = "num:any";
    if (!may_be_nan) out += " nan:no";
  }
  if (may_be_string) {
    if (!out.empty()) out += " ";
    if (str_lo && str_hi && *str_lo == *str_hi && !str_lo_open && !str_hi_open) {
      out += StrCat("str:'", *str_lo, "'");
    } else if (str_lo || str_hi) {
      out += StrCat("str:", str_lo_open ? "(" : "[", str_lo ? "'" + *str_lo + "'" : "-inf",
                    ", ", str_hi ? "'" + *str_hi + "'" : "inf", str_hi_open ? ")" : "]");
    } else {
      out += "str:any";
    }
  }
  if (!may_be_numeric && !may_be_string) out = "payload:none";
  out += StrCat(" null:", may_be_null ? "yes" : "no", " all:", may_be_all ? "yes" : "no");
  return out;
}

// ---------------------------------------------------------------------------
// RangeFact / ZoneMapPredicate / RangeAnalysis
// ---------------------------------------------------------------------------

std::string RangeFact::ToString() const {
  return StrCat(side == Side::kBase ? "B." : "R.", column, " ∈ ", range.ToString(),
                from_transfer ? " (via equi transfer)" : "");
}

bool ZoneMapPredicate::CouldMatch(double block_min, double block_max,
                                  bool block_has_null) const {
  if (allow_non_numeric || allow_nan) return true;  // stats cannot rule these out
  if (allow_null && block_has_null) return true;
  if (block_max < num_lo || (block_max == num_lo && num_lo_open)) return false;
  if (block_min > num_hi || (block_min == num_hi && num_hi_open)) return false;
  return true;
}

bool ZoneMapPredicate::CouldMatchString(const std::string& block_str_min,
                                        const std::string& block_str_max) const {
  if (!allow_string) return false;
  if (str_lo && (block_str_max < *str_lo ||
                 (block_str_max == *str_lo && str_lo_open))) {
    return false;
  }
  if (str_hi && (block_str_min > *str_hi ||
                 (block_str_min == *str_hi && str_hi_open))) {
    return false;
  }
  return true;
}

std::string ZoneMapPredicate::ToString() const {
  return StrCat(column, " ", num_lo_open ? "(" : "[", Endpoint(num_lo), ", ",
                Endpoint(num_hi), num_hi_open ? ")" : "]",
                allow_null ? " null:yes" : " null:no",
                allow_non_numeric ? " non-num:yes" : " non-num:no");
}

const RangeFact* RangeAnalysis::FindFact(Side side, const std::string& column) const {
  for (const RangeFact& f : facts) {
    if (f.side == side && f.column == column) return &f;
  }
  return nullptr;
}

std::string RangeAnalysis::ToString() const {
  if (!satisfiable) return StrCat("θ unsatisfiable: ", unsat_reason);
  if (facts.empty()) return "no range facts";
  std::vector<std::string> lines;
  lines.reserve(facts.size());
  for (const RangeFact& f : facts) lines.push_back(f.ToString());
  return JoinStrings(lines, "; ");
}

RangeAnalysis AnalyzeRanges(const ExprPtr& theta) {
  RangeAnalysis out;
  if (theta == nullptr) return out;  // trivially-true θ

  ThetaClassification cls = ClassifyTheta(theta);
  Constraints global;
  // Columns some conjunct constrains beyond the generic not-null an equi
  // conjunct implies — facts on any other column must have come by transfer.
  std::set<ColKey> direct;
  for (const ClassifiedConjunct& conjunct : cls.conjuncts) {
    std::optional<Constraints> c = DeriveTruthy(conjunct.expr);
    if (!c) continue;
    if (c->always_false && !global.always_false) {
      global.always_false = true;
      global.false_reason = c->false_reason;
    }
    for (auto& [key, range] : c->cols) {
      bool exactly_not_null = !range.may_be_null && range.may_be_all &&
                              range.may_be_numeric && range.may_be_string &&
                              range.may_be_nan && IsInf(range.num_lo) &&
                              IsInf(range.num_hi) && !range.str_lo && !range.str_hi;
      if (!exactly_not_null) direct.insert(key);
      Constrain(&global, key.side, key.name, range);
    }
  }

  // Observation 4.1 fact transfer across plain-column equi conjuncts. One
  // round suffices: transferred facts re-admit ALL, and transfer only fires
  // from non-ALL-confined sources, so a second round derives nothing new.
  std::set<ColKey> transferred;
  for (const EquiPair& pair : cls.parts.equi) {
    if (pair.base_expr->kind() != ExprKind::kColumnRef ||
        pair.detail_expr->kind() != ExprKind::kColumnRef) {
      continue;
    }
    ColKey base_key{Side::kBase, pair.base_expr->column_name()};
    ColKey detail_key{Side::kDetail, pair.detail_expr->column_name()};
    auto transfer = [&global, &transferred](const ColKey& from, const ColKey& to) {
      auto it = global.cols.find(from);
      if (it == global.cols.end()) return;
      // An ALL cell on the source side matches anything non-null on the
      // other, so only non-ALL-confined facts say something about `to`.
      if (it->second.may_be_all) return;
      ValueRange derived = TransferThrough(it->second);
      auto [dst, inserted] = global.cols.emplace(to, derived);
      if (!inserted) dst->second.MeetWith(derived);
      transferred.insert(to);
    };
    transfer(base_key, detail_key);
    transfer(detail_key, base_key);
  }

  if (global.always_false) {
    out.satisfiable = false;
    out.unsat_reason = StrCat("conjunct is constant-false: ", global.false_reason);
  }

  for (auto& [key, range] : global.cols) {
    if (range.IsTop()) continue;
    if (range.IsEmpty() && out.satisfiable) {
      out.satisfiable = false;
      out.unsat_reason =
          StrCat("column ", ColKeyToString(key), " admits no value under θ");
    }
    RangeFact fact;
    fact.side = key.side;
    fact.column = key.name;
    fact.range = range;
    fact.from_transfer =
        transferred.count(key) > 0 && direct.find(key) == direct.end();
    out.facts.push_back(std::move(fact));
  }

  for (const RangeFact& f : out.facts) {
    if (f.side != Side::kDetail) continue;
    ZoneMapPredicate zp;
    zp.column = f.column;
    zp.num_lo = f.range.num_lo;
    zp.num_hi = f.range.num_hi;
    zp.num_lo_open = f.range.num_lo_open;
    zp.num_hi_open = f.range.num_hi_open;
    zp.allow_null = f.range.may_be_null;
    zp.allow_non_numeric = f.range.may_be_all || f.range.may_be_string;
    zp.allow_nan = f.range.may_be_nan;
    zp.allow_all = f.range.may_be_all;
    zp.allow_string = f.range.may_be_string;
    zp.str_lo = f.range.str_lo;
    zp.str_hi = f.range.str_hi;
    zp.str_lo_open = f.range.str_lo_open;
    zp.str_hi_open = f.range.str_hi_open;
    if (!f.range.may_be_numeric) {
      // Empty numeric window: readers with per-class stats (ZoneCouldMatch)
      // can prune all-numeric blocks outright. CouldMatch is unaffected — it
      // short-circuits on allow_non_numeric/allow_nan before the interval.
      zp.num_lo = std::numeric_limits<double>::infinity();
      zp.num_hi = -std::numeric_limits<double>::infinity();
    }
    out.zone_predicates.push_back(std::move(zp));
  }

  static Counter* derived = MetricsRegistry::Global().GetCounter(
      "mdjoin_range_facts_derived_total",
      "per-column range facts derived by θ interval abstract interpretation");
  derived->Increment(static_cast<int64_t>(out.facts.size()));
  return out;
}

}  // namespace mdjoin
