#ifndef MDJOIN_ANALYZE_AST_H_
#define MDJOIN_ANALYZE_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "types/value.h"

namespace mdjoin {
namespace analyze {

/// Abstract syntax of the ANALYZE BY dialect, prior to name resolution. The
/// binder (binder.h) lowers this to the engine's plan IR.

enum class AstKind {
  kLiteral,
  kColumnRef,  // possibly qualified: X.sale (qualifier = grouping variable)
  kUnary,      // not, -, is null
  kBinary,
  kAggCall,    // fn(expr) or fn(*) inside conditions/select
  kIn,
  kCase,       // CASE WHEN ... THEN ... [ELSE ...] END
};

enum class AstUnaryOp { kNot, kNegate, kIsNull };
enum class AstBinaryOp {
  kAdd, kSub, kMul, kDiv, kMod, kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr,
};

struct AstExpr;
using AstExprPtr = std::shared_ptr<AstExpr>;

struct AstExpr {
  AstKind kind = AstKind::kLiteral;
  // kLiteral
  Value literal;
  // kColumnRef
  std::string qualifier;  // "" = unqualified
  std::string column;
  // kUnary/kBinary/kIn/kAggCall
  AstUnaryOp unary_op = AstUnaryOp::kNot;
  AstBinaryOp binary_op = AstBinaryOp::kAnd;
  AstExprPtr left;
  AstExprPtr right;
  std::vector<Value> in_list;
  // kCase: arms; `left` holds the optional ELSE
  std::vector<std::pair<AstExprPtr, AstExprPtr>> case_arms;
  // kAggCall
  std::string agg_name;
  bool agg_star = false;          // count(*) or count(X.*)
  std::string star_qualifier;     // "X" for count(X.*); empty for count(*)

  int position = 0;  // source offset for diagnostics
};

/// One SELECT item: a plain column or an aggregate call with optional alias.
struct SelectItem {
  AstExprPtr expr;  // kColumnRef (plain) or kAggCall
  std::optional<std::string> alias;
};

/// The ANALYZE BY generator.
enum class BaseGenKind {
  kGroup,         // group(attrs): select distinct attrs
  kCube,          // cube(attrs)
  kRollup,        // rollup(attrs)
  kUnpivot,       // unpivot(attrs)
  kGroupingSets,  // grouping_sets((a,b),(c),())
  kTable,         // <table-name>(attrs): user-provided base values (Ex. 2.4)
};

struct BaseGen {
  BaseGenKind kind = BaseGenKind::kGroup;
  std::string table_name;  // kTable only
  std::vector<std::string> attrs;
  std::vector<std::vector<std::string>> sets;  // kGroupingSets only
};

/// SUCH THAT binding: a grouping variable and its θ-condition.
struct Binding {
  std::string var;
  AstExprPtr condition;
};

/// ORDER BY entry: output column name and direction.
struct OrderItem {
  std::string column;
  bool ascending = true;
};

struct Query {
  std::vector<SelectItem> select;
  std::string from_table;
  AstExprPtr where;  // may be null
  BaseGen base;
  std::vector<Binding> bindings;
  AstExprPtr having;  // may be null; over SELECT outputs
  std::vector<OrderItem> order_by;
};

}  // namespace analyze
}  // namespace mdjoin

#endif  // MDJOIN_ANALYZE_AST_H_
