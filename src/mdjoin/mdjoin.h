#ifndef MDJOIN_MDJOIN_MDJOIN_H_
#define MDJOIN_MDJOIN_MDJOIN_H_

/// Umbrella header: the full public API of the mdjoin engine.
///
/// Layers, bottom to top:
///  - common/   Status, Result<T>, logging, random, timing
///  - types/    Value (with the ALL roll-up marker), Schema
///  - table/    columnar Table, builder, structural ops, CSV
///  - expr/     θ-condition expression trees over (base, detail) row pairs
///  - agg/      aggregate functions (UDAF-style), specs, roll-up rewrites
///  - ra/       classical relational algebra (σ, π, joins, Σ) for baselines
///  - cube/     ALL-marker cube machinery, PIPESORT, partitioned cube
///  - core/     the MD-join operator (Definition 3.1 / Algorithm 3.1)
///  - optimizer plan IR + the §4 theorem rewrites + executor + cost model
///  - parallel/ Theorem 4.1 intra-operator parallelism
///  - analyze/  the §5 ANALYZE BY query language
///  - stats/    table statistics, plan feedback, and the query-history log
///  - obs/      tracing, metrics, and EXPLAIN ANALYZE query profiles
///  - workload/ synthetic Sales/Payments generators

#include "agg/agg_spec.h"
#include "agg/aggregate.h"
#include "analyze/binder.h"
#include "analyze/parser.h"
#include "analyze/plan_analyzer.h"
#include "analyze/plan_invariants.h"
#include "analyze/range_analysis.h"
#include "expr/verifier.h"
#include "common/failpoint.h"
#include "common/query_guard.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/access_path.h"
#include "core/generalized.h"
#include "core/incremental.h"
#include "core/mdjoin.h"
#include "core/reference.h"
#include "cube/base_tables.h"
#include "cube/lattice.h"
#include "cube/partitioned_cube.h"
#include "cube/pipesort.h"
#include "cube/subcube_selection.h"
#include "expr/compile.h"
#include "expr/conjuncts.h"
#include "expr/expr.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "obs/trace.h"
#include "optimizer/cost.h"
#include "optimizer/executor.h"
#include "optimizer/optimize.h"
#include "optimizer/plan.h"
#include "optimizer/rules.h"
#include "parallel/parallel_mdjoin.h"
#include "parallel/thread_pool.h"
#include "ra/filter.h"
#include "ra/group_by.h"
#include "ra/join.h"
#include "ra/project.h"
#include "server/admission.h"
#include "server/query_service.h"
#include "server/result_cache.h"
#include "stats/feedback.h"
#include "stats/query_log.h"
#include "stats/table_stats.h"
#include "storage/block_cache.h"
#include "storage/block_format.h"
#include "storage/out_of_core.h"
#include "storage/paged_table.h"
#include "storage/spill.h"
#include "table/clustered_index.h"
#include "table/csv.h"
#include "table/table.h"
#include "table/table_builder.h"
#include "table/table_ops.h"
#include "types/schema.h"
#include "types/value.h"
#include "workload/generators.h"

#endif  // MDJOIN_MDJOIN_MDJOIN_H_
