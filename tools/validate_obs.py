#!/usr/bin/env python3
"""Validates the observability artifacts of one instrumented CLI run.

Usage:
    validate_obs.py [--trace TRACE.json] [--metrics METRICS.json]
                    [--explain EXPLAIN.txt] [--query-log QLOG.jsonl]
                    [--schema obs_schema.json]
                    [--min-tracks N] [--expect-parallel] [--expect-server]
                    [--expect-analysis] [--expect-storage] [--expect-stats]

At least one artifact flag (--trace / --metrics / --explain / --query-log)
is required.
Checks, in order:
  1. The trace file (--trace) parses and conforms to tools/obs_schema.json
     (full jsonschema validation when the module is available, a structural
     fallback otherwise).
  2. The trace's content is a real engine run: per-thread tracks with
     thread_name metadata, morsel spans inside worker.scan spans, and (with
     --expect-parallel) steal_wait instants plus at least --min-tracks
     distinct event tracks.
  3. The metrics dump (--metrics, JSON form) carries the MD-join scan
     counters with coherent values (scanned >= qualified,
     candidates >= matched). With --expect-server, additionally requires
     every query-service metric named in the schema's serverMetrics annex,
     with coherent values (queries admitted, cache outcomes summing to at
     most the query count, gauges drained back to zero).
  4. The EXPLAIN ANALYZE output (--explain) shows an annotated per-operator
     plan that reached a terminal event.

Exit code 0 when everything holds; 1 with a list of failures otherwise.
Used by the CI observability and service-stress jobs; handy locally after
any change to the trace/metrics emitters or the server metric catalog.
"""

import argparse
import json
import os
import sys

ERRORS = []


def fail(msg):
    ERRORS.append(msg)


def check(cond, msg):
    if not cond:
        fail(msg)
    return cond


def validate_schema(trace, schema_path):
    try:
        with open(schema_path) as f:
            schema = json.load(f)
    except OSError as e:
        fail(f"cannot read schema {schema_path}: {e}")
        return
    try:
        import jsonschema
    except ImportError:
        # Structural fallback mirroring the schema's hard requirements.
        if not check(isinstance(trace, dict) and "traceEvents" in trace,
                     "trace: missing top-level traceEvents"):
            return
        for i, e in enumerate(trace["traceEvents"]):
            ctx = f"trace: event {i}"
            check(isinstance(e, dict), f"{ctx}: not an object")
            for key in ("name", "ph", "pid", "tid"):
                check(key in e, f"{ctx}: missing '{key}'")
            ph = e.get("ph")
            check(ph in ("X", "i", "M"), f"{ctx}: bad ph {ph!r}")
            if ph == "X":
                check("ts" in e and "dur" in e, f"{ctx}: X event without ts/dur")
                check(e.get("dur", 0) >= 0, f"{ctx}: negative duration")
            elif ph == "i":
                check("ts" in e, f"{ctx}: instant without ts")
            elif ph == "M":
                check(e.get("name") == "thread_name",
                      f"{ctx}: unexpected metadata {e.get('name')!r}")
                check("name" in e.get("args", {}),
                      f"{ctx}: thread_name without args.name")
        return
    try:
        jsonschema.validate(trace, schema)
    except jsonschema.ValidationError as e:
        fail(f"trace: schema violation at {list(e.absolute_path)}: {e.message}")


def validate_trace_content(trace, min_tracks, expect_parallel):
    events = trace.get("traceEvents", [])
    spans = [e for e in events if e.get("ph") == "X"]
    instants = [e for e in events if e.get("ph") == "i"]
    meta = [e for e in events if e.get("ph") == "M"]

    check(spans, "trace: no spans at all")
    names = {e["name"] for e in spans}
    check("scan_range" in names, "trace: no scan_range span (detail scan untraced)")

    named_tracks = {e["tid"] for e in meta}
    event_tracks = {e["tid"] for e in spans + instants}
    check(event_tracks <= named_tracks or not meta,
          f"trace: events on unnamed tracks {sorted(event_tracks - named_tracks)}")

    if expect_parallel:
        check("morsel" in names, "trace: no morsel spans (parallel scan untraced)")
        check("worker.scan" in names, "trace: no worker.scan spans")
        check(any(e["name"] == "steal_wait" for e in instants),
              "trace: no steal_wait instants")
        check(len(event_tracks) >= min_tracks,
              f"trace: {len(event_tracks)} event track(s), want >= {min_tracks}")
        # Morsel spans nest inside their worker's scan span on the same track.
        worker_tids = {e["tid"] for e in spans if e["name"] == "worker.scan"}
        morsel_tids = {e["tid"] for e in spans if e["name"] == "morsel"}
        check(morsel_tids <= worker_tids,
              "trace: morsel spans on tracks without a worker.scan span")


REQUIRED_COUNTERS = [
    "mdjoin_detail_rows_scanned_total",
    "mdjoin_detail_rows_qualified_total",
    "mdjoin_candidate_pairs_total",
    "mdjoin_matched_pairs_total",
]


def server_metric_names(schema_path):
    """The query-service metric catalog from the schema's serverMetrics annex."""
    try:
        with open(schema_path) as f:
            schema = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"metrics: cannot read serverMetrics annex from {schema_path}: {e}")
        return []
    names = schema.get("serverMetrics", {}).get("names", [])
    check(names, f"metrics: {schema_path} has no serverMetrics.names annex")
    return names


def validate_server_metrics(metrics, schema_path):
    for name in server_metric_names(schema_path):
        check(name in metrics, f"metrics: missing server metric {name}")

    def scalar(name):
        v = metrics.get(name, 0)
        return v if isinstance(v, (int, float)) else 0

    admitted = scalar("mdjoin_server_admitted_total")
    queries = scalar("mdjoin_server_queries_total")
    check(queries > 0, "metrics: no queries went through the service")
    check(admitted > 0, "metrics: service ran queries but admitted none")
    # Every query ends as exactly one cache outcome (or ran with the cache
    # off), so the outcomes can never outnumber the queries.
    outcomes = (scalar("mdjoin_server_cache_hit_total")
                + scalar("mdjoin_server_cache_rollup_hit_total")
                + scalar("mdjoin_server_cache_miss_total"))
    check(outcomes <= queries, "metrics: cache outcomes exceed query count")
    # A histogram renders as an object; its count is the number of admission
    # waits measured, which admitted queries (fast path included) all record.
    wait = metrics.get("mdjoin_server_admission_wait_ms")
    if isinstance(wait, dict):
        check(wait.get("count", 0) >= admitted,
              "metrics: admission wait histogram missing admitted queries")
    # In-use gauges must drain back to zero once the run is over — a nonzero
    # residue means a ticket/guard leak.
    for gauge in ("mdjoin_server_queue_depth", "mdjoin_server_memory_in_use_bytes",
                  "mdjoin_server_threads_in_use", "mdjoin_server_queries_active",
                  "mdjoin_server_sessions_open"):
        check(scalar(gauge) == 0, f"metrics: {gauge} did not drain to 0 after the run")


def storage_metric_names(schema_path):
    """The out-of-core storage metric family from the storageMetrics annex."""
    try:
        with open(schema_path) as f:
            schema = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"metrics: cannot read storageMetrics annex from {schema_path}: {e}")
        return []
    names = schema.get("storageMetrics", {}).get("names", [])
    check(names, f"metrics: {schema_path} has no storageMetrics.names annex")
    return names


def validate_storage_metrics(metrics, schema_path):
    for name in storage_metric_names(schema_path):
        check(name in metrics, f"metrics: missing storage metric {name}")

    def scalar(name):
        v = metrics.get(name, 0)
        return v if isinstance(v, (int, float)) else 0

    reads = scalar("mdjoin_blocks_read_total")
    faults = scalar("mdjoin_blocks_faulted_total")
    check(reads > 0, "metrics: no storage blocks read — did a paged scan run?")
    # Every read is either a decoder run (fault) or a cache hit, never both.
    check(reads >= faults, "metrics: blocks faulted exceed blocks read")
    for name in ("mdjoin_blocks_pruned_total", "mdjoin_block_cache_bytes",
                 "mdjoin_block_cache_hit_total", "mdjoin_block_cache_miss_total",
                 "mdjoin_block_cache_evictions_total", "mdjoin_spill_bytes_total",
                 "mdjoin_spill_partitions_total"):
        check(scalar(name) >= 0, f"metrics: negative {name}")


def analysis_metric_names(schema_path):
    """The static-analysis metric family from the schema's analysisMetrics annex."""
    try:
        with open(schema_path) as f:
            schema = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"metrics: cannot read analysisMetrics annex from {schema_path}: {e}")
        return []
    names = schema.get("analysisMetrics", {}).get("names", [])
    check(names, f"metrics: {schema_path} has no analysisMetrics.names annex")
    return names


def validate_analysis_metrics(metrics, schema_path):
    names = analysis_metric_names(schema_path)

    def scalar(name):
        v = metrics.get(name, 0)
        return v if isinstance(v, (int, float)) else 0

    # Any run that compiled a θ must have verified its bytecode and derived
    # range facts; the empty-result rewrite only fires on unsatisfiable θs,
    # so its counter need only be coherent when present.
    for name in names:
        if name in metrics:
            check(scalar(name) >= 0, f"metrics: negative {name}")
    check(scalar("mdjoin_theta_verified_total") > 0,
          "metrics: no θ bytecode program passed the verifier — was θ compiled?")
    check(scalar("mdjoin_range_facts_derived_total") > 0,
          "metrics: interval analysis derived no range facts")


def stats_metric_names(schema_path):
    """The workload-telemetry metric family from the statsMetrics annex."""
    try:
        with open(schema_path) as f:
            schema = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"metrics: cannot read statsMetrics annex from {schema_path}: {e}")
        return []
    names = schema.get("statsMetrics", {}).get("names", [])
    check(names, f"metrics: {schema_path} has no statsMetrics.names annex")
    return names


def validate_stats_metrics(metrics, schema_path):
    for name in stats_metric_names(schema_path):
        check(name in metrics, f"metrics: missing stats metric {name}")

    def scalar(name):
        v = metrics.get(name, 0)
        return v if isinstance(v, (int, float)) else 0

    build_info = metrics.get("mdjoin_build_info")
    if check(isinstance(build_info, dict),
             "metrics: mdjoin_build_info is not an info object"):
        check(build_info.get("git_sha"), "metrics: build_info missing git_sha")
        check(build_info.get("build_type"),
              "metrics: build_info missing build_type")
    qerror = metrics.get("mdjoin_plan_qerror")
    if check(isinstance(qerror, dict),
             "metrics: mdjoin_plan_qerror is not a histogram object"):
        check(qerror.get("count", 0) > 0,
              "metrics: no plan q-error observations — did EXPLAIN ANALYZE run?")
        for q in ("p50", "p90", "p99"):
            check(q in qerror, f"metrics: mdjoin_plan_qerror missing {q}")
    check(scalar("mdjoin_stats_tables_analyzed_total") > 0,
          "metrics: no tables analyzed — did --analyze run?")
    check(scalar("mdjoin_feedback_updates_total") > 0,
          "metrics: no feedback updates harvested")
    check(scalar("mdjoin_queries_logged_total") > 0,
          "metrics: no queries recorded in the history")
    for name in ("mdjoin_feedback_hits_total", "mdjoin_feedback_entries",
                 "mdjoin_slow_queries_total"):
        check(scalar(name) >= 0, f"metrics: negative {name}")


def query_log_record_schema(schema_path):
    """The JSONL record shape from the schema's queryLogRecord annex."""
    try:
        with open(schema_path) as f:
            schema = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"query-log: cannot read queryLogRecord annex from {schema_path}: {e}")
        return {}
    annex = schema.get("queryLogRecord", {})
    check(annex.get("requiredKeys"),
          f"query-log: {schema_path} has no queryLogRecord annex")
    return annex


def validate_query_log(path, schema_path):
    annex = query_log_record_schema(schema_path)
    required = annex.get("requiredKeys", [])
    string_keys = annex.get("stringKeys", [])
    number_keys = annex.get("numberKeys", [])
    boolean_keys = annex.get("booleanKeys", [])
    outcomes = set(annex.get("outcomes", []))
    try:
        with open(path) as f:
            lines = [l for l in f.read().splitlines() if l.strip()]
    except OSError as e:
        fail(f"query-log: cannot read {path}: {e}")
        return
    if not check(lines, f"query-log: {path} is empty"):
        return
    for i, line in enumerate(lines):
        ctx = f"query-log: line {i + 1}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{ctx}: not JSON: {e}")
            continue
        for key in required:
            check(key in record, f"{ctx}: missing required key '{key}'")
        for key in string_keys:
            if key in record:
                check(isinstance(record[key], str), f"{ctx}: '{key}' not a string")
        for key in number_keys:
            if key in record:
                check(isinstance(record[key], (int, float))
                      and not isinstance(record[key], bool),
                      f"{ctx}: '{key}' not a number")
        for key in boolean_keys:
            if key in record:
                check(isinstance(record[key], bool), f"{ctx}: '{key}' not a boolean")
        if outcomes and "outcome" in record:
            check(record["outcome"] in outcomes,
                  f"{ctx}: unknown outcome {record.get('outcome')!r}")
        # The fingerprints are decimal-in-string so 64-bit values survive.
        for key in ("fingerprint", "plan_hash"):
            if isinstance(record.get(key), str):
                check(record[key].isdigit(), f"{ctx}: '{key}' not a decimal string")
    return len(lines)


def validate_metrics(path, expect_parallel, expect_server, expect_analysis,
                     expect_storage, expect_stats, schema_path):
    try:
        with open(path) as f:
            metrics = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"metrics: cannot load {path}: {e}")
        return
    for name in REQUIRED_COUNTERS:
        check(name in metrics, f"metrics: missing {name}")
        if isinstance(metrics.get(name), (int, float)):
            check(metrics[name] >= 0, f"metrics: negative {name}")
    scanned = metrics.get("mdjoin_detail_rows_scanned_total", 0)
    qualified = metrics.get("mdjoin_detail_rows_qualified_total", 0)
    cand = metrics.get("mdjoin_candidate_pairs_total", 0)
    matched = metrics.get("mdjoin_matched_pairs_total", 0)
    check(scanned > 0, "metrics: no detail rows scanned — did the query run?")
    check(scanned >= qualified, "metrics: qualified > scanned")
    check(cand >= matched, "metrics: matched > candidate pairs")
    if expect_parallel:
        check(metrics.get("mdjoin_morsels_dispatched_total", 0) > 0,
              "metrics: no morsels dispatched in a parallel run")
    if expect_server:
        validate_server_metrics(metrics, schema_path)
    if expect_analysis:
        validate_analysis_metrics(metrics, schema_path)
    if expect_storage:
        validate_storage_metrics(metrics, schema_path)
    if expect_stats:
        validate_stats_metrics(metrics, schema_path)


def validate_explain(path, expect_analysis=False):
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        fail(f"explain: cannot read {path}: {e}")
        return
    check("MdJoin" in text, "explain: no MdJoin operator in the annotated plan")
    check("rows=" in text, "explain: no row annotations")
    check("terminal: " in text, "explain: no terminal event line")
    check("terminal: ok" in text, "explain: query did not finish ok")
    check("scanned=" in text, "explain: MD-join node missing scan counters")
    if expect_analysis:
        check("static analysis:" in text,
              "explain: no 'static analysis' section (verifier/range facts)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace")
    parser.add_argument("--metrics")
    parser.add_argument("--explain")
    parser.add_argument("--schema",
                        default=os.path.join(os.path.dirname(__file__),
                                             "obs_schema.json"))
    parser.add_argument("--min-tracks", type=int, default=2)
    parser.add_argument("--expect-parallel", action="store_true")
    parser.add_argument("--expect-server", action="store_true")
    parser.add_argument("--expect-analysis", action="store_true",
                        help="require the static-analysis metric family and "
                             "the 'static analysis' EXPLAIN section")
    parser.add_argument("--expect-storage", action="store_true",
                        help="require the out-of-core storage metric family "
                             "(block cache, zone-map pruning, spill)")
    parser.add_argument("--expect-stats", action="store_true",
                        help="require the workload-telemetry metric family "
                             "(table stats, plan q-error, feedback, history)")
    parser.add_argument("--query-log",
                        help="validate a --query-log JSONL file against the "
                             "queryLogRecord annex")
    args = parser.parse_args()
    if not (args.trace or args.metrics or args.explain or args.query_log):
        parser.error("nothing to validate: pass --trace, --metrics, "
                     "--explain, or --query-log")

    trace = None
    if args.trace:
        try:
            with open(args.trace) as f:
                trace = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL: trace: cannot load {args.trace}: {e}")
            return 1
        validate_schema(trace, args.schema)
        validate_trace_content(trace, args.min_tracks, args.expect_parallel)
    if args.metrics:
        validate_metrics(args.metrics, args.expect_parallel, args.expect_server,
                         args.expect_analysis, args.expect_storage,
                         args.expect_stats, args.schema)
    if args.explain:
        validate_explain(args.explain, args.expect_analysis)
    log_lines = None
    if args.query_log:
        log_lines = validate_query_log(args.query_log, args.schema)

    if ERRORS:
        for e in ERRORS:
            print(f"FAIL: {e}")
        return 1
    parts = []
    if trace is not None:
        parts.append(f"{len(trace.get('traceEvents', []))} trace events validated")
    if args.metrics:
        parts.append("metrics coherent"
                     + (" (incl. server catalog)" if args.expect_server else ""))
    if args.explain:
        parts.append("explain-analyze well-formed")
    if args.query_log:
        parts.append(f"{log_lines} query-log record(s) validated")
    print("OK: " + ", ".join(parts))
    return 0


if __name__ == "__main__":
    sys.exit(main())
