/// The §5 query language: ANALYZE BY decouples the base-values generator
/// from the aggregation, and SUCH THAT grouping variables give fine-grained
/// control over what each aggregate ranges over (EMF-SQL style, [Cha99]).
/// Runs the paper's Example 5.1 queries plus an Example 2.5-shaped window
/// query with dependent grouping variables.

#include <cstdio>

#include "mdjoin/mdjoin.h"

using namespace mdjoin;  // NOLINT

namespace {

int RunQuery(const Catalog& catalog, const char* title, const std::string& sql) {
  std::printf("=== %s ===\n%s\n", title, sql.c_str());
  Result<analyze::BoundQuery> bound = analyze::BindQueryString(sql, catalog);
  if (!bound.ok()) {
    std::fprintf(stderr, "bind error: %s\n", bound.status().ToString().c_str());
    return 1;
  }
  std::printf("plan:\n%s", ExplainPlan(bound->plan).c_str());
  Result<Table> result = ExecutePlanCse(bound->plan, catalog);
  if (!result.ok()) {
    std::fprintf(stderr, "execution error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("result (%lld rows, head):\n%s\n",
              static_cast<long long>(result->num_rows()),
              result->ToString(8).c_str());
  return 0;
}

}  // namespace

int main() {
  SalesConfig config;
  config.num_rows = 10000;
  config.num_customers = 50;
  config.num_products = 6;
  config.num_months = 6;
  config.num_states = 4;
  Table sales = GenerateSales(config);

  // Example 2.4's precomputed interesting points.
  TableBuilder points({{"prod", DataType::kInt64}, {"month", DataType::kInt64}});
  points.AppendRowOrDie({Value::Int64(1), Value::Int64(2)});
  points.AppendRowOrDie({Value::Int64(3), Value::All()});
  points.AppendRowOrDie({Value::All(), Value::All()});
  Table t = std::move(points).Finish();

  Catalog catalog;
  if (!catalog.Register("Sales", &sales).ok()) return 1;
  if (!catalog.Register("T", &t).ok()) return 1;

  int rc = 0;
  // Example 5.1, cube form.
  rc |= RunQuery(catalog, "Example 5.1 — cube",
                 "select prod, month, sum(sale) from Sales "
                 "analyze by cube(prod, month)");
  // Example 5.1, unpivot form (same aggregation, different base generator).
  rc |= RunQuery(catalog, "Example 5.1 — unpivot",
                 "select prod, month, sum(sale) from Sales "
                 "analyze by unpivot(prod, month)");
  // Example 5.1, table-driven form (Example 2.4).
  rc |= RunQuery(catalog, "Example 5.1 — table-driven base values",
                 "select prod, month, sum(sale) from Sales "
                 "analyze by T(prod, month)");
  // Grouping variables: the tri-state pivot of Example 2.2.
  rc |= RunQuery(catalog, "Example 2.2 — grouping variables",
                 "select cust, avg(X.sale) as avg_ny, avg(Y.sale) as avg_nj, "
                 "avg(Z.sale) as avg_ct from Sales analyze by group(cust) "
                 "such that X: X.cust = cust and X.state = 'NY', "
                 "Y: Y.cust = cust and Y.state = 'NJ', "
                 "Z: Z.cust = cust and Z.state = 'CT'");
  // Example 2.5's dependent multi-pass window query.
  rc |= RunQuery(catalog, "Example 2.5 — between prev/next month averages",
                 "select prod, month, count(Z.sale) as between_count from Sales "
                 "where year = 1997 analyze by group(prod, month) "
                 "such that X: X.prod = prod and X.month = month - 1, "
                 "Y: Y.prod = prod and Y.month = month + 1, "
                 "Z: Z.prod = prod and Z.month = month and "
                 "Z.sale > avg(X.sale) and Z.sale < avg(Y.sale)");
  return rc;
}
