/// Example 3.3: one output table combining TWO fact tables — total sales and
/// total payments per (customer, month). Shows Theorem 4.4: the chain of
/// MD-joins over different detail relations splits into an equijoin of
/// independent MD-joins, the shape you would push to each relation's site.

#include <cstdio>

#include "mdjoin/mdjoin.h"

using namespace mdjoin;       // NOLINT
using namespace mdjoin::dsl;  // NOLINT

int main() {
  SalesConfig sconfig;
  sconfig.num_rows = 40000;
  sconfig.num_customers = 300;
  Table sales = GenerateSales(sconfig);
  PaymentsConfig pconfig;
  pconfig.num_rows = 20000;
  pconfig.num_customers = 300;
  Table payments = GeneratePayments(pconfig);

  Catalog catalog;
  if (!catalog.Register("sales", &sales).ok()) return 1;
  if (!catalog.Register("payments", &payments).ok()) return 1;

  ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("month"), BCol("month")));

  // The base values: distinct (cust, month) pairs from Sales.
  PlanPtr base = DistinctPlan(ProjectPlan(
      TableRef("sales"), {{Col("cust"), "cust"}, {Col("month"), "month"}}));

  // Sequential form: MD over Sales, then MD over Payments.
  PlanPtr sequential = MdJoinPlan(
      MdJoinPlan(base, TableRef("sales"), {Sum(RCol("sale"), "total_sales")}, theta),
      TableRef("payments"), {Sum(RCol("amount"), "total_paid")}, theta);
  std::printf("sequential plan:\n%s\n", ExplainPlan(sequential).c_str());

  // Theorem 4.4: split into an equijoin of two independent MD-joins.
  PlanPtr split = *SplitToEquiJoin(sequential, catalog);
  std::printf("after Theorem 4.4 split:\n%s\n", ExplainPlan(split).c_str());

  ExecStats seq_stats, split_stats;
  Table a = *ExecutePlan(sequential, catalog, {}, &seq_stats);
  Table b = *ExecutePlan(split, catalog, {}, &split_stats);
  std::printf("results identical: %s (%lld rows)\n",
              TablesEqualUnordered(a, b) ? "yes" : "NO (bug!)",
              static_cast<long long>(a.num_rows()));
  std::printf("each side of the join touches only its own fact table: the right\n");
  std::printf("MD-join can run where Payments lives and ship %lld aggregated rows\n",
              static_cast<long long>(b.num_rows()));
  std::printf("instead of %lld raw payment rows.\n\n",
              static_cast<long long>(payments.num_rows()));
  std::printf("answer (head):\n%s", a.ToString(8).c_str());
  return 0;
}
