/// Example 2.2 end-to-end: per-customer average sale in NY, NJ and CT (the
/// pivoting query that is painful in SQL — four subqueries and three outer
/// joins). Demonstrates the optimizer pipeline: build the naive plan, fuse it
/// with Theorem 4.3, compare costs and execution stats, and check both
/// against the SQL-style baseline.

#include <cstdio>

#include "mdjoin/mdjoin.h"

using namespace mdjoin;       // NOLINT
using namespace mdjoin::dsl;  // NOLINT

int main() {
  SalesConfig config;
  config.num_rows = 50000;
  config.num_customers = 500;
  Table sales = GenerateSales(config);
  Catalog catalog;
  if (!catalog.Register("sales", &sales).ok()) return 1;

  auto state_theta = [](const char* st) {
    return And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit(st)));
  };

  // Naive plan: three chained MD-joins over the same detail relation.
  PlanPtr plan = DistinctPlan(ProjectPlan(TableRef("sales"), {{Col("cust"), "cust"}}));
  plan = MdJoinPlan(plan, TableRef("sales"), {Avg(RCol("sale"), "avg_ny")},
                    state_theta("NY"));
  plan = MdJoinPlan(plan, TableRef("sales"), {Avg(RCol("sale"), "avg_nj")},
                    state_theta("NJ"));
  plan = MdJoinPlan(plan, TableRef("sales"), {Avg(RCol("sale"), "avg_ct")},
                    state_theta("CT"));
  std::printf("naive plan:\n%s\n", ExplainPlan(plan).c_str());

  // Theorem 4.3: the θs are independent and share the detail relation, so
  // the series fuses into one generalized MD-join — one scan instead of three.
  PlanPtr fused = *FuseMdJoinSeries(plan);
  std::printf("after Theorem 4.3 fusion:\n%s\n", ExplainPlan(fused).c_str());

  PlanCost naive_cost = *EstimateCost(plan, catalog);
  PlanCost fused_cost = *EstimateCost(fused, catalog);
  std::printf("estimated work: naive %.0f, fused %.0f (cost model ranks fused %s)\n\n",
              naive_cost.work, fused_cost.work,
              fused_cost.work < naive_cost.work ? "cheaper" : "NOT cheaper?!");

  ExecStats naive_stats, fused_stats;
  Timer timer;
  Table naive_result = *ExecutePlan(plan, catalog, {}, &naive_stats);
  double naive_ms = timer.ElapsedMillis();
  timer.Reset();
  Table fused_result = *ExecutePlan(fused, catalog, {}, &fused_stats);
  double fused_ms = timer.ElapsedMillis();

  std::printf("execution: naive %.1f ms (%lld detail rows scanned), "
              "fused %.1f ms (%lld scanned)\n",
              naive_ms, static_cast<long long>(naive_stats.detail_rows_scanned),
              fused_ms, static_cast<long long>(fused_stats.detail_rows_scanned));
  std::printf("results identical: %s\n\n",
              TablesEqualUnordered(naive_result, fused_result) ? "yes" : "NO (bug!)");

  // The SQL-style baseline the paper's §2 describes.
  timer.Reset();
  Table baseline = *DistinctOn(sales, {"cust"});
  struct Pivot {
    const char* state;
    const char* name;
  };
  for (const Pivot& p : {Pivot{"NY", "avg_ny"}, Pivot{"NJ", "avg_nj"},
                         Pivot{"CT", "avg_ct"}}) {
    Table sub = *Filter(sales, Eq(Col("state"), Lit(p.state)));
    Table grouped = *GroupBy(sub, {"cust"}, {Avg(Col("sale"), p.name)});
    baseline = *HashJoin(baseline, grouped, {"cust"}, {"cust"}, JoinType::kLeftOuter);
  }
  double baseline_ms = timer.ElapsedMillis();
  std::printf("SQL-style baseline (3 filtered GROUP BYs + 3 outer joins): %.1f ms\n",
              baseline_ms);
  std::printf("baseline agrees with MD-join: %s\n",
              TablesEqualUnordered(baseline, fused_result) ? "yes" : "NO (bug!)");
  std::printf("\nanswer (head):\n%s", fused_result.ToString(8).c_str());
  return 0;
}
