/// Quickstart: build a small Sales table, run one MD-join, and see how the
/// operator differs from a plain GROUP BY (outer semantics, detail-side
/// selection inside θ). Start here.

#include <cstdio>

#include "mdjoin/mdjoin.h"

using namespace mdjoin;       // NOLINT
using namespace mdjoin::dsl;  // NOLINT

int main() {
  // 1. A tiny Sales relation: (cust, state, sale).
  TableBuilder builder({{"cust", DataType::kInt64},
                        {"state", DataType::kString},
                        {"sale", DataType::kFloat64}});
  auto add = [&builder](int64_t cust, const char* state, double sale) {
    builder.AppendRowOrDie(
        {Value::Int64(cust), Value::String(state), Value::Float64(sale)});
  };
  add(1, "NY", 100);
  add(1, "NY", 200);
  add(1, "NJ", 50);
  add(2, "NJ", 400);
  add(2, "CA", 150);
  add(3, "CT", 90);
  Table sales = std::move(builder).Finish();
  std::printf("Sales:\n%s\n", sales.ToString().c_str());

  // 2. Base values: every customer, plus one that never bought anything —
  //    the base-values relation is independent of the detail relation.
  TableBuilder base_builder({{"cust", DataType::kInt64}});
  for (int64_t c : {1, 2, 3, 4}) base_builder.AppendRowOrDie({Value::Int64(c)});
  Table base = std::move(base_builder).Finish();

  // 3. The MD-join: per customer, total sales and the NY-only average.
  //    θ references the base row via BCol and the detail row via RCol;
  //    R-only conjuncts (state = 'NY') restrict what gets aggregated.
  ExprPtr theta_all = Eq(RCol("cust"), BCol("cust"));
  ExprPtr theta_ny = And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit("NY")));

  std::vector<MdJoinComponent> components;
  components.push_back(
      {{Sum(RCol("sale"), "total"), Count("n")}, theta_all});
  components.push_back({{Avg(RCol("sale"), "avg_ny")}, theta_ny});

  // A generalized MD-join evaluates both θs in ONE scan of Sales.
  MdJoinStats stats;
  Result<Table> result = GeneralizedMdJoin(base, sales, components, {}, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("MD(B, Sales, (l1, l2), (θ1, θ2)) — one scan of the detail table:\n%s\n",
              result->ToString().c_str());
  std::printf("evaluation: %s\n\n", stats.ToString().c_str());

  std::printf("Things to notice:\n");
  std::printf(" - customer 4 is present with n = 0 (outer semantics: the base\n");
  std::printf("   values define the output rows, not the data);\n");
  std::printf(" - avg_ny is NULL where a customer had no NY sales;\n");
  std::printf(" - both aggregate lists were computed in a single pass\n");
  std::printf("   (detail_scanned == |Sales|), the Theorem 4.3 payoff.\n");
  return 0;
}
