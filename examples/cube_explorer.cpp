/// Cube explorer (Example 2.1 / 2.3): builds a data cube with one MD-join,
/// then computes a *second-pass* statistic over the same cube base — the
/// count of above-average sales per cube cell — which CUBE BY syntax cannot
/// express because it ties grouping to aggregation. Also shows the PIPESORT
/// plan the optimizer would use for plain distributive cubes.

#include <cstdio>

#include "mdjoin/mdjoin.h"

using namespace mdjoin;       // NOLINT
using namespace mdjoin::dsl;  // NOLINT

int main() {
  SalesConfig config;
  config.num_rows = 20000;
  config.num_customers = 200;
  config.num_products = 8;
  config.num_months = 6;
  config.num_states = 4;
  Table sales = GenerateSales(config);

  const std::vector<std::string> dims = {"prod", "month"};
  ExprPtr theta = And(Eq(BCol("prod"), RCol("prod")), Eq(BCol("month"), RCol("month")));

  // Pass 1: the data cube of Sum(sale) — Example 2.1 as one MD-join.
  Table base = *CubeByBase(sales, dims);
  Table cube = *MdJoin(base, sales, {Sum(RCol("sale"), "sum_sale"),
                                     Avg(RCol("sale"), "avg_sale")},
                       theta);
  std::printf("Cube over (prod, month): %lld cells (head shown)\n%s\n",
              static_cast<long long>(cube.num_rows()), cube.ToString(10).c_str());

  // Pass 2 (Example 2.3): per cube cell, how many sales beat the cell's own
  // average? The first pass's avg_sale column is available to θ as a base
  // attribute — multi-pass aggregation without leaving the algebra.
  ExprPtr theta2 = And(Eq(BCol("prod"), RCol("prod")),
                       Eq(BCol("month"), RCol("month")),
                       Gt(RCol("sale"), BCol("avg_sale")));
  Table second = *MdJoin(cube, sales, {Count("above_avg")}, theta2);
  std::printf("With above-average counts (head):\n%s\n", second.ToString(10).c_str());

  // How a cost-based optimizer would compute the distributive part: the
  // PIPESORT plan (Figure 2 machinery), rolled up via Theorem 4.5.
  CubeLattice lattice = *CubeLattice::Make(dims);
  auto cardinality = *CuboidCardinalities(sales, lattice);
  PipesortPlan plan = *BuildPipesortPlan(lattice, cardinality);
  std::printf("PIPESORT pipelined paths for this cube:\n%s", plan.ToString().c_str());
  CubeExecStats stats;
  Table pipesort_cube = *ExecutePipesortPlan(plan, sales, {Sum(RCol("sale"), "sum_sale")},
                                             &stats);
  std::printf("pipesort execution: %d sorts, %lld rows scanned "
              "(vs %lld for recompute-from-detail)\n",
              static_cast<int>(stats.sorts),
              static_cast<long long>(stats.rows_scanned),
              static_cast<long long>(4 * sales.num_rows()));

  // Cross-check: both strategies agree with each other.
  Table direct = *MdJoin(base, sales, {Sum(RCol("sale"), "sum_sale")}, theta);
  std::printf("pipesort result == direct MD-join cube: %s\n",
              TablesEqualUnordered(pipesort_cube, direct) ? "yes" : "NO (bug!)");
  return 0;
}
