/// Subcube materialization advisor — the application the paper's conclusion
/// points at ("materializing an optimal set of subcubes"). Given a detail
/// relation and a view budget, the greedy selector picks which cuboids to
/// precompute; Theorem 4.5 roll-ups materialize them (only the full cuboid
/// ever reads the detail relation); any granularity is then answered from
/// its cheapest materialized ancestor. Includes an EXPLAIN ANALYZE-style
/// profile of an equivalent MD-join plan for comparison.

#include <cstdio>

#include "mdjoin/mdjoin.h"

using namespace mdjoin;       // NOLINT
using namespace mdjoin::dsl;  // NOLINT

int main() {
  SalesConfig config;
  config.num_rows = 100000;
  config.num_customers = 200;
  config.num_products = 50;
  config.num_months = 12;
  config.num_states = 10;
  Table sales = GenerateSales(config);

  CubeLattice lattice = *CubeLattice::Make({"prod", "month", "state"});
  auto cardinality = *CuboidCardinalities(sales, lattice);
  std::printf("cuboid cardinalities (|R| = %lld):\n",
              static_cast<long long>(sales.num_rows()));
  for (CuboidMask mask : lattice.AllCuboids()) {
    std::printf("  %-22s %8lld rows\n", lattice.CuboidName(mask).c_str(),
                static_cast<long long>(cardinality[mask]));
  }

  for (int budget : {1, 3, 5}) {
    SubcubeSelection sel = *SelectSubcubesGreedy(lattice, cardinality, budget);
    std::printf("\nbudget %d -> %s (benefit %.0f rows/query saved)\n", budget,
                sel.ToString(lattice).c_str(), sel.total_benefit);
  }

  // Materialize with budget 4 and answer every granularity.
  SubcubeSelection sel = *SelectSubcubesGreedy(lattice, cardinality, 4);
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total"), Count("n")};
  Timer timer;
  auto materialized = *MaterializeSubcubes(sel, lattice, cardinality, sales, aggs);
  std::printf("\nmaterialized %zu cuboids in %.1f ms (one detail scan + roll-ups)\n",
              materialized.size(), timer.ElapsedMillis());

  timer.Reset();
  int64_t answered_rows = 0;
  for (CuboidMask target : lattice.AllCuboids()) {
    Table answer =
        *AnswerFromSubcubes(sel, lattice, cardinality, materialized, aggs, target);
    answered_rows += answer.num_rows();
  }
  double from_views_ms = timer.ElapsedMillis();

  timer.Reset();
  ExprPtr theta = CombineConjuncts({Eq(BCol("prod"), RCol("prod")),
                                    Eq(BCol("month"), RCol("month")),
                                    Eq(BCol("state"), RCol("state"))});
  for (CuboidMask target : lattice.AllCuboids()) {
    Table base = *CuboidBase(sales, lattice, target);
    Table answer = *MdJoin(base, sales, aggs, theta);
    answered_rows -= answer.num_rows();  // should cancel to 0
  }
  double from_detail_ms = timer.ElapsedMillis();
  std::printf("answering all %d granularities: %.1f ms from views vs %.1f ms from "
              "detail (%.0fx); row-count check: %lld (0 = identical)\n",
              1 << lattice.num_dims(), from_views_ms, from_detail_ms,
              from_detail_ms / from_views_ms, static_cast<long long>(answered_rows));

  // EXPLAIN ANALYZE of one equivalent MD-join plan, for the curious.
  Catalog catalog;
  if (!catalog.Register("sales", &sales).ok()) return 1;
  PlanPtr plan = MdJoinPlan(CuboidBasePlan(TableRef("sales"), lattice.dims(), 0b011),
                            TableRef("sales"), aggs, theta);
  ProfiledResult profiled = *ExecutePlanProfiled(plan, catalog);
  std::printf("\nprofile of the direct (prod, month) cuboid MD-join:\n%s",
              profiled.ToString().c_str());
  return 0;
}
