/// mdjoin_cli — run ANALYZE BY / EMF-SQL queries against CSV files from the
/// command line. The library as a usable tool:
///
///   example_mdjoin_cli --table Sales=sales.csv:'cust:int64,state:string,...'
///                      [--emf] [--explain] [--optimize] [--explain-analyze]
///                      [--trace-out=FILE] [--metrics-out=FILE]
///                      [--timeout-ms N] [--memory-limit BYTES[k|m|g]]
///                      [--simd auto|scalar|avx2|neon]
///                      [--storage memory|paged] [--block-cache-bytes BYTES[k|m|g]]
///                      [--block-size-rows N] [--spill-dir DIR]
///                      [--server-sim N] [--sim-queries M]
///                      'select ... analyze by ...'
///
/// --timeout-ms and --memory-limit attach a QueryGuard to the run: the query
/// is cancelled with "Deadline exceeded" past the timeout, and "Resource
/// exhausted" if the engine's accounted memory crosses the limit (exit 3 for
/// either). With no arguments, runs a self-contained demo on generated data.
///
/// Observability (docs/OPERATOR.md §10):
///   --explain-analyze   execute recording a per-operator profile and print
///                       the annotated plan (rows, selectivity, timings, the
///                       optimizer's rewrite log, terminal status) instead of
///                       the result rows. No CSE: the plan runs as written.
///   --trace-out=FILE    collect a Chrome trace (chrome://tracing / Perfetto)
///                       of the execution — per-worker tracks with morsel
///                       spans, steal waits, merge tree, guard trips.
///   --metrics-out=FILE  dump the process metrics registry after the run
///                       (Prometheus text, or JSON when FILE ends in .json).
///
/// Query service simulation (docs/OPERATOR.md §11):
///   --server-sim N      instead of executing the query once, open N
///                       concurrent sessions on a QueryService and run the
///                       query --sim-queries times from each, through
///                       admission control and the result cache. Prints an
///                       admission/cache summary (ok / shed / failed counts,
///                       cache hit mix, latency percentiles). --timeout-ms,
///                       --memory-limit and --threads become the per-query
///                       session overrides. Combine with --metrics-out to
///                       dump the server metric catalog after the run.
///   --sim-queries M     queries per simulated session (default 4).
///
/// Workload telemetry (docs/OPERATOR.md §13):
///   --analyze           scan every loaded table up front (row counts,
///                       min/max, NDV sketches, equi-depth histograms) and
///                       register the statistics in the catalog — the cost
///                       model then estimates from measurements instead of
///                       its fallback constants.
///   --repeat N          run the query N times in-process. Combined with
///                       --explain-analyze, runs share a feedback store, so
///                       later runs estimate from earlier measurements
///                       (prints per-run max q-error).
///   --query-log=FILE    append one JSONL query record per run (fingerprint,
///                       plan hash, timings, rows, outcome, max q-error).
///   --slow-query-ms N   flag runs slower than N ms (trace instant +
///                       mdjoin_slow_queries_total).
///   --stats-dump        print table statistics, feedback-store, and
///                       query-history summaries before exiting.
///
/// Out-of-core storage (docs/OPERATOR.md §12):
///   --storage paged     convert every --table to a paged block file (written
///                       next to the CSV with a .mdjb suffix) and run the
///                       MD-join out-of-core: blocks faulted on demand, zone
///                       maps pruning non-matching blocks before decode.
///   --block-cache-bytes fixed budget for the decoded-block cache (paged mode;
///                       default 64m; 0 streams blocks with no cache).
///   --block-size-rows   rows per storage block when converting (default 4096).
///   --spill-dir DIR     enable partitioned spill: when θ carries an equi
///                       conjunct, base and detail hash-partition to files
///                       under DIR and partition pairs join independently.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "mdjoin/mdjoin.h"

using namespace mdjoin;  // NOLINT

namespace {

/// Parses "name:type,name:type" into a Schema.
Result<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<Field> fields;
  for (const std::string& piece : SplitString(spec, ',')) {
    std::vector<std::string> parts = SplitString(std::string(StripWhitespace(piece)), ':');
    if (parts.size() != 2) {
      return Status::InvalidArgument("bad column spec '", piece,
                                     "' (want name:type)");
    }
    DataType type;
    if (parts[1] == "int64") {
      type = DataType::kInt64;
    } else if (parts[1] == "float64") {
      type = DataType::kFloat64;
    } else if (parts[1] == "string") {
      type = DataType::kString;
    } else {
      return Status::InvalidArgument("unknown type '", parts[1],
                                     "' (int64|float64|string)");
    }
    fields.push_back({parts[0], type});
  }
  return Schema(std::move(fields));
}

struct LoadedTable {
  std::string name;
  Table table;
};

/// Parses "67108864", "64m", "1g", ... into bytes.
Result<int64_t> ParseByteSize(const std::string& spec) {
  if (spec.empty()) return Status::InvalidArgument("--memory-limit: empty value");
  std::string digits = spec;
  int64_t multiplier = 1;
  switch (digits.back()) {
    case 'k': case 'K': multiplier = 1024; digits.pop_back(); break;
    case 'm': case 'M': multiplier = 1024 * 1024; digits.pop_back(); break;
    case 'g': case 'G': multiplier = 1024 * 1024 * 1024; digits.pop_back(); break;
    default: break;
  }
  char* end = nullptr;
  int64_t value = std::strtoll(digits.c_str(), &end, 10);
  if (digits.empty() || *end != '\0' || value <= 0) {
    return Status::InvalidArgument("--memory-limit: bad size '", spec,
                                   "' (want N, Nk, Nm, or Ng)");
  }
  return value * multiplier;
}

/// Parses "Name=path.csv:col:type,col:type" and loads the file.
Result<LoadedTable> LoadTableSpec(const std::string& spec) {
  size_t eq = spec.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("--table wants Name=path.csv:schema");
  }
  std::string name = spec.substr(0, eq);
  std::string rest = spec.substr(eq + 1);
  size_t colon = rest.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("--table wants a :schema suffix after the path");
  }
  std::string path = rest.substr(0, colon);
  MDJ_ASSIGN_OR_RETURN(Schema schema, ParseSchemaSpec(rest.substr(colon + 1)));
  MDJ_ASSIGN_OR_RETURN(Table table, ReadCsvFile(path, schema));
  return LoadedTable{std::move(name), std::move(table)};
}

/// Writes `contents` to `path` ("-" for stdout). Returns false on I/O error.
bool WriteTextFile(const std::string& path, const std::string& contents) {
  if (path == "-") {
    std::fwrite(contents.data(), 1, contents.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  return std::fclose(f) == 0 && written == contents.size();
}

/// --server-sim: drives the bound query plan through a QueryService from
/// `sessions` concurrent sessions (`queries_per_session` queries each) and
/// prints an admission/cache summary instead of result rows. Per-query
/// overrides come from the --timeout-ms / --memory-limit / --threads flags.
int RunServerSim(const Catalog& catalog, const PlanPtr& plan, int sessions,
                 int queries_per_session, const QueryGuardOptions& guard_options,
                 int num_threads, const std::string& query_log_path,
                 int64_t slow_query_ms, bool stats_dump) {
  QueryServiceOptions service_options;
  service_options.query_log_path = query_log_path;
  service_options.slow_query_ms = slow_query_ms;
  // Profiled execution is what puts max q-error into the records the dump
  // summarizes, so the dump flag opts the service into feedback collection.
  service_options.collect_feedback = stats_dump;
  SessionQueryOptions query_options;
  if (guard_options.timeout_ms > 0) query_options.timeout_ms = guard_options.timeout_ms;
  if (guard_options.memory_hard_limit_bytes > 0) {
    query_options.memory_bytes = guard_options.memory_hard_limit_bytes;
  }
  query_options.threads = num_threads;

  QueryService service(catalog, service_options);
  std::vector<std::unique_ptr<Session>> handles;
  for (int i = 0; i < sessions; ++i) {
    handles.push_back(service.OpenSession("sim" + std::to_string(i)));
  }

  Mutex mu;
  int64_t ok = 0, shed = 0, failed = 0;
  int64_t hits = 0, rollup_hits = 0, misses = 0;
  std::vector<int64_t> latency_us, queue_wait_ms;
  std::string first_error;
  std::vector<std::thread> clients;
  for (int i = 0; i < sessions; ++i) {
    clients.emplace_back([&, i] {
      for (int q = 0; q < queries_per_session; ++q) {
        const auto start = std::chrono::steady_clock::now();
        Result<QueryResult> result = handles[i]->Execute(plan, query_options);
        const int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::steady_clock::now() - start)
                               .count();
        MutexLock lock(mu);
        if (result.ok()) {
          ++ok;
          latency_us.push_back(us);
          queue_wait_ms.push_back(result->stats.queue_wait_ms);
          switch (result->stats.cache) {
            case CacheOutcome::kHit: ++hits; break;
            case CacheOutcome::kRollupHit: ++rollup_hits; break;
            case CacheOutcome::kMiss: ++misses; break;
            case CacheOutcome::kDisabled: break;
          }
        } else if (result.status().IsResourceExhausted()) {
          ++shed;
        } else {
          ++failed;
          if (first_error.empty()) first_error = result.status().ToString();
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  if (stats_dump && service.history() != nullptr) {
    std::printf("%s", service.history()->SummaryText().c_str());
    std::printf("feedback store: %lld entries\n",
                static_cast<long long>(service.feedback().size()));
  }
  handles.clear();

  auto percentile = [](std::vector<int64_t>& v, double p) -> int64_t {
    if (v.empty()) return 0;
    std::sort(v.begin(), v.end());
    const size_t idx = std::min(v.size() - 1,
                                static_cast<size_t>(p * static_cast<double>(v.size())));
    return v[idx];
  };
  std::printf("server-sim: %d sessions x %d queries\n", sessions, queries_per_session);
  std::printf("  ok=%lld shed=%lld failed=%lld\n", static_cast<long long>(ok),
              static_cast<long long>(shed), static_cast<long long>(failed));
  std::printf("  cache: hit=%lld rollup_hit=%lld miss=%lld\n",
              static_cast<long long>(hits), static_cast<long long>(rollup_hits),
              static_cast<long long>(misses));
  std::printf("  latency_ms: p50=%.1f p99=%.1f  queue_wait_ms: p99=%lld\n",
              static_cast<double>(percentile(latency_us, 0.50)) / 1000.0,
              static_cast<double>(percentile(latency_us, 0.99)) / 1000.0,
              static_cast<long long>(percentile(queue_wait_ms, 0.99)));
  if (failed > 0) {
    std::fprintf(stderr, "error: %lld queries failed; first: %s\n",
                 static_cast<long long>(failed), first_error.c_str());
    return 1;
  }
  return 0;
}

int RunDemo() {
  std::printf("no arguments: running the built-in demo on generated data\n\n");
  SalesConfig config;
  config.num_rows = 5000;
  config.num_customers = 20;
  config.num_states = 4;
  Table sales = GenerateSales(config);
  Catalog catalog;
  if (!catalog.Register("Sales", &sales).ok()) return 1;
  const char* sql =
      "select cust, count(*) as n, sum(sale) as total, avg(X.sale) as avg_ny "
      "from Sales analyze by group(cust) "
      "such that X: X.cust = cust and X.state = 'NY' "
      "having n > 100 order by total desc";
  std::printf("query:\n  %s\n\n", sql);
  Result<analyze::BoundQuery> bound = analyze::BindQueryString(sql, catalog);
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return 1;
  }
  QueryProfile profile;
  Result<PlanPtr> optimized =
      OptimizePlan(bound->plan, catalog, {}, nullptr, &profile.rewrites);
  if (!optimized.ok()) {
    std::fprintf(stderr, "%s\n", optimized.status().ToString().c_str());
    return 1;
  }
  Result<Table> result = ExplainAnalyze(*optimized, catalog, {}, &profile);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\nexplain analyze:\n%s", result->ToString(15).c_str(),
              profile.ToText().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return RunDemo();

  std::vector<LoadedTable> tables;
  bool use_emf = false, explain = false, optimize = false, explain_analyze = false;
  QueryGuardOptions guard_options;
  int num_threads = 1;
  int64_t morsel_size = 0;
  simd::Backend simd_backend = simd::Backend::kAuto;
  int server_sim = 0, sim_queries = 4;
  bool analyze_tables = false, stats_dump = false;
  int repeat = 1;
  int64_t slow_query_ms = 0;
  std::string query_log_path;
  bool paged_storage = false;
  int64_t block_cache_bytes = int64_t{64} << 20;
  int64_t block_size_rows = 4096;
  std::string spill_dir;
  std::string query, trace_out, metrics_out;
  // `--flag=value` spelling for the output-path flags.
  auto eq_value = [](const char* arg, const char* flag, std::string* out) {
    const size_t len = std::strlen(flag);
    if (std::strncmp(arg, flag, len) != 0 || arg[len] != '=') return false;
    *out = arg + len + 1;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--table") == 0 && i + 1 < argc) {
      Result<LoadedTable> loaded = LoadTableSpec(argv[++i]);
      if (!loaded.ok()) {
        std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
        return 2;
      }
      tables.push_back(std::move(*loaded));
    } else if (std::strcmp(argv[i], "--emf") == 0) {
      use_emf = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--optimize") == 0) {
      optimize = true;
    } else if (std::strcmp(argv[i], "--explain-analyze") == 0) {
      explain_analyze = true;
    } else if (std::strcmp(argv[i], "--analyze") == 0) {
      analyze_tables = true;
    } else if (std::strcmp(argv[i], "--stats-dump") == 0) {
      stats_dump = true;
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      if (repeat < 1) {
        std::fprintf(stderr, "error: --repeat wants a positive integer\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--slow-query-ms") == 0 && i + 1 < argc) {
      slow_query_ms = std::strtoll(argv[++i], nullptr, 10);
      if (slow_query_ms < 1) {
        std::fprintf(stderr, "error: --slow-query-ms wants a positive integer\n");
        return 2;
      }
    } else if (eq_value(argv[i], "--query-log", &query_log_path)) {
    } else if (std::strcmp(argv[i], "--query-log") == 0 && i + 1 < argc) {
      query_log_path = argv[++i];
    } else if (eq_value(argv[i], "--trace-out", &trace_out)) {
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (eq_value(argv[i], "--metrics-out", &metrics_out)) {
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      guard_options.timeout_ms = std::strtoll(argv[++i], nullptr, 10);
      if (guard_options.timeout_ms <= 0) {
        std::fprintf(stderr, "error: --timeout-ms wants a positive integer\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--memory-limit") == 0 && i + 1 < argc) {
      Result<int64_t> bytes = ParseByteSize(argv[++i]);
      if (!bytes.ok()) {
        std::fprintf(stderr, "error: %s\n", bytes.status().ToString().c_str());
        return 2;
      }
      // Soft budget (degrade to multi-pass) and hard ceiling in one flag.
      guard_options.memory_budget_bytes = *bytes;
      guard_options.memory_hard_limit_bytes = *bytes;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      num_threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      if (num_threads < 1) {
        std::fprintf(stderr, "error: --threads wants a positive integer\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--server-sim") == 0 && i + 1 < argc) {
      server_sim = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      if (server_sim < 1) {
        std::fprintf(stderr, "error: --server-sim wants a positive session count\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--sim-queries") == 0 && i + 1 < argc) {
      sim_queries = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      if (sim_queries < 1) {
        std::fprintf(stderr, "error: --sim-queries wants a positive integer\n");
        return 2;
      }
    } else if (std::string simd_spec;
               eq_value(argv[i], "--simd", &simd_spec) ||
               (std::strcmp(argv[i], "--simd") == 0 && i + 1 < argc &&
                (simd_spec = argv[++i], true))) {
      if (!simd::ParseBackend(simd_spec, &simd_backend)) {
        std::fprintf(stderr,
                     "error: --simd wants auto, scalar, avx2, or neon (got '%s')\n",
                     simd_spec.c_str());
        return 2;
      }
    } else if (std::string storage_spec;
               eq_value(argv[i], "--storage", &storage_spec) ||
               (std::strcmp(argv[i], "--storage") == 0 && i + 1 < argc &&
                (storage_spec = argv[++i], true))) {
      if (storage_spec == "paged") {
        paged_storage = true;
      } else if (storage_spec != "memory") {
        std::fprintf(stderr, "error: --storage wants memory or paged (got '%s')\n",
                     storage_spec.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--block-cache-bytes") == 0 && i + 1 < argc) {
      Result<int64_t> bytes = ParseByteSize(argv[++i]);
      if (!bytes.ok() && std::strcmp(argv[i], "0") != 0) {
        std::fprintf(stderr, "error: %s\n", bytes.status().ToString().c_str());
        return 2;
      }
      block_cache_bytes = bytes.ok() ? *bytes : 0;
    } else if (std::strcmp(argv[i], "--block-size-rows") == 0 && i + 1 < argc) {
      block_size_rows = std::strtoll(argv[++i], nullptr, 10);
      if (block_size_rows < 1) {
        std::fprintf(stderr, "error: --block-size-rows wants a positive integer\n");
        return 2;
      }
    } else if (eq_value(argv[i], "--spill-dir", &spill_dir)) {
    } else if (std::strcmp(argv[i], "--spill-dir") == 0 && i + 1 < argc) {
      spill_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--morsel-size") == 0 && i + 1 < argc) {
      morsel_size = std::strtoll(argv[++i], nullptr, 10);
      if (morsel_size < 0) {
        std::fprintf(stderr, "error: --morsel-size wants a non-negative integer "
                             "(0 = align to block size)\n");
        return 2;
      }
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    } else {
      query = argv[i];
    }
  }
  if (query.empty() || tables.empty()) {
    std::fprintf(stderr,
                 "usage: %s --table Name=file.csv:col:type,... [--emf] [--explain] "
                 "[--optimize] [--explain-analyze] [--trace-out=FILE] "
                 "[--metrics-out=FILE] "
                 "[--timeout-ms N] [--memory-limit BYTES[k|m|g]] "
                 "[--threads N] [--morsel-size ROWS] [--simd auto|scalar|avx2|neon] "
                 "[--storage memory|paged] [--block-cache-bytes BYTES[k|m|g]] "
                 "[--block-size-rows N] [--spill-dir DIR] "
                 "[--server-sim N] [--sim-queries M] "
                 "[--analyze] [--repeat N] [--query-log=FILE] "
                 "[--slow-query-ms N] [--stats-dump] "
                 "'query'\n",
                 argv[0]);
    return 2;
  }

  Catalog catalog;
  std::vector<std::unique_ptr<PagedTable>> paged_tables;
  std::vector<std::string> block_files;
  std::unique_ptr<BlockCache> block_cache;
  if (paged_storage) {
    // Convert each loaded table to a block file in the temp directory, then
    // register the paged handle: the engine faults blocks on demand instead
    // of scanning the in-memory copy.
    const std::string dir = std::filesystem::temp_directory_path().string();
    for (const LoadedTable& t : tables) {
      std::string path = dir + "/mdjoin_cli_" + t.name + "_" +
                         std::to_string(static_cast<long long>(::getpid())) +
                         ".mdjb";
      BlockFileOptions file_options;
      file_options.block_size_rows = block_size_rows;
      if (Status s = WriteBlockFile(t.table, path, file_options); !s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
        return 2;
      }
      block_files.push_back(path);
      Result<std::unique_ptr<PagedTable>> opened = PagedTable::Open(path);
      if (!opened.ok()) {
        std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
        return 2;
      }
      paged_tables.push_back(std::move(*opened));
      if (Status s = RegisterPagedTable(&catalog, t.name, *paged_tables.back());
          !s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
        return 2;
      }
    }
    if (block_cache_bytes > 0) {
      BlockCache::Options cache_options;
      cache_options.capacity_bytes = block_cache_bytes;
      block_cache = std::make_unique<BlockCache>(cache_options);
    }
  } else {
    for (const LoadedTable& t : tables) {
      if (Status s = catalog.Register(t.name, &t.table); !s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
        return 2;
      }
    }
  }
  // Remove the converted block files when main returns on any path.
  struct BlockFileCleanup {
    const std::vector<std::string>* paths;
    ~BlockFileCleanup() {
      std::error_code ec;
      for (const std::string& p : *paths) std::filesystem::remove(p, ec);
    }
  } block_file_cleanup{&block_files};

  // --analyze: collect statistics from the loaded in-memory copies (also the
  // source the block files were converted from in paged mode) and attach
  // them to the catalog, so cost estimates below use measurements.
  std::vector<TableStats> table_stats;
  if (analyze_tables) {
    table_stats.reserve(tables.size());
    for (const LoadedTable& t : tables) {
      Result<TableStats> stats = AnalyzeTable(t.table, t.name);
      if (!stats.ok()) {
        std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
        return 2;
      }
      table_stats.push_back(std::move(*stats));
      if (Status s = catalog.RegisterStats(t.name, &table_stats.back()); !s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
        return 2;
      }
    }
  }

  Result<analyze::BoundQuery> bound =
      use_emf ? analyze::BindEmfQueryString(query, catalog)
              : analyze::BindQueryString(query, catalog);
  if (!bound.ok()) {
    std::fprintf(stderr, "error: %s\n", bound.status().ToString().c_str());
    return 1;
  }
  PlanPtr plan = bound->plan;
  QueryProfile profile;
  if (optimize) {
    Result<PlanPtr> optimized =
        OptimizePlan(plan, catalog, {}, nullptr, &profile.rewrites);
    if (!optimized.ok()) {
      std::fprintf(stderr, "error: %s\n", optimized.status().ToString().c_str());
      return 1;
    }
    plan = *optimized;
  }
  if (explain) {
    std::printf("plan:\n%s\n", ExplainPlan(plan).c_str());
    std::vector<std::string> analysis = StaticAnalysisReport(plan, catalog);
    if (!analysis.empty()) {
      std::printf("static analysis:\n");
      for (const std::string& line : analysis) std::printf("  %s\n", line.c_str());
      std::printf("\n");
    }
  }
  // Stops tracing and writes the trace/metrics dumps requested on the
  // command line; shared by the single-query and --server-sim paths.
  auto dump_observability = [&]() -> bool {
    if (!trace_out.empty()) {
      Tracing::Stop();
      if (!ChromeTraceWriter::WriteFile(trace_out)) {
        std::fprintf(stderr, "error: could not write trace to %s\n", trace_out.c_str());
        return false;
      }
    }
    if (!metrics_out.empty()) {
      MetricsRegistry& registry = MetricsRegistry::Global();
      const bool json = metrics_out.size() >= 5 &&
                        metrics_out.compare(metrics_out.size() - 5, 5, ".json") == 0;
      if (!WriteTextFile(metrics_out, json ? registry.RenderJson()
                                           : registry.RenderText())) {
        std::fprintf(stderr, "error: could not write metrics to %s\n",
                     metrics_out.c_str());
        return false;
      }
    }
    return true;
  };

  if (server_sim > 0) {
    // The service optimizes (canonicalizes) plans itself, so hand it the
    // bound plan as-is; --optimize only affects the single-query path.
    if (!trace_out.empty()) Tracing::Start();
    const int rc =
        RunServerSim(catalog, bound->plan, server_sim, sim_queries, guard_options,
                     num_threads, query_log_path, slow_query_ms, stats_dump);
    if (!dump_observability()) return 2;
    return rc;
  }

  const bool guarded = guard_options.timeout_ms > 0 ||
                       guard_options.memory_hard_limit_bytes > 0;
  QueryGuard guard(guard_options);
  MdJoinOptions md_options;
  if (guarded) md_options.guard = &guard;
  md_options.num_threads = num_threads;
  md_options.morsel_size = morsel_size;
  // Pinning an unavailable backend fails query compilation with a clear
  // error, never a silent fallback.
  md_options.simd = simd_backend;
  md_options.block_cache = block_cache.get();
  if (!spill_dir.empty()) {
    md_options.enable_spill = true;
    md_options.spill_dir = spill_dir;
  }

  // Feedback store shared across --repeat runs: run k's EXPLAIN ANALYZE
  // estimates from the cardinalities measured in runs 1..k-1, so the max
  // q-error line should drop run over run.
  FeedbackStore feedback;
  if (explain_analyze) md_options.feedback = &feedback;

  std::unique_ptr<QueryHistory> history;
  if (!query_log_path.empty() || slow_query_ms > 0 || stats_dump) {
    QueryHistory::Options history_options;
    history_options.log_path = query_log_path;
    history_options.slow_query_ms = slow_query_ms;
    history = std::make_unique<QueryHistory>(history_options);
  }
  const uint64_t query_fingerprint = FingerprintString(ExplainPlan(bound->plan));
  const uint64_t plan_hash = FingerprintString(ExplainPlan(plan));

  if (!trace_out.empty()) Tracing::Start();
  Result<Table> result = Status::Internal("query never ran (--repeat 0)");
  for (int run = 1; run <= repeat; ++run) {
    const auto run_start = std::chrono::steady_clock::now();
    result = explain_analyze ? ExplainAnalyze(plan, catalog, md_options, &profile)
                             : ExecutePlanCse(plan, catalog, md_options);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - run_start)
            .count();
    if (repeat > 1 && explain_analyze) {
      std::printf("run %d/%d: max q-error=%.2f\n", run, repeat,
                  profile.max_qerror);
    }
    if (history != nullptr) {
      QueryRecord record;
      record.fingerprint = query_fingerprint;
      record.plan_hash = plan_hash;
      record.wall_ms = wall_ms;
      if (result.ok()) {
        record.rows = result->num_rows();
        record.outcome = "ok";
      } else {
        const StatusCode code = result.status().code();
        record.outcome = code == StatusCode::kDeadlineExceeded ? "deadline"
                         : code == StatusCode::kResourceExhausted
                             ? "shed"
                         : code == StatusCode::kCancelled ? "cancelled"
                                                          : "error";
        record.guard_tripped = code == StatusCode::kDeadlineExceeded ||
                               code == StatusCode::kCancelled;
      }
      if (explain_analyze) {
        record.max_qerror = profile.max_qerror;
        record.cpu_ms = profile.root != nullptr ? profile.root->cpu_ms : 0;
        // Engine counters live on the profile's MD-join nodes, not the root.
        const std::function<void(const OperatorProfile&)> sum_counters =
            [&](const OperatorProfile& node) {
              record.detail_rows_scanned += node.detail_rows_scanned;
              record.blocks_read += node.blocks_read;
              record.spill_bytes += node.spill_bytes_written;
              for (const auto& child : node.children) sum_counters(*child);
            };
        if (profile.root != nullptr) sum_counters(*profile.root);
      }
      history->Record(std::move(record));
    }
    if (!result.ok()) break;
  }
  if (!dump_observability()) return 2;
  // The profile of a failed/cancelled run is still well-formed (partial
  // counts + terminal status), so print it before the exit-code logic.
  if (explain_analyze) std::printf("%s", profile.ToText().c_str());
  if (stats_dump) {
    for (const TableStats& stats : table_stats) {
      std::printf("%s", stats.SummaryText().c_str());
    }
    if (explain_analyze) {
      std::printf("feedback store: %lld entries\n",
                  static_cast<long long>(feedback.size()));
    }
    if (history != nullptr) std::printf("%s", history->SummaryText().c_str());
  }
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    StatusCode code = result.status().code();
    return (code == StatusCode::kCancelled || code == StatusCode::kDeadlineExceeded ||
            code == StatusCode::kResourceExhausted)
               ? 3
               : 1;
  }
  if (!explain_analyze) std::printf("%s", TableToCsv(*result).c_str());
  return 0;
}
