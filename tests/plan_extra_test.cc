/// Plan-IR plumbing not covered by the rule tests: the Sort node, schema
/// inference corner cases, CloneWithChildren, executor CSE behavior, cost
/// estimates per node kind, and explain-label rendering.

#include <gtest/gtest.h>

#include "expr/conjuncts.h"
#include "optimizer/cost.h"
#include "optimizer/executor.h"
#include "optimizer/plan.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT

class PlanExtraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sales_ = testutil::SmallSales();
    ASSERT_TRUE(catalog_.Register("sales", &sales_).ok());
  }

  Table sales_;
  Catalog catalog_;
};

TEST_F(PlanExtraTest, SortNodeOrdersRows) {
  PlanPtr plan = SortPlan(TableRef("sales"), {"sale"}, {false});
  Result<Table> out = ExecutePlan(plan, catalog_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  for (int64_t r = 1; r < out->num_rows(); ++r) {
    EXPECT_GE(out->Get(r - 1, 6).AsDouble(), out->Get(r, 6).AsDouble());
  }
}

TEST_F(PlanExtraTest, SortNodeMultiKeyAndSchema) {
  PlanPtr plan = SortPlan(TableRef("sales"), {"cust", "month"});
  Result<Schema> schema = InferSchema(plan, catalog_);
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->Equals(sales_.schema()));
  // Unknown sort column is caught by inference.
  PlanPtr bad = SortPlan(TableRef("sales"), {"bogus"});
  EXPECT_FALSE(InferSchema(bad, catalog_).ok());
  EXPECT_NE(plan->Label().find("cust"), std::string::npos);
}

TEST_F(PlanExtraTest, CloneWithChildrenPreservesPayload) {
  PlanPtr md = MdJoinPlan(TableRef("sales"), TableRef("sales"),
                          {Count("n")}, Eq(RCol("cust"), BCol("cust")));
  PlanPtr cloned = CloneWithChildren(md, {TableRef("sales"), TableRef("sales")});
  EXPECT_EQ(ExplainPlan(md), ExplainPlan(cloned));
  PlanPtr sort = SortPlan(TableRef("sales"), {"cust"}, {false});
  PlanPtr sort_clone = CloneWithChildren(sort, {TableRef("sales")});
  EXPECT_EQ(sort->Label(), sort_clone->Label());
}

TEST_F(PlanExtraTest, CseReusesIdenticalSubtrees) {
  // The same expensive subquery (distinct customers) used on both sides of
  // a join: CSE must evaluate it once.
  PlanPtr dist = DistinctPlan(ProjectPlan(TableRef("sales"), {{Col("cust"), "cust"}}));
  PlanPtr join = HashJoinPlan(dist, dist, {"cust"}, {"cust"});
  ExecStats plain_stats, cse_stats;
  Result<Table> plain = ExecutePlan(join, catalog_, {}, &plain_stats);
  Result<Table> cse = ExecutePlanCse(join, catalog_, {}, &cse_stats);
  ASSERT_TRUE(plain.ok() && cse.ok());
  EXPECT_TRUE(TablesEqualUnordered(*plain, *cse));
  EXPECT_EQ(plain_stats.cse_hits, 0);
  EXPECT_EQ(cse_stats.cse_hits, 1);
  EXPECT_LT(cse_stats.nodes_executed, plain_stats.nodes_executed);
}

TEST_F(PlanExtraTest, CseDistinguishesDifferentPayloads) {
  PlanPtr f1 = FilterPlan(TableRef("sales"), Eq(Col("state"), Lit("NY")));
  PlanPtr f2 = FilterPlan(TableRef("sales"), Eq(Col("state"), Lit("NJ")));
  PlanPtr join = HashJoinPlan(f1, f2, {"cust"}, {"cust"});
  ExecStats stats;
  Result<Table> out = ExecutePlanCse(join, catalog_, {}, &stats);
  ASSERT_TRUE(out.ok());
  // Only the shared TableRef(sales) leaf is reused.
  EXPECT_EQ(stats.cse_hits, 1);
}

TEST_F(PlanExtraTest, CostCoversEveryNodeKind) {
  PlanPtr base = DistinctPlan(ProjectPlan(TableRef("sales"), {{Col("cust"), "cust"}}));
  std::vector<PlanPtr> plans = {
      TableRef("sales"),
      FilterPlan(TableRef("sales"), Eq(Col("state"), Lit("NY"))),
      ProjectPlan(TableRef("sales"), {{Col("cust"), "cust"}}),
      DistinctPlan(TableRef("sales")),
      UnionPlan({TableRef("sales"), TableRef("sales")}),
      PartitionPlan(TableRef("sales"), 0, 4),
      HashJoinPlan(base, base, {"cust"}, {"cust"}),
      GroupByPlan(TableRef("sales"), {"cust"}, {Count("n")}),
      MdJoinPlan(base, TableRef("sales"), {Count("n")}, Eq(RCol("cust"), BCol("cust"))),
      GeneralizedMdJoinPlan(base, TableRef("sales"),
                            {{{Count("n")}, Eq(RCol("cust"), BCol("cust"))}}),
      CubeBasePlan(TableRef("sales"), {"prod", "month"}),
      CuboidBasePlan(TableRef("sales"), {"prod", "month"}, 0b01),
      SortPlan(TableRef("sales"), {"cust"}),
  };
  for (const PlanPtr& plan : plans) {
    Result<PlanCost> cost = EstimateCost(plan, catalog_);
    ASSERT_TRUE(cost.ok()) << plan->Label() << ": " << cost.status().ToString();
    EXPECT_GE(cost->output_rows, 0) << plan->Label();
    EXPECT_GE(cost->work, 0) << plan->Label();
  }
}

TEST_F(PlanExtraTest, ProfiledExecutionMatchesPlainAndRecordsTree) {
  PlanPtr base = DistinctPlan(ProjectPlan(TableRef("sales"), {{Col("cust"), "cust"}}));
  PlanPtr plan = MdJoinPlan(base, TableRef("sales"), {Count("n")},
                            Eq(RCol("cust"), BCol("cust")));
  Result<ProfiledResult> profiled = ExecutePlanProfiled(plan, catalog_);
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();
  Result<Table> plain = ExecutePlan(plan, catalog_);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(TablesEqualOrdered(profiled->table, *plain));
  // The profile tree mirrors the plan tree.
  ASSERT_NE(profiled->profile.root, nullptr);
  const OperatorProfile& root = *profiled->profile.root;
  EXPECT_NE(root.label.find("MdJoin"), std::string::npos);
  EXPECT_EQ(root.output_rows, plain->num_rows());
  ASSERT_EQ(root.children.size(), 2u);  // base subtree + detail TableRef
  EXPECT_GE(root.elapsed_ms, 0);
  EXPECT_GE(root.self_ms, 0);
  double child_ms = root.children[0]->elapsed_ms + root.children[1]->elapsed_ms;
  EXPECT_NEAR(root.self_ms, root.elapsed_ms - child_ms, 1e-9);
  // The MD-join node carries its scan counters.
  EXPECT_TRUE(root.is_mdjoin);
  EXPECT_GT(root.detail_rows_scanned, 0);
  EXPECT_GT(root.matched_pairs, 0);
  EXPECT_TRUE(profiled->profile.complete);
  EXPECT_EQ(profiled->profile.terminal, "ok");
  // Rendering contains every operator.
  std::string text = profiled->ToString();
  EXPECT_NE(text.find("MdJoin"), std::string::npos);
  EXPECT_NE(text.find("Distinct"), std::string::npos);
  EXPECT_NE(text.find("rows="), std::string::npos);
  EXPECT_NE(text.find("terminal: ok"), std::string::npos);
}

TEST_F(PlanExtraTest, ExplainLabelsCarryPayload) {
  EXPECT_EQ(TableRef("t")->Label(), "TableRef(t)");
  EXPECT_EQ(PartitionPlan(TableRef("t"), 2, 5)->Label(), "Partition(2/5)");
  EXPECT_NE(HashJoinPlan(TableRef("a"), TableRef("b"), {"k"}, {"k"},
                         JoinType::kLeftOuter)
                ->Label()
                .find("left outer"),
            std::string::npos);
  EXPECT_NE(CuboidBasePlan(TableRef("t"), {"a", "b"}, 0b01)->Label().find("ALL"),
            std::string::npos);
  EXPECT_NE(GroupByPlan(TableRef("t"), {"k"}, {Count("n")})->Label().find("count"),
            std::string::npos);
}

TEST_F(PlanExtraTest, InferSchemaUnionMismatch) {
  PlanPtr a = ProjectPlan(TableRef("sales"), {{Col("cust"), "cust"}});
  PlanPtr b = ProjectPlan(TableRef("sales"), {{Col("state"), "state"}});
  EXPECT_TRUE(InferSchema(UnionPlan({a, b}), catalog_).status().IsTypeError());
  EXPECT_FALSE(InferSchema(UnionPlan({}), catalog_).ok());
}

TEST_F(PlanExtraTest, InferSchemaHashJoinSuffixing) {
  // Right side's non-key duplicate column gets "_r".
  PlanPtr join = HashJoinPlan(TableRef("sales"), TableRef("sales"), {"cust"}, {"cust"});
  Result<Schema> schema = InferSchema(join, catalog_);
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->FindField("sale").has_value());
  EXPECT_TRUE(schema->FindField("sale_r").has_value());
  // Executor agrees with inference.
  Result<Table> out = ExecutePlan(join, catalog_);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->schema().Equals(*schema));
}

TEST_F(PlanExtraTest, InferredSchemasMatchExecutionEverywhere) {
  PlanPtr base = DistinctPlan(ProjectPlan(TableRef("sales"), {{Col("cust"), "cust"}}));
  std::vector<PlanPtr> plans = {
      FilterPlan(TableRef("sales"), Gt(Col("sale"), Lit(100))),
      MdJoinPlan(base, TableRef("sales"), {Count("n"), Avg(RCol("sale"), "a")},
                 Eq(RCol("cust"), BCol("cust"))),
      GeneralizedMdJoinPlan(
          base, TableRef("sales"),
          {{{Count("n1")}, Eq(RCol("cust"), BCol("cust"))},
           {{Sum(RCol("sale"), "s2")},
            And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit("NY")))}}),
      CubeBasePlan(TableRef("sales"), {"prod", "month"}),
      CuboidBasePlan(TableRef("sales"), {"prod", "month"}, 0b10),
      GroupByPlan(TableRef("sales"), {"state"}, {Min(Col("sale"), "lo")}),
      SortPlan(TableRef("sales"), {"sale"}, {false}),
      PartitionPlan(TableRef("sales"), 1, 3),
  };
  for (const PlanPtr& plan : plans) {
    Result<Schema> inferred = InferSchema(plan, catalog_);
    Result<Table> executed = ExecutePlan(plan, catalog_);
    ASSERT_TRUE(inferred.ok() && executed.ok()) << plan->Label();
    EXPECT_TRUE(executed->schema().Equals(*inferred)) << plan->Label()
        << "\ninferred: " << inferred->ToString()
        << "\nexecuted: " << executed->schema().ToString();
  }
}

}  // namespace
}  // namespace mdjoin
