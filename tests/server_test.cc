// Tests for the concurrent query service (src/server): admission control
// (budgets, queueing, fairness, shedding), the cuboid-lattice result cache,
// session cancellation, and the QueryGuardOptions validation contract.
//
// Labelled "tsan" in tests/CMakeLists.txt: the queueing, cancellation, and
// overload tests exercise the cross-thread paths under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "expr/conjuncts.h"
#include "obs/metrics.h"
#include "optimizer/executor.h"
#include "optimizer/rules.h"
#include "server/query_service.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT

ExprPtr DimsTheta(const std::vector<std::string>& dims) {
  std::vector<ExprPtr> eqs;
  for (const std::string& d : dims) eqs.push_back(Eq(BCol(d), RCol(d)));
  return CombineConjuncts(std::move(eqs));
}

/// Spins until `cond` holds (1ms poll) or the timeout expires.
template <typename Cond>
bool WaitFor(Cond cond, std::chrono::milliseconds timeout = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!cond()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

int64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().GetCounter(name, "")->value();
}

/// Fixture: SmallSales registered as "sales"; failpoints reset around each
/// test so armed points never leak across cases.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Global()->Reset();
    sales_ = testutil::SmallSales();
    ASSERT_TRUE(catalog_.Register("sales", &sales_).ok());
  }
  void TearDown() override { FailpointRegistry::Global()->Reset(); }

  /// The running example's cuboid query at `mask` over (prod, month):
  /// MD-join of CuboidBase against Sales with SUM/COUNT — certified for
  /// Theorem-4.5 roll-up, so it gets a cache family.
  PlanPtr CuboidQuery(CuboidMask mask) const {
    std::vector<std::string> dims = {"prod", "month"};
    return MdJoinPlan(CuboidBasePlan(TableRef("sales"), dims, mask), TableRef("sales"),
                      {Sum(RCol("sale"), "total"), Count("n")}, DimsTheta(dims));
  }

  Table sales_;
  Catalog catalog_;
};

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

TEST_F(ServerTest, AdmissionFastPathHoldsAndReleasesBudget) {
  AdmissionController::Options opt;
  opt.total_memory_bytes = 1000;
  opt.total_threads = 4;
  AdmissionController ac(opt);
  {
    AdmissionRequest req;
    req.memory_bytes = 600;
    req.threads = 3;
    Result<AdmissionTicket> ticket = ac.Admit(req);
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    EXPECT_TRUE(ticket->valid());
    EXPECT_EQ(ticket->memory_bytes(), 600);
    EXPECT_EQ(ticket->threads(), 3);
    EXPECT_EQ(ticket->queue_wait_ms(), 0);
    EXPECT_EQ(ac.memory_in_use(), 600);
    EXPECT_EQ(ac.threads_in_use(), 3);
  }
  // RAII: destruction returned the budget.
  EXPECT_EQ(ac.memory_in_use(), 0);
  EXPECT_EQ(ac.threads_in_use(), 0);
}

TEST_F(ServerTest, AdmissionTicketMoveAndExplicitRelease) {
  AdmissionController ac({});
  AdmissionRequest req;
  req.memory_bytes = 100;
  Result<AdmissionTicket> ticket = ac.Admit(req);
  ASSERT_TRUE(ticket.ok());
  AdmissionTicket moved = std::move(*ticket);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(ticket->valid());
  EXPECT_EQ(ac.memory_in_use(), 100);
  moved.Release();
  EXPECT_FALSE(moved.valid());
  EXPECT_EQ(ac.memory_in_use(), 0);
  moved.Release();  // idempotent
  EXPECT_EQ(ac.memory_in_use(), 0);
}

TEST_F(ServerTest, AdmissionTicketSurvivesException) {
  AdmissionController ac({});
  try {
    AdmissionRequest req;
    req.memory_bytes = 64;
    req.threads = 2;
    Result<AdmissionTicket> ticket = ac.Admit(req);
    ASSERT_TRUE(ticket.ok());
    EXPECT_EQ(ac.threads_in_use(), 2);
    throw std::runtime_error("query crashed");
  } catch (const std::runtime_error&) {
    // Unwinding destroyed the ticket.
  }
  EXPECT_EQ(ac.memory_in_use(), 0);
  EXPECT_EQ(ac.threads_in_use(), 0);
}

TEST_F(ServerTest, AdmissionRejectsInvalidRequests) {
  AdmissionController ac({});
  AdmissionRequest req;
  req.memory_bytes = 0;
  EXPECT_TRUE(ac.Admit(req).status().IsInvalidArgument());
  req.memory_bytes = 1;
  req.threads = 0;
  EXPECT_TRUE(ac.Admit(req).status().IsInvalidArgument());
}

TEST_F(ServerTest, AdmissionShedsUnsatisfiableWithoutRetryHint) {
  AdmissionController::Options opt;
  opt.total_memory_bytes = 100;
  opt.total_threads = 2;
  AdmissionController ac(opt);
  AdmissionRequest req;
  req.memory_bytes = 101;  // can never fit
  Status s = ac.Admit(req).status();
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  // Retrying cannot help, so no hint is attached.
  EXPECT_EQ(AdmissionController::RetryAfterHintMs(s), -1);
}

TEST_F(ServerTest, AdmissionShedsWhenQueueFullWithRetryHint) {
  AdmissionController::Options opt;
  opt.total_memory_bytes = 100;
  opt.max_queue_depth = 0;  // never queue
  opt.retry_after_base_ms = 25;
  AdmissionController ac(opt);
  AdmissionRequest big;
  big.memory_bytes = 100;
  Result<AdmissionTicket> holder = ac.Admit(big);
  ASSERT_TRUE(holder.ok());

  const int64_t shed_before = CounterValue("mdjoin_server_shed_queue_full_total");
  Status s = ac.Admit(big).status();
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  EXPECT_EQ(AdmissionController::RetryAfterHintMs(s), 25);  // depth 0 → base
  EXPECT_EQ(CounterValue("mdjoin_server_shed_queue_full_total"), shed_before + 1);
}

TEST_F(ServerTest, RetryAfterHintParsesOnlyTaggedStatuses) {
  EXPECT_EQ(AdmissionController::RetryAfterHintMs(Status::ResourceExhausted("nope")), -1);
  EXPECT_EQ(AdmissionController::RetryAfterHintMs(
                Status::ResourceExhausted("x retry_after_ms=150")),
            150);
}

TEST_F(ServerTest, AdmissionQueuesUntilBudgetReleases) {
  AdmissionController::Options opt;
  opt.total_memory_bytes = 100;
  AdmissionController ac(opt);
  AdmissionRequest req;
  req.memory_bytes = 100;
  Result<AdmissionTicket> holder = ac.Admit(req);
  ASSERT_TRUE(holder.ok());

  Status queued_status = Status::OK();
  std::thread waiter([&] {
    Result<AdmissionTicket> t = ac.Admit(req);
    queued_status = t.status();
    // Ticket (if any) releases here.
  });
  ASSERT_TRUE(WaitFor([&] { return ac.queue_depth() == 1; }));
  holder->Release();
  waiter.join();
  EXPECT_TRUE(queued_status.ok()) << queued_status.ToString();
  EXPECT_EQ(ac.memory_in_use(), 0);
  EXPECT_EQ(ac.queue_depth(), 0);
}

TEST_F(ServerTest, AdmissionFairnessRoundRobinAcrossTenants) {
  // One thread token; tenant "a" floods the queue first, then "b" arrives.
  // Round-robin must interleave: a1, b1, a2 — not a1, a2, b1.
  AdmissionController::Options opt;
  opt.total_threads = 1;
  AdmissionController ac(opt);
  AdmissionRequest hold;
  Result<AdmissionTicket> holder = ac.Admit(hold);
  ASSERT_TRUE(holder.ok());

  Mutex order_mu;
  std::vector<std::string> order;
  auto client = [&](const std::string& tenant, const std::string& label) {
    AdmissionRequest req;
    req.tenant = tenant;
    Result<AdmissionTicket> t = ac.Admit(req);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    MutexLock lock(order_mu);
    order.push_back(label);
    // Ticket releases on return → next waiter admitted.
  };
  std::thread a1(client, "a", "a1");
  ASSERT_TRUE(WaitFor([&] { return ac.queue_depth() == 1; }));
  std::thread a2(client, "a", "a2");
  ASSERT_TRUE(WaitFor([&] { return ac.queue_depth() == 2; }));
  std::thread b1(client, "b", "b1");
  ASSERT_TRUE(WaitFor([&] { return ac.queue_depth() == 3; }));

  holder->Release();
  a1.join();
  a2.join();
  b1.join();
  EXPECT_EQ(order, (std::vector<std::string>{"a1", "b1", "a2"}));
}

TEST_F(ServerTest, AdmissionDeadlineExpiredPreQueue) {
  AdmissionController ac({});
  AdmissionRequest req;
  req.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  Status s = ac.Admit(req).status();
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
}

TEST_F(ServerTest, AdmissionDeadlineWhileQueued) {
  AdmissionController::Options opt;
  opt.total_memory_bytes = 100;
  AdmissionController ac(opt);
  AdmissionRequest hold;
  hold.memory_bytes = 100;
  Result<AdmissionTicket> holder = ac.Admit(hold);
  ASSERT_TRUE(holder.ok());

  const int64_t shed_before = CounterValue("mdjoin_server_shed_deadline_total");
  AdmissionRequest req;
  req.memory_bytes = 100;
  req.deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  Status s = ac.Admit(req).status();
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  EXPECT_NE(s.message().find("queued for admission"), std::string::npos) << s.ToString();
  EXPECT_EQ(CounterValue("mdjoin_server_shed_deadline_total"), shed_before + 1);
  EXPECT_EQ(ac.queue_depth(), 0);  // the expired waiter removed itself
}

TEST_F(ServerTest, AdmissionCancelWhileQueued) {
  AdmissionController::Options opt;
  opt.total_memory_bytes = 100;
  AdmissionController ac(opt);
  AdmissionRequest hold;
  hold.memory_bytes = 100;
  Result<AdmissionTicket> holder = ac.Admit(hold);
  ASSERT_TRUE(holder.ok());

  std::atomic<bool> cancelled{false};
  Status status = Status::OK();
  std::thread waiter([&] {
    AdmissionRequest req;
    req.memory_bytes = 100;
    req.cancelled = &cancelled;
    status = ac.Admit(req).status();
  });
  ASSERT_TRUE(WaitFor([&] { return ac.queue_depth() == 1; }));
  cancelled.store(true);
  ac.WakeAll();
  waiter.join();
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
  EXPECT_EQ(ac.queue_depth(), 0);
  EXPECT_EQ(ac.memory_in_use(), 100);  // only the holder's
}

TEST_F(ServerTest, AdmitFailpointForcesQueuePath) {
  FailpointRegistry::Global()->Enable("server:admit", 1);
  AdmissionController ac({});
  AdmissionRequest req;
  Result<AdmissionTicket> t = ac.Admit(req);
  // Still admitted (the queue drains an idle controller immediately), but via
  // the queue path — the failpoint fired.
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(FailpointRegistry::Global()->fire_count("server:admit"), 1);
}

TEST_F(ServerTest, ShedFailpointForcesQueueFullShed) {
  FailpointRegistry::Global()->Enable("server:admit", 1);
  FailpointRegistry::Global()->Enable("server:shed", 1);
  AdmissionController ac({});
  AdmissionRequest req;
  Status s = ac.Admit(req).status();
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  EXPECT_GE(AdmissionController::RetryAfterHintMs(s), 0);
}

TEST_F(ServerTest, TryChargeBytesSharesThePoolWithAdmission) {
  AdmissionController::Options opt;
  opt.total_memory_bytes = 100;
  AdmissionController ac(opt);
  EXPECT_TRUE(ac.TryChargeBytes(80));
  EXPECT_FALSE(ac.TryChargeBytes(21));  // would exceed the pool
  AdmissionRequest req;
  req.memory_bytes = 30;
  req.deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  // The cache charge counts against admission too.
  EXPECT_TRUE(ac.Admit(req).status().IsDeadlineExceeded());
  ac.ReleaseChargedBytes(80);
  req.deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  Result<AdmissionTicket> t = ac.Admit(req);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
}

// ---------------------------------------------------------------------------
// QueryGuardOptions::Validate (satellite: doc/behavior drift fix)
// ---------------------------------------------------------------------------

TEST_F(ServerTest, GuardOptionsValidateAcceptsDefaultsAndZeros) {
  QueryGuardOptions opt;
  EXPECT_TRUE(opt.Validate().ok());
  opt.timeout_ms = 0;  // 0 = off on every limit
  opt.memory_budget_bytes = 0;
  opt.memory_hard_limit_bytes = 0;
  opt.max_detail_rows = 0;
  opt.max_candidate_pairs = 0;
  EXPECT_TRUE(opt.Validate().ok());
}

TEST_F(ServerTest, GuardOptionsValidateRejectsNegativeAndInconsistent) {
  QueryGuardOptions opt;
  opt.timeout_ms = -1;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = {};
  opt.timeout_ms = QueryGuardOptions::kMaxTimeoutMs + 1;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = {};
  opt.memory_budget_bytes = -5;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = {};
  opt.memory_hard_limit_bytes = -1;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = {};
  opt.memory_budget_bytes = 100;
  opt.memory_hard_limit_bytes = 50;  // soft budget above the hard ceiling
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = {};
  opt.max_detail_rows = -2;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = {};
  opt.max_candidate_pairs = -2;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = {};
  opt.check_stride = 0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
}

TEST_F(ServerTest, GuardConstructedWithInvalidOptionsTripsImmediately) {
  QueryGuardOptions opt;
  opt.timeout_ms = -7;
  QueryGuard guard(opt);
  Status s = guard.Check();
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(ServerTest, MintedGuardOptionsAlwaysValidate) {
  AdmissionController ac({});
  AdmissionRequest req;
  req.memory_bytes = 123;
  Result<AdmissionTicket> t = ac.Admit(req);
  ASSERT_TRUE(t.ok());
  QueryGuardOptions minted = t->MintGuardOptions(500);
  EXPECT_TRUE(minted.Validate().ok());
  EXPECT_EQ(minted.memory_budget_bytes, 123);
  EXPECT_EQ(minted.memory_hard_limit_bytes, 123);
  EXPECT_EQ(minted.timeout_ms, 500);
  EXPECT_TRUE(t->MintGuardOptions(-3).Validate().ok());  // clamped to "off"
}

// ---------------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------------

TEST_F(ServerTest, PlanCacheKeyDistinguishesMasksWithinOneFamily) {
  PlanCacheKey fine = MakePlanCacheKey(CuboidQuery(0b11));
  PlanCacheKey coarse = MakePlanCacheKey(CuboidQuery(0b01));
  EXPECT_NE(fine.exact, coarse.exact);
  ASSERT_FALSE(fine.family.empty());
  EXPECT_EQ(fine.family, coarse.family);
  EXPECT_EQ(fine.mask, 0b11u);
  EXPECT_EQ(coarse.mask, 0b01u);
}

TEST_F(ServerTest, PlanCacheKeyHasNoFamilyWithoutRollupCertificate) {
  // AVG is not distributive: the roll-up certificate fails, so the plan gets
  // an exact key only.
  std::vector<std::string> dims = {"prod", "month"};
  PlanPtr plan = MdJoinPlan(CuboidBasePlan(TableRef("sales"), dims, 0b01),
                            TableRef("sales"), {Avg(RCol("sale"), "a")}, DimsTheta(dims));
  PlanCacheKey key = MakePlanCacheKey(plan);
  EXPECT_FALSE(key.exact.empty());
  EXPECT_TRUE(key.family.empty());
}

TEST_F(ServerTest, ResultCacheLruEvictionAndPoolAccounting) {
  AdmissionController pool({});
  auto shared_sales = std::make_shared<const Table>(sales_.Clone());
  const int64_t entry_bytes = shared_sales->ApproxBytes() + 2;  // + key size

  ResultCache::Options copt;
  copt.capacity_bytes = 2 * entry_bytes;  // room for exactly two entries
  ResultCache cache(&pool, copt);
  cache.Insert(PlanCacheKey{"k1", "", 0}, shared_sales);
  cache.Insert(PlanCacheKey{"k2", "", 0}, shared_sales);
  EXPECT_EQ(cache.entries(), 2);
  EXPECT_EQ(pool.memory_in_use(), 2 * entry_bytes);

  // Touch k1 so k2 becomes the LRU victim of the next insert.
  EXPECT_NE(cache.LookupExact("k1"), nullptr);
  cache.Insert(PlanCacheKey{"k3", "", 0}, shared_sales);
  EXPECT_EQ(cache.entries(), 2);
  EXPECT_NE(cache.LookupExact("k1"), nullptr);
  EXPECT_EQ(cache.LookupExact("k2"), nullptr);
  EXPECT_NE(cache.LookupExact("k3"), nullptr);

  cache.Clear();
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(pool.memory_in_use(), 0);  // every charge returned
}

TEST_F(ServerTest, ResultCacheSkipsOversizedAndPoolStarvedInserts) {
  AdmissionController::Options popt;
  popt.total_memory_bytes = 64;  // smaller than any sales table
  AdmissionController pool(popt);
  auto shared_sales = std::make_shared<const Table>(sales_.Clone());

  ResultCache::Options copt;
  copt.capacity_bytes = 16;  // oversized entry: skipped outright
  ResultCache small(&pool, copt);
  small.Insert(PlanCacheKey{"k", "", 0}, shared_sales);
  EXPECT_EQ(small.entries(), 0);

  copt.capacity_bytes = int64_t{1} << 20;  // fits the cache, not the pool
  ResultCache starved(&pool, copt);
  starved.Insert(PlanCacheKey{"k", "", 0}, shared_sales);
  EXPECT_EQ(starved.entries(), 0);
  EXPECT_EQ(pool.memory_in_use(), 0);
}

TEST_F(ServerTest, ResultCacheLookupFinerWantsStrictSuperset) {
  AdmissionController pool({});
  ResultCache cache(&pool, {});
  auto shared_sales = std::make_shared<const Table>(sales_.Clone());
  cache.Insert(PlanCacheKey{"fine", "fam", 0b110}, shared_sales);

  EXPECT_TRUE(cache.LookupFiner("fam", 0b100).has_value());   // subset: roll up
  EXPECT_TRUE(cache.LookupFiner("fam", 0b010).has_value());
  EXPECT_FALSE(cache.LookupFiner("fam", 0b110).has_value());  // equal: not finer
  EXPECT_FALSE(cache.LookupFiner("fam", 0b001).has_value());  // disjoint dim
  EXPECT_FALSE(cache.LookupFiner("other", 0b100).has_value());
  EXPECT_FALSE(cache.LookupFiner("", 0).has_value());
}

TEST_F(ServerTest, CacheEvictFailpointForcesEviction) {
  // Skip the first Insert's evaluation (nothing to evict yet); fire on the
  // second so it evicts k1.
  FailpointRegistry::Global()->Enable("server:cache_evict", /*count=*/1, /*skip=*/1);
  AdmissionController pool({});
  ResultCache cache(&pool, {});
  auto shared_sales = std::make_shared<const Table>(sales_.Clone());
  const int64_t evictions_before = CounterValue("mdjoin_server_cache_evictions_total");
  cache.Insert(PlanCacheKey{"k1", "", 0}, shared_sales);
  cache.Insert(PlanCacheKey{"k2", "", 0}, shared_sales);  // failpoint evicts k1
  EXPECT_EQ(cache.entries(), 1);
  EXPECT_EQ(cache.LookupExact("k1"), nullptr);
  EXPECT_EQ(CounterValue("mdjoin_server_cache_evictions_total"), evictions_before + 1);
}

// ---------------------------------------------------------------------------
// QueryService end to end
// ---------------------------------------------------------------------------

TEST_F(ServerTest, ServiceExecutesCachesAndCountsHits) {
  QueryService service(catalog_);
  auto session = service.OpenSession();
  EXPECT_EQ(service.sessions_open(), 1);

  const int64_t hits_before = CounterValue("mdjoin_server_cache_hit_total");
  Result<QueryResult> first = session->Execute(CuboidQuery(0b11));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->stats.cache, CacheOutcome::kMiss);
  EXPECT_EQ(first->stats.admitted_threads, 1);
  ASSERT_NE(first->table, nullptr);

  Result<QueryResult> second = session->Execute(CuboidQuery(0b11));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->stats.cache, CacheOutcome::kHit);
  EXPECT_EQ(second->stats.admitted_memory_bytes, 0);  // no admission on a hit
  EXPECT_EQ(CounterValue("mdjoin_server_cache_hit_total"), hits_before + 1);
  EXPECT_TRUE(TablesEqualOrdered(*first->table, *second->table));

  // Budget fully returned once both queries finished.
  EXPECT_EQ(service.admission().threads_in_use(), 0);
}

TEST_F(ServerTest, ServiceRollupHitServesCoarserFromCachedFiner) {
  QueryService service(catalog_);
  auto session = service.OpenSession();

  Result<QueryResult> fine = session->Execute(CuboidQuery(0b11));
  ASSERT_TRUE(fine.ok()) << fine.status().ToString();
  ASSERT_EQ(fine->stats.cache, CacheOutcome::kMiss);

  // Acceptance criterion: the coarser request is served via roll-up, observed
  // on the mdjoin_server_cache_rollup_hit_total counter.
  const int64_t rollup_before = CounterValue("mdjoin_server_cache_rollup_hit_total");
  Result<QueryResult> coarse = session->Execute(CuboidQuery(0b01));
  ASSERT_TRUE(coarse.ok()) << coarse.status().ToString();
  EXPECT_EQ(coarse->stats.cache, CacheOutcome::kRollupHit);
  EXPECT_EQ(CounterValue("mdjoin_server_cache_rollup_hit_total"), rollup_before + 1);
  // The roll-up scanned the cached cuboid, not the detail relation: far
  // fewer detail rows than the full query's |R| scan.
  EXPECT_LT(coarse->stats.exec.detail_rows_scanned, sales_.num_rows());

  // Identical to a fresh full execution.
  Result<Table> fresh = ExecutePlanCse(CuboidQuery(0b01), catalog_);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(TablesEqualOrdered(*coarse->table, *fresh))
      << "rollup:\n" << coarse->table->ToString() << "fresh:\n" << fresh->ToString();

  // The rolled-up result was itself cached: the same request now exact-hits.
  Result<QueryResult> again = session->Execute(CuboidQuery(0b01));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->stats.cache, CacheOutcome::kHit);
}

TEST_F(ServerTest, RollupServedResultBitIdenticalAcrossThreadCounts) {
  // Satellite: the cached-rollup path must be bit-identical to fresh
  // execution whatever the engine parallelism (run under `ctest -L tsan`).
  Result<Table> fresh = ExecutePlanCse(CuboidQuery(0b01), catalog_);
  ASSERT_TRUE(fresh.ok());
  for (int threads : {1, 2, 4}) {
    QueryServiceOptions opt;
    opt.default_threads_per_query = threads;
    opt.admission.total_threads = threads;
    QueryService service(catalog_, opt);
    auto session = service.OpenSession();
    ASSERT_TRUE(session->Execute(CuboidQuery(0b11)).ok());
    Result<QueryResult> coarse = session->Execute(CuboidQuery(0b01));
    ASSERT_TRUE(coarse.ok()) << coarse.status().ToString();
    ASSERT_EQ(coarse->stats.cache, CacheOutcome::kRollupHit) << "threads=" << threads;
    EXPECT_TRUE(TablesEqualOrdered(*coarse->table, *fresh))
        << "threads=" << threads << "\nrollup:\n" << coarse->table->ToString()
        << "fresh:\n" << fresh->ToString();
  }
}

TEST_F(ServerTest, ServiceCacheCanBeBypassedPerQuery) {
  QueryService service(catalog_);
  auto session = service.OpenSession();
  SessionQueryOptions no_cache;
  no_cache.use_cache = false;
  Result<QueryResult> r1 = session->Execute(CuboidQuery(0b11), no_cache);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->stats.cache, CacheOutcome::kDisabled);
  Result<QueryResult> r2 = session->Execute(CuboidQuery(0b11), no_cache);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->stats.cache, CacheOutcome::kDisabled);  // nothing was cached

  QueryServiceOptions off;
  off.cache_capacity_bytes = 0;  // cache disabled service-wide
  QueryService plain(catalog_, off);
  auto s2 = plain.OpenSession();
  Result<QueryResult> r3 = s2->Execute(CuboidQuery(0b11));
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->stats.cache, CacheOutcome::kDisabled);
  EXPECT_EQ(plain.cache(), nullptr);
}

TEST_F(ServerTest, ServiceDeadlineWhileQueuedShedsBeforeEngineWork) {
  // Satellite: a query admitted after its deadline must fail with
  // kDeadlineExceeded before any engine work runs. Deterministic setup: a
  // directly-held ticket pins the whole pool, and the "server:admit"
  // failpoint forces the queue path, so the session's query queues until its
  // deadline expires.
  FailpointRegistry::Global()->Enable("server:admit", -1);
  QueryServiceOptions opt;
  opt.admission.total_memory_bytes = 1 << 20;
  opt.default_memory_per_query = 1 << 20;
  QueryService service(catalog_, opt);
  AdmissionRequest hold;
  hold.memory_bytes = 1 << 20;
  Result<AdmissionTicket> holder = service.admission().Admit(hold);
  ASSERT_TRUE(holder.ok()) << holder.status().ToString();

  auto session = service.OpenSession();
  const int64_t scanned_before = CounterValue("mdjoin_detail_rows_scanned_total");
  SessionQueryOptions qopt;
  qopt.timeout_ms = 50;
  Status s = session->Execute(CuboidQuery(0b11), qopt).status();
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  EXPECT_NE(s.message().find("no engine work"), std::string::npos) << s.ToString();
  // The engine never scanned a row for the shed query.
  EXPECT_EQ(CounterValue("mdjoin_detail_rows_scanned_total"), scanned_before);
  EXPECT_GT(FailpointRegistry::Global()->fire_count("server:admit"), 0);
}

TEST_F(ServerTest, ServiceCancelAbortsQueuedQuery) {
  QueryServiceOptions opt;
  opt.admission.total_memory_bytes = 1 << 20;
  opt.default_memory_per_query = 1 << 20;
  QueryService service(catalog_, opt);
  AdmissionRequest hold;
  hold.memory_bytes = 1 << 20;
  Result<AdmissionTicket> holder = service.admission().Admit(hold);
  ASSERT_TRUE(holder.ok());

  auto session = service.OpenSession();
  Status status = Status::OK();
  std::thread client([&] {
    SessionQueryOptions qopt;
    qopt.use_cache = false;
    status = session->Execute(CuboidQuery(0b11), qopt).status();
  });
  ASSERT_TRUE(WaitFor([&] { return service.admission().queue_depth() == 1; }));
  session->Cancel();
  client.join();
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
  EXPECT_EQ(service.admission().queue_depth(), 0);
}

TEST_F(ServerTest, ServiceCancelBeforeExecuteIsSticky) {
  QueryService service(catalog_);
  auto session = service.OpenSession();
  session->Cancel();
  Status s = session->Execute(CuboidQuery(0b11)).status();
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  // The flag was consumed: the next query runs normally.
  EXPECT_TRUE(session->Execute(CuboidQuery(0b11)).ok());
}

TEST_F(ServerTest, ServiceExecutesQueryStrings) {
  QueryService service(catalog_);
  auto session = service.OpenSession();
  Result<QueryResult> r = session->ExecuteQueryString(
      "select cust, sum(X.sale) as total from sales "
      "analyze by group(cust) such that X: X.cust = cust");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table->num_rows(), 4);  // customers 1..4
  EXPECT_FALSE(session->ExecuteQueryString("select x from nope").ok());
}

TEST_F(ServerTest, ServiceOverloadShedsButNeverWedges) {
  // Closed-loop overload: more clients than thread tokens and a short queue.
  // Every query must either succeed with correct results or shed with a
  // structured kResourceExhausted — and all clients must terminate.
  QueryServiceOptions opt;
  opt.admission.total_threads = 2;
  opt.admission.max_queue_depth = 2;
  opt.cache_capacity_bytes = 0;  // force real engine work per query
  QueryService service(catalog_, opt);

  Result<Table> expected = ExecutePlanCse(CuboidQuery(0b11), catalog_);
  ASSERT_TRUE(expected.ok());

  constexpr int kClients = 8;
  constexpr int kQueriesEach = 4;
  std::atomic<int> ok_count{0};
  std::atomic<int> shed_count{0};
  std::atomic<int> other_count{0};
  std::vector<std::thread> clients;
  std::vector<std::unique_ptr<Session>> sessions;
  for (int i = 0; i < kClients; ++i) {
    sessions.push_back(service.OpenSession("tenant" + std::to_string(i % 3)));
  }
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      for (int q = 0; q < kQueriesEach; ++q) {
        Result<QueryResult> r = sessions[i]->Execute(CuboidQuery(0b11));
        if (r.ok()) {
          ok_count.fetch_add(1);
          EXPECT_TRUE(TablesEqualOrdered(*r->table, *expected));
        } else if (r.status().IsResourceExhausted()) {
          shed_count.fetch_add(1);
          EXPECT_GE(AdmissionController::RetryAfterHintMs(r.status()), 0);
        } else {
          other_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok_count + shed_count + other_count, kClients * kQueriesEach);
  EXPECT_EQ(other_count, 0);
  EXPECT_GT(ok_count, 0);
  // Budget fully recovered: nothing leaked through the shed/success mix.
  EXPECT_EQ(service.admission().threads_in_use(), 0);
  EXPECT_EQ(service.admission().queue_depth(), 0);
  sessions.clear();
  EXPECT_EQ(service.sessions_open(), 0);
}

TEST_F(ServerTest, ConcurrentSessionsShareCacheCorrectly) {
  // Many sessions race the same cuboid family: whatever mix of misses, exact
  // hits, and roll-up hits each one observes, every returned table must be
  // identical to fresh execution (run under `ctest -L tsan`).
  QueryService service(catalog_);
  Result<Table> fresh_fine = ExecutePlanCse(CuboidQuery(0b11), catalog_);
  Result<Table> fresh_coarse = ExecutePlanCse(CuboidQuery(0b01), catalog_);
  ASSERT_TRUE(fresh_fine.ok() && fresh_coarse.ok());

  constexpr int kClients = 6;
  std::vector<std::unique_ptr<Session>> sessions;
  for (int i = 0; i < kClients; ++i) sessions.push_back(service.OpenSession());
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      for (int q = 0; q < 4; ++q) {
        const bool fine = (i + q) % 2 == 0;
        Result<QueryResult> r = sessions[i]->Execute(CuboidQuery(fine ? 0b11 : 0b01));
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        EXPECT_TRUE(
            TablesEqualOrdered(*r->table, fine ? *fresh_fine : *fresh_coarse));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  sessions.clear();
}

}  // namespace
}  // namespace mdjoin
