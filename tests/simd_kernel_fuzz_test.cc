/// Differential fuzz over the raw-speed machinery, each layer checked against
/// the slower oracle it replaced:
///
///   - simd::Cmp* / reductions at every available level vs a scalar reference
///     implementing the documented semantics (including NaN-true kLe/kGe)
///   - PredicateKernels::FilterBlock (flat plans, dictionary translation,
///     dense bitmask path) vs per-row tree-walk evaluation
///   - the bytecode interpreter vs the closure-tree walker on random
///     expression trees (NULL/ALL/NaN-laden rows)
///   - typed AggStateColumn updates vs the Value-at-a-time Update
///   - whole MD-joins across the {simd, use_flat_columns, theta_bytecode,
///     execution_mode} option matrix, bit-identical to the row-mode oracle
///
/// Everything is seeded — failures reproduce.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "agg/aggregate.h"
#include "agg/flat_state.h"
#include "common/random.h"
#include "common/simd.h"
#include "core/mdjoin.h"
#include "expr/compile.h"
#include "expr/conjuncts.h"
#include "expr/kernels.h"
#include "table/table_builder.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using testutil::F;
using testutil::I;
using testutil::NUL;
using testutil::S;

std::vector<simd::Level> AvailableLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  for (simd::Level l : {simd::Level::kNeon, simd::Level::kAvx2}) {
    if (simd::LevelAvailable(l)) levels.push_back(l);
  }
  return levels;
}

bool MaskBit(const uint64_t* mask, int i) {
  return (mask[i >> 6] >> (i & 63)) & 1;
}

/// Reference verdict for one element under the simd::CmpOp semantics
/// documented in common/simd.h (float kLe/kGe are NaN-true).
template <typename T>
bool RefCmp(simd::CmpOp op, T x, T lit) {
  switch (op) {
    case simd::CmpOp::kEq: return x == lit;
    case simd::CmpOp::kNe: return x != lit;
    case simd::CmpOp::kLt: return x < lit;
    case simd::CmpOp::kLe: return !(x > lit);
    case simd::CmpOp::kGt: return x > lit;
    case simd::CmpOp::kGe: return !(x < lit);
  }
  return false;
}

constexpr simd::CmpOp kAllCmpOps[] = {simd::CmpOp::kEq, simd::CmpOp::kNe,
                                      simd::CmpOp::kLt, simd::CmpOp::kLe,
                                      simd::CmpOp::kGt, simd::CmpOp::kGe};

class SimdFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimdFuzz, CompareKernelsAgreeWithScalarReference) {
  Random rng(GetParam());
  const double kSpecials[] = {std::numeric_limits<double>::quiet_NaN(),
                              std::numeric_limits<double>::infinity(),
                              -std::numeric_limits<double>::infinity(),
                              0.0, -0.0};
  for (int round = 0; round < 40; ++round) {
    const int n = static_cast<int>(rng.UniformInt(1, 300));
    std::vector<int64_t> xi(static_cast<size_t>(n));
    std::vector<double> xf(static_cast<size_t>(n));
    std::vector<int32_t> xc(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      xi[static_cast<size_t>(i)] = rng.UniformInt(-8, 8);
      xf[static_cast<size_t>(i)] = rng.Bernoulli(0.1)
                                       ? kSpecials[rng.Uniform(5)]
                                       : static_cast<double>(rng.UniformInt(-40, 40)) / 4;
      xc[static_cast<size_t>(i)] = static_cast<int32_t>(rng.UniformInt(-4, 4));
    }
    const int64_t li = rng.UniformInt(-8, 8);
    const double lf =
        rng.Bernoulli(0.2) ? kSpecials[rng.Uniform(5)]
                           : static_cast<double>(rng.UniformInt(-40, 40)) / 4;
    const int32_t lc = static_cast<int32_t>(rng.UniformInt(-4, 4));

    std::vector<uint64_t> mask(static_cast<size_t>(simd::MaskWords(n)));
    for (simd::Level level : AvailableLevels()) {
      for (simd::CmpOp op : kAllCmpOps) {
        simd::CmpI64(level, op, xi.data(), n, li, mask.data());
        for (int i = 0; i < n; ++i) {
          ASSERT_EQ(MaskBit(mask.data(), i), RefCmp(op, xi[static_cast<size_t>(i)], li))
              << "i64 level=" << simd::LevelName(level) << " op=" << static_cast<int>(op)
              << " i=" << i;
        }
        simd::CmpF64(level, op, xf.data(), n, lf, mask.data());
        for (int i = 0; i < n; ++i) {
          ASSERT_EQ(MaskBit(mask.data(), i), RefCmp(op, xf[static_cast<size_t>(i)], lf))
              << "f64 level=" << simd::LevelName(level) << " op=" << static_cast<int>(op)
              << " i=" << i << " x=" << xf[static_cast<size_t>(i)] << " lit=" << lf;
        }
        simd::CmpI32(level, op, xc.data(), n, lc, mask.data());
        for (int i = 0; i < n; ++i) {
          ASSERT_EQ(MaskBit(mask.data(), i), RefCmp(op, xc[static_cast<size_t>(i)], lc))
              << "i32 level=" << simd::LevelName(level) << " op=" << static_cast<int>(op)
              << " i=" << i;
        }
      }
    }
  }
}

TEST_P(SimdFuzz, MaskHelpersAndReductionsAgree) {
  Random rng(GetParam() + 17);
  for (int round = 0; round < 40; ++round) {
    const int n = static_cast<int>(rng.UniformInt(1, 300));
    std::vector<int64_t> xi(static_cast<size_t>(n));
    std::vector<uint8_t> nulls(static_cast<size_t>(n));
    std::vector<uint64_t> mask(static_cast<size_t>(simd::MaskWords(n)));
    for (int i = 0; i < n; ++i) {
      xi[static_cast<size_t>(i)] = rng.UniformInt(-1000, 1000);
      nulls[static_cast<size_t>(i)] = rng.Bernoulli(0.3) ? 1 : 0;
    }

    // MaskFromNotNull / MaskAndNotNull / MaskCompress vs hand evaluation.
    simd::MaskSetAll(mask.data(), n);
    simd::MaskAndNotNull(nulls.data(), n, mask.data());
    std::vector<uint32_t> sel(static_cast<size_t>(n));
    const int count = simd::MaskCompress(mask.data(), n, sel.data());
    int expect_count = 0;
    for (int i = 0; i < n; ++i) {
      if (nulls[static_cast<size_t>(i)] == 0) {
        ASSERT_LT(expect_count, count);
        EXPECT_EQ(sel[static_cast<size_t>(expect_count)], static_cast<uint32_t>(i));
        ++expect_count;
      }
    }
    EXPECT_EQ(count, expect_count);
    EXPECT_EQ(simd::MaskCount(mask.data(), n), expect_count);
    EXPECT_EQ(simd::MaskAllSet(mask.data(), n), expect_count == n);

    for (simd::Level level : AvailableLevels()) {
      int64_t sum = 0, mn = xi[0], mx = xi[0], nn = 0;
      for (int i = 0; i < n; ++i) {
        const int64_t x = xi[static_cast<size_t>(i)];
        sum += x;
        mn = std::min(mn, x);
        mx = std::max(mx, x);
        nn += nulls[static_cast<size_t>(i)] == 0;
      }
      EXPECT_EQ(simd::SumI64(level, xi.data(), n), sum);
      EXPECT_EQ(simd::MinI64(level, xi.data(), n), mn);
      EXPECT_EQ(simd::MaxI64(level, xi.data(), n), mx);
      EXPECT_EQ(simd::CountNotNull(level, nulls.data(), n), nn);
    }
  }
}

/// Random detail table for the predicate/bytecode differentials: int64,
/// float64 (with NaN), and low-cardinality string columns, NULLs everywhere,
/// and (optionally) a sprinkle of ALL to force kNone columns.
Table RandomDetail(Random* rng, int64_t rows, bool with_all) {
  Schema schema({{"i", DataType::kInt64},
                 {"f", DataType::kFloat64},
                 {"s", DataType::kString},
                 {"j", DataType::kInt64}});
  const char* strings[] = {"NY", "NJ", "CT", "CA", "zz"};
  TableBuilder b(schema);
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    for (int c = 0; c < 4; ++c) {
      const double dice = rng->NextDouble();
      if (dice < 0.10) {
        row.push_back(Value::Null());
      } else if (with_all && dice < 0.14) {
        row.push_back(Value::All());
      } else {
        switch (schema.field(c).type) {
          case DataType::kInt64:
            row.push_back(I(rng->UniformInt(-6, 6)));
            break;
          case DataType::kFloat64:
            row.push_back(rng->Bernoulli(0.06)
                              ? F(std::numeric_limits<double>::quiet_NaN())
                              : F(static_cast<double>(rng->UniformInt(-24, 24)) / 4));
            break;
          case DataType::kString:
            row.push_back(S(strings[rng->Uniform(5)]));
            break;
        }
      }
    }
    b.AppendRowOrDie(std::move(row));
  }
  return std::move(b).Finish();
}

/// One random detail-only conjunct of a shape the kernels plan for (plus the
/// occasional generic fallback).
ExprPtr RandomConjunct(Random* rng) {
  const char* cols[] = {"i", "f", "s", "j"};
  ExprPtr col = RCol(cols[rng->Uniform(4)]);
  auto random_lit = [&]() -> ExprPtr {
    switch (rng->Uniform(6)) {
      case 0: return Lit(rng->UniformInt(-6, 6));
      case 1: return Lit(static_cast<double>(rng->UniformInt(-24, 24)) / 4);
      case 2: return Lit("NJ");
      case 3: return Lit("missing");  // absent from every dictionary
      case 4: return Lit(Value::Null());
      default: return Lit(std::numeric_limits<double>::quiet_NaN());
    }
  };
  switch (rng->Uniform(9)) {
    case 0: return Eq(std::move(col), random_lit());
    case 1: return Ne(std::move(col), random_lit());
    case 2: return Lt(std::move(col), random_lit());
    case 3: return Le(std::move(col), random_lit());
    case 4: return Gt(std::move(col), random_lit());
    case 5: return Ge(std::move(col), random_lit());
    case 6: {
      // Mixed-type IN list with boundary floats: 2^53 is exactly the first
      // double where int translation would go wrong, so the planner must
      // abandon the flat plan, not mistranslate it.
      std::vector<Value> cands = {I(rng->UniformInt(-6, 6)), S("NY"),
                                  F(2.0), F(2.5), Value::Null(),
                                  F(9007199254740992.0)};
      return In(std::move(col), std::move(cands));
    }
    case 7: {
      std::vector<Value> cands = {I(0), I(3), F(-1.0)};
      return In(std::move(col), std::move(cands));
    }
    default:
      // Generic fallback: arithmetic the flat planner cannot touch.
      return Lt(Add(RCol("i"), RCol("j")), Lit(rng->UniformInt(-4, 4)));
  }
}

TEST_P(SimdFuzz, FilterBlockMatchesTreeWalkOracle) {
  Random rng(GetParam() + 31);
  for (int with_all = 0; with_all < 2; ++with_all) {
    Table detail = RandomDetail(&rng, 700, with_all == 1);
    ASSERT_NE(detail.accel(), nullptr);
    for (int round = 0; round < 12; ++round) {
      std::vector<ExprPtr> conjuncts;
      const int nc = static_cast<int>(rng.UniformInt(1, 4));
      for (int i = 0; i < nc; ++i) conjuncts.push_back(RandomConjunct(&rng));

      Result<CompiledExpr> oracle =
          CompileExpr(CombineConjuncts(conjuncts), nullptr, &detail.schema());
      ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
      std::vector<char> expect(static_cast<size_t>(detail.num_rows()));
      RowCtx ctx;
      ctx.detail = &detail;
      for (int64_t t = 0; t < detail.num_rows(); ++t) {
        ctx.detail_row = t;
        expect[static_cast<size_t>(t)] = oracle->EvalTreeWalk(ctx).IsTruthy();
      }

      for (simd::Level level : AvailableLevels()) {
        for (int flat = 0; flat < 2; ++flat) {
          Result<PredicateKernels> kernels = PredicateKernels::Compile(
              conjuncts, detail.schema(), flat == 1 ? detail.accel() : nullptr, level);
          ASSERT_TRUE(kernels.ok()) << kernels.status().ToString();
          const int block = static_cast<int>(rng.UniformInt(50, 200));
          std::vector<uint32_t> sel(static_cast<size_t>(block));
          std::vector<uint64_t> mask(2 * static_cast<size_t>(simd::MaskWords(block)));
          KernelStats stats;
          for (int64_t start = 0; start < detail.num_rows(); start += block) {
            const int n =
                static_cast<int>(std::min<int64_t>(block, detail.num_rows() - start));
            BlockFilter filt = kernels->FilterBlock(detail, start, n, sel.data(),
                                                    mask.data(), &stats);
            std::vector<char> got(static_cast<size_t>(n), 0);
            for (int i = 0; i < filt.count; ++i) {
              const int lane = filt.dense ? i : static_cast<int>(sel[static_cast<size_t>(i)]);
              got[static_cast<size_t>(lane)] = 1;
            }
            for (int i = 0; i < n; ++i) {
              ASSERT_EQ(static_cast<bool>(got[static_cast<size_t>(i)]),
                        static_cast<bool>(expect[static_cast<size_t>(start + i)]))
                  << "level=" << simd::LevelName(level) << " flat=" << flat
                  << " row=" << start + i << " theta="
                  << CombineConjuncts(conjuncts)->ToString();
            }
          }
        }
      }
    }
  }
}

/// Value equality strict enough for bit-identity checks: NaN == NaN, and
/// int64/float64 never conflated.
bool SameValue(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_all() || b.is_all()) return a.is_all() && b.is_all();
  if (a.is_int64() != b.is_int64() || a.is_float64() != b.is_float64()) return false;
  if (a.is_int64()) return a.int64() == b.int64();
  if (a.is_float64()) {
    const double x = a.float64(), y = b.float64();
    return (x == y && std::signbit(x) == std::signbit(y)) ||
           (std::isnan(x) && std::isnan(y));
  }
  return a.Equals(b);
}

/// Random expression over both sides covering every bytecode op, including
/// short-circuit AND/OR and multi-arm CASE. `numeric` restricts the result
/// type to numeric — required for CASE then/else arms, where the compiler
/// rejects mixing string and numeric results (everything else in the grammar
/// is dynamically typed and legal over any operand mix).
ExprPtr RandomBytecodeExpr(Random* rng, int depth, bool numeric = false) {
  if (depth <= 0 || rng->Bernoulli(0.3)) {
    switch (rng->Uniform(numeric ? 5 : 8)) {
      case 0: return BCol("b_int");
      case 1: return RCol("i");
      case 2: return RCol("f");
      case 3: return Lit(rng->UniformInt(-5, 5));
      case 4: return Lit(static_cast<double>(rng->UniformInt(-20, 20)) / 4);
      case 5: return BCol("b_str");
      case 6: return RCol("s");
      default: return Lit("NY");
    }
  }
  switch (rng->Uniform(14)) {
    case 0: return Add(RandomBytecodeExpr(rng, depth - 1), RandomBytecodeExpr(rng, depth - 1));
    case 1: return Sub(RandomBytecodeExpr(rng, depth - 1), RandomBytecodeExpr(rng, depth - 1));
    case 2: return Mul(RandomBytecodeExpr(rng, depth - 1), RandomBytecodeExpr(rng, depth - 1));
    case 3: return Div(RandomBytecodeExpr(rng, depth - 1), RandomBytecodeExpr(rng, depth - 1));
    case 4: return Mod(RandomBytecodeExpr(rng, depth - 1), RandomBytecodeExpr(rng, depth - 1));
    case 5: return Eq(RandomBytecodeExpr(rng, depth - 1), RandomBytecodeExpr(rng, depth - 1));
    case 6: return Lt(RandomBytecodeExpr(rng, depth - 1), RandomBytecodeExpr(rng, depth - 1));
    case 7: return Ge(RandomBytecodeExpr(rng, depth - 1), RandomBytecodeExpr(rng, depth - 1));
    case 8: return And(RandomBytecodeExpr(rng, depth - 1), RandomBytecodeExpr(rng, depth - 1));
    case 9: return Or(RandomBytecodeExpr(rng, depth - 1), RandomBytecodeExpr(rng, depth - 1));
    case 10: return Not(RandomBytecodeExpr(rng, depth - 1));
    case 11: return IsNull(RandomBytecodeExpr(rng, depth - 1));
    case 12:
      return In(RandomBytecodeExpr(rng, depth - 1),
                {Value::Int64(rng->UniformInt(-3, 3)), Value::String("NY"),
                 Value::Null()});
    default: {
      // The then/else arms share one type family; string-family CASEs use
      // string leaves directly (deeper string-typed trees don't exist in
      // this grammar — every operator yields a numeric).
      const bool string_family = !numeric && rng->Bernoulli(0.3);
      auto arm = [&]() -> ExprPtr {
        if (!string_family) return RandomBytecodeExpr(rng, depth - 1, /*numeric=*/true);
        switch (rng->Uniform(3)) {
          case 0: return BCol("b_str");
          case 1: return RCol("s");
          default: return Lit("NY");
        }
      };
      return CaseWhen({{RandomBytecodeExpr(rng, depth - 1), arm()},
                       {RandomBytecodeExpr(rng, depth - 1), arm()}},
                      rng->Bernoulli(0.5) ? arm() : nullptr);
    }
  }
}

TEST_P(SimdFuzz, BytecodeMatchesTreeWalk) {
  Random rng(GetParam() + 47);
  Schema base_schema({{"b_int", DataType::kInt64}, {"b_str", DataType::kString}});
  TableBuilder bb(base_schema);
  const char* bstr[] = {"NY", "zz"};
  for (int r = 0; r < 10; ++r) {
    const double dice = rng.NextDouble();
    bb.AppendRowOrDie({dice < 0.15 ? NUL() : (dice < 0.3 ? testutil::ALL()
                                                         : I(rng.UniformInt(-4, 4))),
                       rng.Bernoulli(0.2) ? NUL() : S(bstr[rng.Uniform(2)])});
  }
  Table base = std::move(bb).Finish();
  Table detail = RandomDetail(&rng, 10, /*with_all=*/true);

  int bytecode_seen = 0;
  for (int round = 0; round < 80; ++round) {
    ExprPtr expr = RandomBytecodeExpr(&rng, 4);
    Result<CompiledExpr> compiled = CompileExpr(expr, &base_schema, &detail.schema());
    ASSERT_TRUE(compiled.ok()) << expr->ToString();
    bytecode_seen += compiled->has_bytecode();
    RowCtx ctx;
    ctx.base = &base;
    ctx.detail = &detail;
    for (int64_t b = 0; b < base.num_rows(); ++b) {
      for (int64_t d = 0; d < detail.num_rows(); ++d) {
        ctx.base_row = b;
        ctx.detail_row = d;
        const Value tree = compiled->EvalTreeWalk(ctx);
        const Value bc = compiled->Eval(ctx);
        ASSERT_TRUE(SameValue(tree, bc))
            << expr->ToString() << " tree=" << tree.ToString()
            << " bytecode=" << bc.ToString() << " b=" << b << " d=" << d;
      }
    }
  }
  // Unless the process-wide kill switch is set, every expression must have
  // lowered (compiled->Eval would otherwise just re-test the tree walker).
  const char* env = std::getenv("MDJOIN_THETA_BYTECODE");
  if (env == nullptr || std::string(env) != "0") {
    EXPECT_EQ(bytecode_seen, 80);
  }
}

TEST_P(SimdFuzz, TypedAggUpdatesMatchValueUpdates) {
  Random rng(GetParam() + 71);
  const char* fns[] = {"count", "sum", "min", "max", "avg"};
  for (const char* name : fns) {
    Result<const AggregateFunction*> fn = AggregateRegistry::Global()->Lookup(name);
    ASSERT_TRUE(fn.ok()) << name;
    const int64_t groups = 24;
    AggStateColumn typed = AggStateColumn::Make(*fn, groups);
    AggStateColumn oracle = AggStateColumn::Make(*fn, groups);
    for (int round = 0; round < 300; ++round) {
      std::vector<int64_t> gs(static_cast<size_t>(rng.UniformInt(1, 6)));
      for (int64_t& g : gs) g = rng.UniformInt(0, groups - 1);
      const int n = static_cast<int>(gs.size());
      switch (rng.Uniform(3)) {
        case 0: {
          const int64_t x = rng.UniformInt(-100, 100);
          typed.UpdateManyI64(gs.data(), n, x);
          for (int64_t g : gs) oracle.Update(g, I(x));
          break;
        }
        case 1: {
          const double x = rng.Bernoulli(0.1)
                               ? std::numeric_limits<double>::quiet_NaN()
                               : static_cast<double>(rng.UniformInt(-400, 400)) / 4;
          typed.UpdateManyF64(gs.data(), n, x);
          for (int64_t g : gs) oracle.Update(g, F(x));
          break;
        }
        default: {
          if (typed.kind() == FlatAggKind::kCount) {
            const int64_t add = rng.UniformInt(1, 5);
            typed.AddCountMany(gs.data(), n, add);
            for (int64_t g : gs) {
              for (int64_t k = 0; k < add; ++k) oracle.UpdateCountStar(g);
            }
          } else {
            // NULL argument cell: the Value path must skip it everywhere.
            typed.UpdateMany(gs.data(), n, NUL());
            for (int64_t g : gs) oracle.Update(g, NUL());
          }
          break;
        }
      }
    }
    for (int64_t g = 0; g < groups; ++g) {
      const Value a = typed.Finalize(g), b = oracle.Finalize(g);
      EXPECT_TRUE(SameValue(a, b))
          << name << " group " << g << ": typed=" << a.ToString()
          << " oracle=" << b.ToString();
    }
  }
}

TEST_P(SimdFuzz, MdJoinIdenticalAcrossBackends) {
  Random rng(GetParam() + 93);
  Table detail = testutil::RandomSales(GetParam(), 2500);
  // Cube-style base: (prod, month) at every granularity, exercising the
  // multi-bucket index and its code-key memo.
  TableBuilder bb({{"prod", DataType::kInt64}, {"month", DataType::kInt64}});
  for (int64_t p : {10, 20, 30, 40}) {
    for (int64_t m : {1, 2, 3, 4}) bb.AppendRowOrDie({I(p), I(m)});
    bb.AppendRowOrDie({I(p), testutil::ALL()});
  }
  for (int64_t m : {1, 2, 3, 4}) bb.AppendRowOrDie({testutil::ALL(), I(m)});
  bb.AppendRowOrDie({testutil::ALL(), testutil::ALL()});
  Table base = std::move(bb).Finish();

  const std::vector<AggSpec> aggs = {Count("cnt"),
                                     Sum(RCol("sale"), "total"),
                                     Min(RCol("sale"), "lo"),
                                     Max(RCol("sale"), "hi"),
                                     Avg(RCol("sale"), "mean"),
                                     Count(RCol("state"), "states")};
  // Indexed θ with a dictionary-translated string predicate and residual-free
  // detail pushdown; second θ has no equi part so the fused path fires.
  const ExprPtr thetas[] = {
      And(Eq(BCol("prod"), RCol("prod")), Eq(BCol("month"), RCol("month")),
          Ne(RCol("state"), Lit("CA")), Gt(RCol("sale"), Lit(100))),
      And(Lt(RCol("sale"), Lit(250.0)),
          In(RCol("state"), {S("NY"), S("NJ"), S("CT")}))};

  for (const ExprPtr& theta : thetas) {
    MdJoinOptions oracle_options;
    oracle_options.execution_mode = ExecutionMode::kRow;
    oracle_options.simd = simd::Backend::kScalar;
    oracle_options.use_flat_columns = false;
    oracle_options.theta_bytecode = false;
    Result<Table> oracle = MdJoin(base, detail, aggs, theta, oracle_options);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

    for (simd::Level level : AvailableLevels()) {
      for (int flat = 0; flat < 2; ++flat) {
        for (int bytecode = 0; bytecode < 2; ++bytecode) {
          MdJoinOptions options;
          options.execution_mode = ExecutionMode::kVectorized;
          options.simd = level == simd::Level::kScalar ? simd::Backend::kScalar
                         : level == simd::Level::kAvx2 ? simd::Backend::kAvx2
                                                       : simd::Backend::kNeon;
          options.use_flat_columns = flat == 1;
          options.theta_bytecode = bytecode == 1;
          Result<Table> got = MdJoin(base, detail, aggs, theta, options);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          EXPECT_TRUE(TablesEqualOrdered(*oracle, *got))
              << "level=" << simd::LevelName(level) << " flat=" << flat
              << " bytecode=" << bytecode;
        }
      }
    }
  }
}

TEST(SimdBackendTest, PinningUnavailableBackendFails) {
  Table detail = testutil::SmallSales();
  TableBuilder bb({{"cust", DataType::kInt64}});
  bb.AppendRowOrDie({I(1)});
  Table base = std::move(bb).Finish();
  const ExprPtr theta = Eq(BCol("cust"), RCol("cust"));
  const std::vector<AggSpec> aggs = {Count("cnt")};
  const std::pair<simd::Backend, simd::Level> pins[] = {
      {simd::Backend::kAvx2, simd::Level::kAvx2},
      {simd::Backend::kNeon, simd::Level::kNeon}};
  for (const auto& [backend, level] : pins) {
    MdJoinOptions options;
    options.simd = backend;
    Result<Table> result = MdJoin(base, detail, aggs, theta, options);
    EXPECT_EQ(result.ok(), simd::LevelAvailable(level))
        << simd::BackendName(backend)
        << (result.ok() ? "" : ": " + result.status().ToString());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdFuzz, ::testing::Values(11, 22, 33),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mdjoin
