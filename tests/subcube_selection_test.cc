#include <gtest/gtest.h>

#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "cube/pipesort.h"
#include "cube/subcube_selection.h"
#include "expr/conjuncts.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT

class SubcubeSelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sales_ = testutil::RandomSales(77, 400);
    lattice_ = std::make_unique<CubeLattice>(
        *CubeLattice::Make({"prod", "month", "state"}));
    cardinality_ = *CuboidCardinalities(sales_, *lattice_);
  }

  Table sales_;
  std::unique_ptr<CubeLattice> lattice_;
  std::map<CuboidMask, int64_t> cardinality_;
};

TEST_F(SubcubeSelectionTest, AlwaysSeedsWithFullCuboid) {
  Result<SubcubeSelection> sel = SelectSubcubesGreedy(*lattice_, cardinality_, 1);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->materialized.size(), 1u);
  EXPECT_EQ(sel->materialized[0], lattice_->full_cuboid());
  EXPECT_FALSE(SelectSubcubesGreedy(*lattice_, cardinality_, 0).ok());
}

TEST_F(SubcubeSelectionTest, GreedyAddsBeneficialViews) {
  Result<SubcubeSelection> sel = SelectSubcubesGreedy(*lattice_, cardinality_, 4);
  ASSERT_TRUE(sel.ok());
  EXPECT_GT(sel->materialized.size(), 1u);
  EXPECT_LE(sel->materialized.size(), 4u);
  EXPECT_GT(sel->total_benefit, 0);
  // Adding views never repeats and never includes the full cuboid twice.
  std::set<CuboidMask> unique(sel->materialized.begin(), sel->materialized.end());
  EXPECT_EQ(unique.size(), sel->materialized.size());
  // Selected views must be strictly smaller than the full cuboid (otherwise
  // they carry no benefit).
  for (size_t i = 1; i < sel->materialized.size(); ++i) {
    EXPECT_LT(cardinality_[sel->materialized[i]], cardinality_[lattice_->full_cuboid()]);
  }
}

TEST_F(SubcubeSelectionTest, SelectionStopsWhenNothingHelps) {
  // With a budget of 2^d there is room for everything, but zero-benefit
  // cuboids must not be added: the loop stops early if benefits hit zero.
  Result<SubcubeSelection> sel = SelectSubcubesGreedy(*lattice_, cardinality_, 8);
  ASSERT_TRUE(sel.ok());
  EXPECT_LE(sel->materialized.size(), 8u);
}

TEST_F(SubcubeSelectionTest, CheapestAncestorPicksSmallest) {
  SubcubeSelection sel;
  sel.materialized = {lattice_->full_cuboid(), 0b011, 0b001};
  // Target (prod) = 0b001 is materialized: itself.
  EXPECT_EQ(*CheapestMaterializedAncestor(sel, cardinality_, 0b001), 0b001u);
  // Target () = 0b000 rolls from the smallest ancestor, (prod).
  EXPECT_EQ(*CheapestMaterializedAncestor(sel, cardinality_, 0b000), 0b001u);
  // Target (state) = 0b100 only has the full cuboid as ancestor.
  EXPECT_EQ(*CheapestMaterializedAncestor(sel, cardinality_, 0b100),
            lattice_->full_cuboid());
  // An empty selection cannot answer anything.
  SubcubeSelection empty;
  EXPECT_FALSE(CheapestMaterializedAncestor(empty, cardinality_, 0b001).ok());
}

TEST_F(SubcubeSelectionTest, MaterializedCuboidsMatchDirectComputation) {
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total"), Count("n")};
  Result<SubcubeSelection> sel = SelectSubcubesGreedy(*lattice_, cardinality_, 4);
  ASSERT_TRUE(sel.ok());
  Result<std::map<CuboidMask, Table>> mat =
      MaterializeSubcubes(*sel, *lattice_, cardinality_, sales_, aggs);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();
  ASSERT_EQ(mat->size(), sel->materialized.size());
  // Every materialized cuboid equals the direct MD-join at that granularity.
  std::vector<ExprPtr> eqs;
  for (const std::string& d : lattice_->dims()) eqs.push_back(Eq(BCol(d), RCol(d)));
  ExprPtr theta = CombineConjuncts(std::move(eqs));
  for (const auto& [mask, table] : *mat) {
    Result<Table> base = CuboidBase(sales_, *lattice_, mask);
    Result<Table> direct = MdJoin(*base, sales_, aggs, theta);
    ASSERT_TRUE(direct.ok());
    EXPECT_TRUE(TablesEqualUnordered(table, *direct))
        << lattice_->CuboidName(mask);
  }
}

TEST_F(SubcubeSelectionTest, AnswersAnyGranularityCorrectly) {
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total"), Count("n")};
  Result<SubcubeSelection> sel = SelectSubcubesGreedy(*lattice_, cardinality_, 3);
  ASSERT_TRUE(sel.ok());
  Result<std::map<CuboidMask, Table>> mat =
      MaterializeSubcubes(*sel, *lattice_, cardinality_, sales_, aggs);
  ASSERT_TRUE(mat.ok());
  std::vector<ExprPtr> eqs;
  for (const std::string& d : lattice_->dims()) eqs.push_back(Eq(BCol(d), RCol(d)));
  ExprPtr theta = CombineConjuncts(std::move(eqs));
  // Every granularity — materialized or not — answers correctly.
  for (CuboidMask target : lattice_->AllCuboids()) {
    Result<Table> answer = AnswerFromSubcubes(*sel, *lattice_, cardinality_, *mat,
                                              aggs, target);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    Result<Table> base = CuboidBase(sales_, *lattice_, target);
    Result<Table> direct = MdJoin(*base, sales_, aggs, theta);
    ASSERT_TRUE(direct.ok());
    EXPECT_TRUE(TablesEqualUnordered(*answer, *direct))
        << lattice_->CuboidName(target);
  }
}

TEST_F(SubcubeSelectionTest, RejectsNonDistributiveAggregates) {
  Result<SubcubeSelection> sel = SelectSubcubesGreedy(*lattice_, cardinality_, 2);
  ASSERT_TRUE(sel.ok());
  EXPECT_FALSE(MaterializeSubcubes(*sel, *lattice_, cardinality_, sales_,
                                   {Avg(RCol("sale"), "a")})
                   .ok());
}

TEST_F(SubcubeSelectionTest, RejectsSelectionWithoutFullCuboid) {
  SubcubeSelection sel;
  sel.materialized = {0b001};
  EXPECT_FALSE(MaterializeSubcubes(sel, *lattice_, cardinality_, sales_,
                                   {Count("n")})
                   .ok());
}

TEST_F(SubcubeSelectionTest, ToStringListsCuboids) {
  SubcubeSelection sel;
  sel.materialized = {lattice_->full_cuboid(), 0b001};
  std::string text = sel.ToString(*lattice_);
  EXPECT_NE(text.find("(prod, month, state)"), std::string::npos);
  EXPECT_NE(text.find("(prod, ALL, ALL)"), std::string::npos);
}

}  // namespace
}  // namespace mdjoin
