// A/B tests for the out-of-core MD-join (storage/out_of_core): PagedMdJoin
// must be bit-identical to the in-memory MdJoin across the full mode matrix
// — {1, 2, 8} threads × {vectorized, row} × {spill on, spill off} — plus
// zone-map pruning effectiveness, ALL/NULL equi-key spill routing, the
// catalog/executor paged path, and block-cache accounting under a query
// guard.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "analyze/binder.h"
#include "common/query_guard.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "obs/query_profile.h"
#include "optimizer/executor.h"
#include "optimizer/plan.h"
#include "storage/block_cache.h"
#include "storage/block_format.h"
#include "storage/out_of_core.h"
#include "storage/paged_table.h"
#include "storage/spill.h"
#include "table/table_builder.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using testutil::ALL;
using testutil::F;
using testutil::I;
using testutil::NUL;
using testutil::S;

/// Bit-exact cell comparison (doubles by bit pattern).
bool BitEq(const Value& a, const Value& b) {
  if (a.is_null()) return b.is_null();
  if (a.is_all()) return b.is_all();
  if (a.is_int64()) return b.is_int64() && a.int64() == b.int64();
  if (a.is_float64()) {
    if (!b.is_float64()) return false;
    uint64_t ba, bb;
    const double da = a.float64(), db = b.float64();
    std::memcpy(&ba, &da, sizeof(ba));
    std::memcpy(&bb, &db, sizeof(bb));
    return ba == bb;
  }
  return b.is_string() && a.string() == b.string();
}

::testing::AssertionResult TablesBitIdentical(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows()) {
    return ::testing::AssertionFailure()
           << "row counts differ: " << a.num_rows() << " vs " << b.num_rows();
  }
  if (a.num_columns() != b.num_columns()) {
    return ::testing::AssertionFailure() << "column counts differ";
  }
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      if (!BitEq(a.Get(r, c), b.Get(r, c))) {
        return ::testing::AssertionFailure()
               << "cell (" << r << ", " << c << ") differs: "
               << a.Get(r, c).ToString() << " vs " << b.Get(r, c).ToString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Writes `table` to a block file under the temp dir and opens it paged.
class PagedFixture {
 public:
  PagedFixture(const Table& table, int64_t block_size_rows,
               const std::string& tag) {
    path_ = std::filesystem::temp_directory_path().string() +
            "/mdjoin_ooc_test_" + tag + "_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
    BlockFileOptions options;
    options.block_size_rows = block_size_rows;
    Status s = WriteBlockFile(table, path_, options);
    MDJ_CHECK(s.ok()) << s.ToString();
    Result<std::unique_ptr<PagedTable>> opened = PagedTable::Open(path_);
    MDJ_CHECK(opened.ok()) << opened.status().ToString();
    paged_ = std::move(*opened);
  }
  ~PagedFixture() {
    paged_.reset();
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  const PagedTable& table() const { return *paged_; }

 private:
  std::string path_;
  std::unique_ptr<PagedTable> paged_;
};

/// θ with an equi conjunct (spillable) plus a detail-side range conjunct
/// (zone-prunable): per-customer sales above a threshold.
ExprPtr SelectiveTheta(double threshold) {
  return And(Eq(RCol("cust"), BCol("cust")), Gt(RCol("sale"), Lit(threshold)));
}

// ---------------------------------------------------------------------------
// The acceptance matrix: {1,2,8} threads × {vectorized,row} × {spill on,off}

TEST(OutOfCoreTest, BitIdenticalAcrossModeMatrix) {
  Table sales = testutil::RandomSales(3, 500);
  Result<Table> base = GroupByBase(sales, {"cust"});
  ASSERT_TRUE(base.ok());
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total"),
                               Avg(RCol("sale"), "mean"), Min(RCol("sale"), "lo"),
                               Max(RCol("sale"), "hi")};
  const ExprPtr theta = SelectiveTheta(120);
  PagedFixture paged(sales, 64, "matrix");
  BlockCache cache(BlockCache::Options{});

  for (int threads : {1, 2, 8}) {
    for (ExecutionMode mode : {ExecutionMode::kVectorized, ExecutionMode::kRow}) {
      MdJoinOptions reference_options;
      reference_options.execution_mode = mode;
      Result<Table> expect = MdJoin(*base, sales, aggs, theta, reference_options);
      ASSERT_TRUE(expect.ok()) << expect.status().ToString();
      for (bool spill : {false, true}) {
        MdJoinOptions md;
        md.execution_mode = mode;
        md.num_threads = threads;
        md.block_cache = &cache;
        md.enable_spill = spill;
        md.spill_partitions = spill ? 3 : 0;
        MdJoinStats stats;
        Result<Table> got = PagedMdJoin(*base, paged.table(), aggs, theta, md,
                                        &stats);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_TRUE(TablesBitIdentical(*expect, *got))
            << "threads=" << threads << " vectorized="
            << (mode == ExecutionMode::kVectorized) << " spill=" << spill;
        EXPECT_GT(stats.blocks_read, 0) << "paged run decoded no blocks";
        if (spill) {
          EXPECT_EQ(stats.spill_partitions, 3);
        }
      }
    }
  }
}

TEST(OutOfCoreTest, BitIdenticalWithoutCacheAndWithoutEquiConjunct) {
  // No cache (ephemeral faults) and a θ with no equi conjunct: the spill arm
  // must fall back and still match in-memory exactly.
  Table sales = testutil::RandomSales(5, 200);
  TableBuilder bb({{"lo", DataType::kFloat64}});
  for (double lo : {50.0, 150.0, 400.0}) bb.AppendRowOrDie({F(lo)});
  Table base = std::move(bb).Finish();
  const ExprPtr theta = Gt(RCol("sale"), BCol("lo"));
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};
  Result<Table> expect = MdJoin(base, sales, aggs, theta);
  ASSERT_TRUE(expect.ok());
  PagedFixture paged(sales, 32, "noequi");
  for (bool spill : {false, true}) {
    MdJoinOptions md;
    md.enable_spill = spill;
    Result<Table> got = PagedMdJoin(base, paged.table(), aggs, theta, md);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(TablesBitIdentical(*expect, *got)) << "spill=" << spill;
  }
}

TEST(OutOfCoreTest, EmptyBaseAndEmptyDetail) {
  Table sales = testutil::SmallSales();
  Table empty_base(Schema({{"cust", DataType::kInt64}}));
  std::vector<AggSpec> aggs = {Count("n")};
  const ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  {
    PagedFixture paged(sales, 4, "emptyb");
    Result<Table> got = PagedMdJoin(empty_base, paged.table(), aggs, theta);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->num_rows(), 0);
  }
  {
    Table empty_detail(testutil::SalesSchema());
    Result<Table> base = GroupByBase(sales, {"cust"});
    ASSERT_TRUE(base.ok());
    PagedFixture paged(empty_detail, 4, "emptyd");
    Result<Table> expect = MdJoin(*base, empty_detail, aggs, theta);
    ASSERT_TRUE(expect.ok());
    Result<Table> got = PagedMdJoin(*base, paged.table(), aggs, theta);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(TablesBitIdentical(*expect, *got));
  }
}

// ---------------------------------------------------------------------------
// Zone-map pruning

TEST(OutOfCoreTest, SelectiveThetaPrunesMajorityOfBlocks) {
  // Detail sorted by month: a θ selecting one month refutes every block
  // holding the others. With 4 months over 16 blocks, pruning must remove
  // >= 50% of blocks (the acceptance bar) — here 3/4 of them.
  Table sales = testutil::RandomSales(9, 512);
  Result<Table> sorted = SortTableBy(sales, {"month"});
  ASSERT_TRUE(sorted.ok());
  Result<Table> base = GroupByBase(*sorted, {"cust"});
  ASSERT_TRUE(base.ok());
  const ExprPtr theta =
      And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("month"), Lit(2)));
  PagedFixture paged(*sorted, 32, "prune");
  const int num_blocks = paged.table().num_blocks();
  ASSERT_EQ(num_blocks, 16);

  MdJoinStats stats;
  Result<Table> got = PagedMdJoin(*base, paged.table(), {Count("n")}, theta, {},
                                  &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_GE(stats.blocks_pruned, num_blocks / 2)
      << "selective θ pruned only " << stats.blocks_pruned << "/" << num_blocks;
  EXPECT_EQ(stats.blocks_read + stats.blocks_pruned, num_blocks);
  Result<Table> expect = MdJoin(*base, *sorted, {Count("n")}, theta);
  ASSERT_TRUE(expect.ok());
  EXPECT_TRUE(TablesBitIdentical(*expect, *got));
}

TEST(OutOfCoreTest, UnsatisfiableThetaPrunesEverything) {
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  ASSERT_TRUE(base.ok());
  // sale > 10 and sale < 5 is range-refuted without reading any block.
  const ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")),
                            And(Gt(RCol("sale"), Lit(10.0)),
                                Lt(RCol("sale"), Lit(5.0))));
  PagedFixture paged(sales, 4, "unsat");
  MdJoinStats stats;
  Result<Table> got = PagedMdJoin(*base, paged.table(),
                                  {Count("n"), Sum(RCol("sale"), "t")}, theta,
                                  {}, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(stats.blocks_read, 0);
  EXPECT_EQ(stats.blocks_pruned, paged.table().num_blocks());
  // Outer semantics intact: every base row present with identity aggregates.
  EXPECT_EQ(got->num_rows(), base->num_rows());
  for (int64_t r = 0; r < got->num_rows(); ++r) {
    EXPECT_EQ(got->Get(r, got->num_columns() - 2).int64(), 0);
    EXPECT_TRUE(got->Get(r, got->num_columns() - 1).is_null());
  }
}

TEST(OutOfCoreTest, PruningRespectsMultiPassBudgetDegradation) {
  // A soft budget too small for all aggregate states forces multi-pass over
  // the base; every pass re-walks the file, pruning the same refuted blocks.
  Table sales = testutil::RandomSales(13, 400);
  Result<Table> sorted = SortTableBy(sales, {"month"});
  ASSERT_TRUE(sorted.ok());
  Result<Table> base = GroupByBase(*sorted, {"cust", "prod", "month"});
  ASSERT_TRUE(base.ok());
  const ExprPtr theta = And(And(Eq(RCol("cust"), BCol("cust")),
                                Eq(RCol("prod"), BCol("prod"))),
                            Eq(RCol("month"), Lit(1)));
  Result<Table> expect = MdJoin(*base, *sorted, {Count("n")}, theta);
  ASSERT_TRUE(expect.ok());

  PagedFixture paged(*sorted, 32, "multipass");
  QueryGuardOptions goptions;
  goptions.memory_budget_bytes = 2048;  // forces several passes
  QueryGuard guard(goptions);
  MdJoinOptions md;
  md.guard = &guard;
  MdJoinStats stats;
  Result<Table> got = PagedMdJoin(*base, paged.table(), {Count("n")}, theta, md,
                                  &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_GT(stats.passes_over_detail, 1);
  EXPECT_TRUE(TablesBitIdentical(*expect, *got));
  EXPECT_EQ(guard.bytes_reserved(), 0);
}

// ---------------------------------------------------------------------------
// Spill routing: ALL and NULL equi keys

TEST(OutOfCoreTest, SpillRoutesAllAndNullKeys) {
  // Base rows: regular customers, a NULL key (matches nothing), and an ALL
  // key (matches every detail row). Detail rows: regular, NULL key (dropped),
  // ALL key (matches every base row whose other conjuncts hold).
  TableBuilder db(testutil::SalesSchema());
  auto add = [&db](Value cust, double sale) {
    db.AppendRowOrDie({cust, I(10), I(1), I(1), I(1997), S("NY"), F(sale)});
  };
  add(I(1), 100);
  add(I(2), 200);
  add(NUL(), 999);
  add(ALL(), 50);
  add(I(1), 10);
  Table detail = std::move(db).Finish();

  TableBuilder bb({{"cust", DataType::kInt64}});
  bb.AppendRowOrDie({I(1)});
  bb.AppendRowOrDie({I(2)});
  bb.AppendRowOrDie({NUL()});
  bb.AppendRowOrDie({ALL()});
  Table base = std::move(bb).Finish();

  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};
  const ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  Result<Table> expect = MdJoin(base, detail, aggs, theta);
  ASSERT_TRUE(expect.ok());

  // In-memory spill and paged spill must both reproduce it exactly.
  MdJoinOptions md;
  md.spill_partitions = 3;
  MdJoinStats stats;
  Result<Table> spilled = SpillMdJoin(base, detail, aggs, theta, md, &stats);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  EXPECT_TRUE(TablesBitIdentical(*expect, *spilled));
  EXPECT_GT(stats.spill_bytes_written, 0);

  PagedFixture paged(detail, 2, "allnull");
  md.enable_spill = true;
  Result<Table> paged_spilled =
      PagedMdJoin(base, paged.table(), aggs, theta, md);
  ASSERT_TRUE(paged_spilled.ok()) << paged_spilled.status().ToString();
  EXPECT_TRUE(TablesBitIdentical(*expect, *paged_spilled));

  // Spot-check the semantics this encodes: NULL-key base row matched nothing
  // (count 0); ALL-key base row is unconstrained on the equi attribute — the
  // conjunct drops away entirely, so it matches every detail row including
  // the NULL-key one (all 5 here). The in-memory base index encodes base-side
  // ALL as a bucket with no probe positions, and the spill router must
  // reproduce that by broadcasting ALL-key base rows against the full detail.
  EXPECT_EQ(spilled->Get(2, 1).int64(), 0);
  EXPECT_TRUE(spilled->Get(2, 2).is_null());
  EXPECT_EQ(spilled->Get(3, 1).int64(), 5);
}

TEST(OutOfCoreTest, SpillUnderGuardLeavesNoReservations) {
  Table sales = testutil::RandomSales(21, 600);
  Result<Table> base = GroupByBase(sales, {"cust"});
  ASSERT_TRUE(base.ok());
  QueryGuardOptions goptions;
  goptions.memory_hard_limit_bytes = 8 << 20;
  QueryGuard guard(goptions);
  MdJoinOptions md;
  md.guard = &guard;
  md.enable_spill = true;
  md.spill_partitions = 4;
  md.num_threads = 2;
  PagedFixture paged(sales, 64, "spillguard");
  MdJoinStats stats;
  Result<Table> got = PagedMdJoin(*base, paged.table(),
                                  {Count("n"), Sum(RCol("sale"), "t")},
                                  SelectiveTheta(100), md, &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(guard.bytes_reserved(), 0);
  EXPECT_EQ(stats.spill_partitions, 4);
  Result<Table> expect =
      MdJoin(*base, sales, {Count("n"), Sum(RCol("sale"), "t")},
             SelectiveTheta(100));
  ASSERT_TRUE(expect.ok());
  EXPECT_TRUE(TablesBitIdentical(*expect, *got));
}

// ---------------------------------------------------------------------------
// PagedTable plumbing

TEST(OutOfCoreTest, ReadAllMaterializesAndChargesGuard) {
  Table sales = testutil::RandomSales(17, 100);
  PagedFixture paged(sales, 16, "readall");
  QueryGuardOptions goptions;
  goptions.memory_hard_limit_bytes = 1 << 30;
  QueryGuard guard(goptions);
  Result<Table> read = paged.table().ReadAll(&guard);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->num_rows(), sales.num_rows());
  EXPECT_GT(guard.bytes_high_water(), 0);
}

TEST(OutOfCoreTest, BlockCacheBytesChargedThroughCallbacks) {
  // The block cache charges decoded residency to its external pool; the
  // total drains when the cache dies, and a paged scan through it leaves no
  // guard bytes behind.
  Table sales = testutil::RandomSales(19, 256);
  Result<Table> base = GroupByBase(sales, {"cust"});
  ASSERT_TRUE(base.ok());
  PagedFixture paged(sales, 32, "charge");
  int64_t pool = 0;
  {
    BlockCache::Options coptions;
    coptions.capacity_bytes = 1 << 20;
    coptions.charge = [&pool](int64_t bytes) {
      pool += bytes;
      return true;
    };
    coptions.release = [&pool](int64_t bytes) { pool -= bytes; };
    BlockCache cache(coptions);
    QueryGuard guard(QueryGuardOptions{});
    MdJoinOptions md;
    md.guard = &guard;
    md.block_cache = &cache;
    Result<Table> got = PagedMdJoin(*base, paged.table(), {Count("n")},
                                    Eq(RCol("cust"), BCol("cust")), md);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(pool, cache.resident_bytes());
    EXPECT_GT(pool, 0);
    EXPECT_EQ(guard.bytes_reserved(), 0);
  }
  EXPECT_EQ(pool, 0);
}

TEST(OutOfCoreTest, SecondScanThroughCacheHitsResidentBlocks) {
  Table sales = testutil::RandomSales(23, 256);
  Result<Table> base = GroupByBase(sales, {"cust"});
  ASSERT_TRUE(base.ok());
  PagedFixture paged(sales, 32, "hits");
  // Explicit capacity: the hit assertions below must hold even when the CI
  // low-memory job starves default-sized caches via MDJOIN_BLOCK_CACHE_BYTES.
  BlockCache::Options coptions;
  coptions.capacity_bytes = 64 << 20;
  BlockCache cache(coptions);
  MdJoinOptions md;
  md.block_cache = &cache;
  const ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  MdJoinStats cold, warm;
  ASSERT_TRUE(PagedMdJoin(*base, paged.table(), {Count("n")}, theta, md, &cold).ok());
  ASSERT_TRUE(PagedMdJoin(*base, paged.table(), {Count("n")}, theta, md, &warm).ok());
  EXPECT_EQ(cold.block_cache_hits, 0);
  EXPECT_EQ(cold.blocks_faulted, cold.blocks_read);
  EXPECT_EQ(warm.block_cache_hits, warm.blocks_read);
  EXPECT_EQ(warm.blocks_faulted, 0);
}

// ---------------------------------------------------------------------------
// Catalog / executor integration

TEST(OutOfCoreTest, ExecutorRunsMdJoinAgainstPagedDetail) {
  Table sales = testutil::SmallSales();
  PagedFixture paged(sales, 4, "exec");
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("SalesMem", &sales).ok());
  ASSERT_TRUE(RegisterPagedTable(&catalog, "Sales", paged.table()).ok());
  EXPECT_NE(catalog.FindPaged("Sales"), nullptr);
  EXPECT_EQ(catalog.FindPaged("SalesMem"), nullptr);

  const char* sql =
      "select cust, count(*) as n, sum(X.sale) as total from Sales "
      "analyze by group(cust) such that X: X.cust = cust";
  Result<analyze::BoundQuery> bound = analyze::BindQueryString(sql, catalog);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  Result<Table> got = ExecutePlan(bound->plan, catalog);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  const char* mem_sql =
      "select cust, count(*) as n, sum(X.sale) as total from SalesMem "
      "analyze by group(cust) such that X: X.cust = cust";
  Result<analyze::BoundQuery> mem_bound = analyze::BindQueryString(mem_sql, catalog);
  ASSERT_TRUE(mem_bound.ok());
  Result<Table> expect = ExecutePlan(mem_bound->plan, catalog);
  ASSERT_TRUE(expect.ok());
  EXPECT_TRUE(TablesBitIdentical(*expect, *got));
}

TEST(OutOfCoreTest, ExplainAnalyzeReportsBlockCounters) {
  Table sales = testutil::RandomSales(29, 200);
  Result<Table> sorted = SortTableBy(sales, {"month"});
  ASSERT_TRUE(sorted.ok());
  PagedFixture paged(*sorted, 16, "profile");
  Catalog catalog;
  ASSERT_TRUE(RegisterPagedTable(&catalog, "Sales", paged.table()).ok());
  const char* sql =
      "select cust, count(X.*) as n from Sales analyze by group(cust) "
      "such that X: X.cust = cust and X.month = 2";
  Result<analyze::BoundQuery> bound = analyze::BindQueryString(sql, catalog);
  ASSERT_TRUE(bound.ok());
  QueryProfile profile;
  Result<Table> got = ExplainAnalyze(bound->plan, catalog, {}, &profile);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // The MD-join node carries the out-of-core counters.
  const OperatorProfile* md = nullptr;
  std::function<void(const OperatorProfile&)> find = [&](const OperatorProfile& n) {
    if (n.is_mdjoin) md = &n;
    for (const auto& child : n.children) find(*child);
  };
  ASSERT_NE(profile.root, nullptr);
  find(*profile.root);
  ASSERT_NE(md, nullptr);
  EXPECT_GT(md->blocks_read, 0);
  EXPECT_GT(md->blocks_pruned, 0);
  const std::string text = profile.ToText();
  EXPECT_NE(text.find("blocks_read="), std::string::npos) << text;
}

TEST(OutOfCoreTest, CatalogRejectsDuplicateNamesAcrossKinds) {
  Table sales = testutil::SmallSales();
  PagedFixture paged(sales, 4, "dupe");
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("T", &sales).ok());
  EXPECT_FALSE(RegisterPagedTable(&catalog, "T", paged.table()).ok());
  ASSERT_TRUE(RegisterPagedTable(&catalog, "P", paged.table()).ok());
  EXPECT_FALSE(catalog.Register("P", &sales).ok());
  Result<int64_t> rows = catalog.LookupNumRows("P");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, sales.num_rows());
}

}  // namespace
}  // namespace mdjoin
