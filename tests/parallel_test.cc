#include <gtest/gtest.h>

#include <atomic>

#include "core/mdjoin.h"
#include "parallel/parallel_mdjoin.h"
#include "parallel/thread_pool.h"
#include "ra/group_by.h"
#include "cube/base_tables.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT

ExprPtr CustTheta() { return Eq(RCol("cust"), BCol("cust")); }

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReentrant) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  // Submitting after a Wait round works.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(3);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ParallelMdJoinTest, MatchesSequential) {
  Table sales = testutil::RandomSales(31, 400);
  Result<Table> base = GroupByBase(sales, {"cust", "month"});
  ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("month"), BCol("month")));
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total"),
                               Avg(RCol("sale"), "a")};
  Result<Table> sequential = MdJoin(*base, sales, aggs, theta);
  ASSERT_TRUE(sequential.ok());
  for (int partitions : {1, 2, 3, 8}) {
    for (int threads : {1, 2, 4}) {
      ParallelMdJoinStats stats;
      Result<Table> parallel =
          ParallelMdJoin(*base, sales, aggs, theta, partitions, threads, {}, &stats);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      EXPECT_TRUE(TablesEqualOrdered(*sequential, *parallel))
          << "partitions=" << partitions << " threads=" << threads;
      EXPECT_EQ(stats.num_partitions, partitions);
      // Theorem 4.1 price: every fragment scans all of R.
      EXPECT_EQ(stats.total_detail_rows_scanned, partitions * sales.num_rows());
    }
  }
}

TEST(ParallelMdJoinTest, DetailSplitMatchesSequential) {
  Table sales = testutil::RandomSales(33, 400);
  Result<Table> base = GroupByBase(sales, {"cust"});
  // Include a holistic aggregate: Merge-based detail split must still be
  // exact (this is what the merge callbacks buy over rollup re-aggregation).
  std::vector<AggSpec> aggs = {Count("n"), Avg(RCol("sale"), "a"),
                               CountDistinct(RCol("prod"), "dp")};
  Result<Table> sequential = MdJoin(*base, sales, aggs, CustTheta());
  ASSERT_TRUE(sequential.ok());
  for (int partitions : {1, 2, 5}) {
    ParallelMdJoinStats stats;
    Result<Table> parallel = ParallelMdJoinDetailSplit(*base, sales, aggs, CustTheta(),
                                                       partitions, 3, {}, &stats);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_TRUE(TablesEqualOrdered(*sequential, *parallel)) << "p=" << partitions;
    // Detail split scans R exactly once in total.
    EXPECT_EQ(stats.total_detail_rows_scanned, sales.num_rows());
  }
}

TEST(ParallelMdJoinTest, DetailSplitHandlesResidualTheta) {
  Table sales = testutil::RandomSales(35, 300);
  Result<Table> base = GroupByBase(sales, {"cust"});
  Result<Table> with_avg = MdJoin(*base, sales, {Avg(RCol("sale"), "avg_sale")},
                                  CustTheta());
  ASSERT_TRUE(with_avg.ok());
  ExprPtr theta = And(CustTheta(), Gt(RCol("sale"), BCol("avg_sale")),
                      Eq(RCol("year"), Lit(1997)));
  std::vector<AggSpec> aggs = {Count("above")};
  Result<Table> sequential = MdJoin(*with_avg, sales, aggs, theta);
  Result<Table> parallel =
      ParallelMdJoinDetailSplit(*with_avg, sales, aggs, theta, 4, 2);
  ASSERT_TRUE(sequential.ok() && parallel.ok());
  EXPECT_TRUE(TablesEqualOrdered(*sequential, *parallel));
}

TEST(ParallelMdJoinTest, CubeBaseParallel) {
  Table sales = testutil::RandomSales(37, 250);
  Result<Table> base = CubeByBase(sales, {"prod", "month"});
  ExprPtr theta = And(Eq(BCol("prod"), RCol("prod")), Eq(BCol("month"), RCol("month")));
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total")};
  Result<Table> sequential = MdJoin(*base, sales, aggs, theta);
  Result<Table> parallel = ParallelMdJoin(*base, sales, aggs, theta, 4, 4);
  ASSERT_TRUE(sequential.ok() && parallel.ok());
  EXPECT_TRUE(TablesEqualOrdered(*sequential, *parallel));
}

TEST(ParallelMdJoinTest, InvalidArguments) {
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  EXPECT_FALSE(ParallelMdJoin(*base, sales, {Count("n")}, CustTheta(), 0, 1).ok());
  EXPECT_FALSE(ParallelMdJoin(*base, sales, {Count("n")}, CustTheta(), 1, 0).ok());
  EXPECT_FALSE(
      ParallelMdJoinDetailSplit(*base, sales, {Count("n")}, nullptr, 2, 2).ok());
}

}  // namespace
}  // namespace mdjoin
