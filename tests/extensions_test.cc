/// Tests for the extension features beyond the paper's minimal surface:
/// holistic/approximate aggregates (footnote 2), the rule-driven optimizer
/// driver, and the HAVING / ORDER BY clauses of the ANALYZE BY dialect.

#include <gtest/gtest.h>

#include "agg/agg_spec.h"
#include "analyze/binder.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "optimizer/executor.h"
#include "optimizer/optimize.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using testutil::F;
using testutil::I;

Value RunAgg(const std::string& name, const std::vector<Value>& values) {
  const AggregateFunction* fn = *AggregateRegistry::Global()->Lookup(name);
  std::unique_ptr<AggregateState> state = fn->MakeState();
  for (const Value& v : values) fn->Update(state.get(), v);
  return fn->Finalize(*state);
}

TEST(HolisticAggTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(RunAgg("median", {I(5), I(1), I(3)}).float64(), 3.0);
  EXPECT_DOUBLE_EQ(RunAgg("median", {I(4), I(1), I(3), I(2)}).float64(), 2.5);
  EXPECT_TRUE(RunAgg("median", {}).is_null());
  EXPECT_DOUBLE_EQ(RunAgg("median", {I(7), Value::Null()}).float64(), 7.0);
}

TEST(HolisticAggTest, MedianMergeIsExact) {
  const AggregateFunction* fn = *AggregateRegistry::Global()->Lookup("median");
  std::unique_ptr<AggregateState> a = fn->MakeState();
  std::unique_ptr<AggregateState> b = fn->MakeState();
  for (int64_t v : {9, 2, 5}) fn->Update(a.get(), I(v));
  for (int64_t v : {7, 1}) fn->Update(b.get(), I(v));
  fn->Merge(a.get(), *b);
  EXPECT_DOUBLE_EQ(fn->Finalize(*a).float64(), 5.0);  // median of {1,2,5,7,9}
}

TEST(HolisticAggTest, ApproxMedianNearExactOnSkewlessData) {
  // 10k uniform values: the 256-sample reservoir median should land well
  // inside the interquartile range.
  Random rng(99);
  std::vector<Value> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(F(static_cast<double>(rng.UniformInt(0, 1000))));
  }
  double approx = RunAgg("approx_median", values).float64();
  EXPECT_GT(approx, 350.0);
  EXPECT_LT(approx, 650.0);
  // Small inputs are exact (sample not yet saturated).
  EXPECT_DOUBLE_EQ(RunAgg("approx_median", {I(1), I(2), I(3)}).float64(), 2.0);
}

TEST(HolisticAggTest, Mode) {
  EXPECT_EQ(RunAgg("mode", {I(2), I(1), I(2), I(3), I(2)}).int64(), 2);
  // Deterministic tie-break toward the smaller value.
  EXPECT_EQ(RunAgg("mode", {I(5), I(3), I(5), I(3)}).int64(), 3);
  EXPECT_EQ(RunAgg("mode", {Value::String("NY"), Value::String("NY"),
                            Value::String("CT")})
                .string(),
            "NY");
  EXPECT_TRUE(RunAgg("mode", {}).is_null());
}

TEST(HolisticAggTest, Classification) {
  auto cls = [](const char* n) {
    return (*AggregateRegistry::Global()->Lookup(n))->agg_class();
  };
  EXPECT_EQ(cls("median"), AggClass::kHolistic);
  EXPECT_EQ(cls("mode"), AggClass::kHolistic);
  // Footnote 2: approximation makes it algebraic (bounded state).
  EXPECT_EQ(cls("approx_median"), AggClass::kAlgebraic);
  // None of them support Theorem 4.5 roll-up.
  EXPECT_FALSE(RollupSpec(AggSpec{"median", RCol("sale"), "m"}).ok());
}

TEST(HolisticAggTest, MedianInsideMdJoin) {
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  Result<Table> md = MdJoin(*base, sales, {AggSpec{"median", RCol("sale"), "med"}},
                            Eq(RCol("cust"), BCol("cust")));
  ASSERT_TRUE(md.ok()) << md.status().ToString();
  // cust 1 sales: 100, 200, 50, 70 -> median (70+100)/2 = 85.
  EXPECT_DOUBLE_EQ(md->Get(0, 1).float64(), 85.0);
}

class OptimizeDriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sales_ = testutil::RandomSales(71, 250);
    ASSERT_TRUE(catalog_.Register("sales", &sales_).ok());
  }

  PlanPtr CustBase() {
    return DistinctPlan(ProjectPlan(TableRef("sales"), {{Col("cust"), "cust"}}));
  }

  Table sales_;
  Catalog catalog_;
};

TEST_F(OptimizeDriverTest, FusesAndPushesDown) {
  auto state_theta = [](const char* st) {
    return And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit(st)));
  };
  PlanPtr plan = CustBase();
  plan = MdJoinPlan(plan, TableRef("sales"), {Avg(RCol("sale"), "a_ny")},
                    state_theta("NY"));
  plan = MdJoinPlan(plan, TableRef("sales"), {Avg(RCol("sale"), "a_nj")},
                    state_theta("NJ"));
  OptimizeReport report;
  Result<PlanPtr> optimized = OptimizePlan(plan, catalog_, {}, &report);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  // Fusion fired: root is a generalized MD-join.
  EXPECT_EQ((*optimized)->kind(), PlanKind::kGeneralizedMdJoin);
  EXPECT_FALSE(report.applied.empty());
  // Results unchanged.
  Result<Table> before = ExecutePlan(plan, catalog_);
  Result<Table> after = ExecutePlan(*optimized, catalog_);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_TRUE(TablesEqualUnordered(*before, *after));
}

TEST_F(OptimizeDriverTest, PushdownFiresOnSingleMdJoin) {
  PlanPtr plan = MdJoinPlan(CustBase(), TableRef("sales"), {Count("n")},
                            And(Eq(RCol("cust"), BCol("cust")),
                                Eq(RCol("year"), Lit(1997))));
  OptimizeReport report;
  Result<PlanPtr> optimized = OptimizePlan(plan, catalog_, {}, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ((*optimized)->child(1)->kind(), PlanKind::kFilter);
  Result<Table> before = ExecutePlan(plan, catalog_);
  Result<Table> after = ExecutePlan(*optimized, catalog_);
  EXPECT_TRUE(TablesEqualUnordered(*before, *after));
}

TEST_F(OptimizeDriverTest, TransferFiresUnderFilteredBase) {
  PlanPtr plan = MdJoinPlan(FilterPlan(CustBase(), Le(Col("cust"), Lit(3))),
                            TableRef("sales"), {Count("n")},
                            Eq(RCol("cust"), BCol("cust")));
  OptimizeReport report;
  Result<PlanPtr> optimized = OptimizePlan(plan, catalog_, {}, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ((*optimized)->child(1)->kind(), PlanKind::kFilter);
  // Idempotence: the transferred σ must appear exactly once, not once per
  // driver round.
  EXPECT_EQ((*optimized)->child(1)->child(0)->kind(), PlanKind::kTableRef);
  Result<Table> before = ExecutePlan(plan, catalog_);
  Result<Table> after = ExecutePlan(*optimized, catalog_);
  EXPECT_TRUE(TablesEqualUnordered(*before, *after));
}

TEST_F(OptimizeDriverTest, DependentChainStaysChained) {
  PlanPtr plan = CustBase();
  plan = MdJoinPlan(plan, TableRef("sales"), {Avg(RCol("sale"), "a")},
                    Eq(RCol("cust"), BCol("cust")));
  plan = MdJoinPlan(plan, TableRef("sales"), {Count("n")},
                    And(Eq(RCol("cust"), BCol("cust")), Gt(RCol("sale"), BCol("a"))));
  Result<PlanPtr> optimized = OptimizePlan(plan, catalog_);
  ASSERT_TRUE(optimized.ok());
  // Still two stacked MD-joins (no illegal fusion), same results.
  EXPECT_EQ((*optimized)->kind(), PlanKind::kMdJoin);
  Result<Table> before = ExecutePlan(plan, catalog_);
  Result<Table> after = ExecutePlan(*optimized, catalog_);
  EXPECT_TRUE(TablesEqualUnordered(*before, *after));
}

TEST_F(OptimizeDriverTest, CubeRollupOptIn) {
  std::vector<std::string> dims = {"prod", "month"};
  ExprPtr theta = And(Eq(BCol("prod"), RCol("prod")), Eq(BCol("month"), RCol("month")));
  PlanPtr plan = MdJoinPlan(CubeBasePlan(TableRef("sales"), dims), TableRef("sales"),
                            {Sum(RCol("sale"), "total"), Count("n")}, theta);
  // Off by default: the plan keeps its CubeBase shape.
  Result<PlanPtr> untouched = OptimizePlan(plan, catalog_);
  ASSERT_TRUE(untouched.ok());
  EXPECT_EQ((*untouched)->child(0)->kind(), PlanKind::kCubeBase);
  // Opted in: the driver may expand into per-cuboid roll-up chains (gated by
  // the cost model); whatever it decides, results are identical under the
  // CSE executor.
  OptimizeOptions options;
  options.enable_cube_rollup = true;
  OptimizeReport report;
  Result<PlanPtr> optimized = OptimizePlan(plan, catalog_, options, &report);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  Result<Table> before = ExecutePlanCse(plan, catalog_);
  Result<Table> after = ExecutePlanCse(*optimized, catalog_);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_TRUE(TablesEqualUnordered(*before, *after));
}

TEST_F(OptimizeDriverTest, RulesCanBeDisabled) {
  PlanPtr plan = MdJoinPlan(CustBase(), TableRef("sales"), {Count("n")},
                            And(Eq(RCol("cust"), BCol("cust")),
                                Eq(RCol("year"), Lit(1997))));
  OptimizeOptions off;
  off.enable_pushdown = false;
  off.enable_transfer = false;
  off.enable_fusion = false;
  Result<PlanPtr> optimized = OptimizePlan(plan, catalog_, off);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(ExplainPlan(*optimized), ExplainPlan(plan));
}

class HavingOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sales_ = testutil::SmallSales();
    ASSERT_TRUE(catalog_.Register("Sales", &sales_).ok());
  }

  Result<Table> Run(const std::string& sql) {
    Result<analyze::BoundQuery> bound = analyze::BindQueryString(sql, catalog_);
    if (!bound.ok()) return bound.status();
    return ExecutePlanCse(bound->plan, catalog_);
  }

  Table sales_;
  Catalog catalog_;
};

TEST_F(HavingOrderTest, HavingFiltersOutputs) {
  Result<Table> all = Run(
      "select cust, sum(sale) as total from Sales analyze by group(cust)");
  Result<Table> big = Run(
      "select cust, sum(sale) as total from Sales analyze by group(cust) "
      "having total > 400");
  ASSERT_TRUE(all.ok() && big.ok()) << big.status().ToString();
  EXPECT_LT(big->num_rows(), all->num_rows());
  for (int64_t r = 0; r < big->num_rows(); ++r) {
    EXPECT_GT(big->Get(r, 1).AsDouble(), 400.0);
  }
}

TEST_F(HavingOrderTest, OrderBySortsOutputs) {
  Result<Table> got = Run(
      "select cust, sum(sale) as total from Sales analyze by group(cust) "
      "order by total desc");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  for (int64_t r = 1; r < got->num_rows(); ++r) {
    EXPECT_GE(got->Get(r - 1, 1).AsDouble(), got->Get(r, 1).AsDouble());
  }
}

TEST_F(HavingOrderTest, OrderByMultipleKeys) {
  Result<Table> got = Run(
      "select prod, month, count(*) as n from Sales "
      "analyze by group(prod, month) order by prod asc, month desc");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  for (int64_t r = 1; r < got->num_rows(); ++r) {
    int c = got->Get(r - 1, 0).Compare(got->Get(r, 0));
    EXPECT_LE(c, 0);
    if (c == 0) {
      EXPECT_GE(got->Get(r - 1, 1).int64(), got->Get(r, 1).int64());
    }
  }
}

TEST_F(HavingOrderTest, HavingThenOrderCombined) {
  Result<Table> got = Run(
      "select cust, count(*) as n from Sales analyze by group(cust) "
      "having n >= 2 order by n desc");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_GT(got->num_rows(), 0);
  EXPECT_GE(got->Get(got->num_rows() - 1, 1).int64(), 2);
}

TEST_F(HavingOrderTest, Errors) {
  EXPECT_FALSE(Run("select cust, count(*) as n from Sales analyze by group(cust) "
                   "having bogus > 1")
                   .ok());
  EXPECT_FALSE(Run("select cust from Sales analyze by group(cust) order by bogus")
                   .ok());
}

TEST_F(HavingOrderTest, MedianInQueryLanguage) {
  Result<Table> got = Run(
      "select cust, median(sale) as med from Sales analyze by group(cust) "
      "order by cust");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_DOUBLE_EQ(got->Get(0, 1).float64(), 85.0);  // cust 1: {50,70,100,200}
}

}  // namespace
}  // namespace mdjoin
