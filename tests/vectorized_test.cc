/// A/B property tests for the vectorized execution path: for every θ shape
/// the kernel grammar distinguishes (typed compares, string equality, IN
/// lists, flipped literals, residuals, computed keys) and every option the
/// evaluator exposes (index on/off, pushdown on/off, multi-pass staging,
/// guard budgets, odd block sizes), ExecutionMode::kVectorized must produce
/// the same table AND the same work counters as ExecutionMode::kRow. The
/// aggregate list deliberately mixes flat-kernel builtins (count, sum, min,
/// max, avg) with heap-fallback functions (count_distinct, var_pop) and a
/// computed argument, so both state representations run side by side.

#include <gtest/gtest.h>

#include "core/generalized.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "expr/conjuncts.h"
#include "parallel/parallel_mdjoin.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using testutil::F;
using testutil::I;
using testutil::NUL;
using testutil::S;

/// RandomSales plus NULL-bearing rows: NULL sale (aggregate inputs), NULL
/// month (equi key that matches nothing), NULL state (string kernels).
Table SalesWithNulls(uint64_t seed, int64_t rows) {
  Table t = testutil::RandomSales(seed, rows);
  TableBuilder b(testutil::SalesSchema());
  for (int64_t r = 0; r < t.num_rows(); ++r) b.AppendRowOrDie(t.GetRow(r));
  b.AppendRowOrDie({I(1), I(10), I(1), I(1), I(1997), S("NY"), NUL()});
  b.AppendRowOrDie({I(2), I(20), I(2), NUL(), I(1997), S("CA"), F(75)});
  b.AppendRowOrDie({I(3), I(10), I(3), I(2), I(1999), NUL(), F(33)});
  b.AppendRowOrDie({NUL(), I(20), I(4), I(3), I(1999), S("NJ"), F(12)});
  return std::move(b).Finish();
}

/// Flat kernels (count/sum/min/max/avg), heap fallbacks (count_distinct,
/// var_pop), string extremum, int sum, and a computed argument.
std::vector<AggSpec> MixedAggs() {
  std::vector<AggSpec> aggs = {Count("n"),
                               Count(RCol("sale"), "n_sale"),
                               Sum(RCol("sale"), "total"),
                               Sum(RCol("cust"), "cust_sum"),
                               Min(RCol("sale"), "lo"),
                               Max(RCol("sale"), "hi"),
                               Max(RCol("state"), "last_state"),
                               Avg(RCol("sale"), "mean"),
                               CountDistinct(RCol("prod"), "n_prod")};
  aggs.push_back(AggSpec{"var_pop", RCol("sale"), "var"});
  aggs.push_back(Sum(Mul(RCol("sale"), Lit(2.0)), "twice"));
  return aggs;
}

/// θ shapes chosen so each predicate-kernel case (and the per-row fallback)
/// gets exercised, on top of the always-present equi conjunct.
std::vector<ExprPtr> ThetaVariants() {
  std::vector<ExprPtr> thetas;
  // Pure equi (single bucket index).
  thetas.push_back(Eq(RCol("cust"), BCol("cust")));
  // Typed compare kernels: float >, int <= with the literal on the left.
  thetas.push_back(And(Eq(RCol("cust"), BCol("cust")), Gt(RCol("sale"), Lit(100.0)),
                       Le(Lit(2), RCol("month"))));
  // String equality kernel + IN-list kernel.
  thetas.push_back(And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit("NY"))));
  thetas.push_back(And(Eq(RCol("cust"), BCol("cust")),
                       In(RCol("prod"), {Value::Int64(10), Value::Int64(30)})));
  // Detail-only conjunct with no columnar kernel (generic fallback in-block).
  thetas.push_back(
      And(Eq(RCol("cust"), BCol("cust")), Gt(Mul(RCol("sale"), Lit(2)), Lit(150))));
  // Base-only + residual conjuncts, computed equi key.
  thetas.push_back(And(Eq(RCol("cust"), BCol("cust")), Le(BCol("cust"), Lit(4)),
                       Gt(RCol("sale"), Mul(BCol("cust"), Lit(20)))));
  thetas.push_back(And(Eq(RCol("cust"), BCol("cust")),
                       Eq(RCol("month"), Sub(BCol("month"), Lit(1)))));
  // Two equi conjuncts (month key has NULLs on both sides).
  thetas.push_back(
      And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("month"), BCol("month"))));
  return thetas;
}

MdJoinOptions WithMode(MdJoinOptions base, ExecutionMode mode) {
  base.execution_mode = mode;
  return base;
}

/// Runs both modes and asserts identical tables and identical work counters.
void ExpectModesAgree(const Table& base, const Table& detail,
                      const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                      const MdJoinOptions& options) {
  MdJoinStats row_stats, vec_stats;
  Result<Table> row =
      MdJoin(base, detail, aggs, theta, WithMode(options, ExecutionMode::kRow),
             &row_stats);
  Result<Table> vec =
      MdJoin(base, detail, aggs, theta, WithMode(options, ExecutionMode::kVectorized),
             &vec_stats);
  ASSERT_TRUE(row.ok()) << row.status().ToString() << " θ=" << theta->ToString();
  ASSERT_TRUE(vec.ok()) << vec.status().ToString() << " θ=" << theta->ToString();
  EXPECT_TRUE(TablesEqualOrdered(*row, *vec)) << "θ=" << theta->ToString();
  // The vectorized path is an execution rewrite: every work counter the two
  // paths share must agree exactly.
  EXPECT_EQ(row_stats.detail_rows_scanned, vec_stats.detail_rows_scanned);
  EXPECT_EQ(row_stats.detail_rows_qualified, vec_stats.detail_rows_qualified);
  EXPECT_EQ(row_stats.candidate_pairs, vec_stats.candidate_pairs);
  EXPECT_EQ(row_stats.matched_pairs, vec_stats.matched_pairs);
  EXPECT_EQ(row_stats.passes_over_detail, vec_stats.passes_over_detail);
  EXPECT_EQ(row_stats.index_masks, vec_stats.index_masks);
  // Mode markers: blocks only on the vectorized path.
  EXPECT_EQ(row_stats.blocks, 0);
  EXPECT_GT(vec_stats.blocks, 0);
}

class VectorizedAB : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    sales_ = SalesWithNulls(GetParam(), 200);
    base_ = *GroupByBase(sales_, {"cust", "month"});
  }

  Table sales_;
  Table base_;
};

TEST_P(VectorizedAB, OptionsMatrix) {
  for (const ExprPtr& theta : ThetaVariants()) {
    for (bool use_index : {true, false}) {
      for (bool pushdown : {true, false}) {
        for (int64_t rows_per_pass : {int64_t{0}, int64_t{3}}) {
          MdJoinOptions options;
          options.use_index = use_index;
          options.push_detail_selection = pushdown;
          options.base_rows_per_pass = rows_per_pass;
          ExpectModesAgree(base_, sales_, MixedAggs(), theta, options);
        }
      }
    }
  }
}

TEST_P(VectorizedAB, OddBlockSizesCoverPartialBlocks) {
  ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")), Gt(RCol("sale"), Lit(50.0)));
  for (int block_size : {1, 7, 64, 100000}) {
    MdJoinOptions options;
    options.block_size = block_size;
    ExpectModesAgree(base_, sales_, MixedAggs(), theta, options);
  }
}

TEST_P(VectorizedAB, CubeBaseWithAllMarkers) {
  // Cube base: ALL markers in key positions, multiple index mask buckets.
  Table cube = *CubeByBase(sales_, {"prod", "month"});
  ExprPtr theta = And(Eq(RCol("prod"), BCol("prod")), Eq(RCol("month"), BCol("month")),
                      Gt(RCol("sale"), Lit(30.0)));
  for (bool use_index : {true, false}) {
    MdJoinOptions options;
    options.use_index = use_index;
    ExpectModesAgree(cube, sales_, MixedAggs(), theta, options);
  }
}

TEST_P(VectorizedAB, EmptyRngGroupsKeepIdentityValues) {
  // A base built from different data: many groups have empty RNG(b, R, θ)
  // and must finalize to the aggregate identities in both modes.
  Table other = SalesWithNulls(GetParam() + 7777, 40);
  Table disjoint_base = *GroupByBase(other, {"cust", "month"});
  ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")),
                      Eq(RCol("month"), BCol("month")), Eq(RCol("state"), Lit("IL")));
  ExpectModesAgree(disjoint_base, sales_, MixedAggs(), theta, MdJoinOptions{});
}

TEST_P(VectorizedAB, GuardBudgetDegradesBothModesAlike) {
  // A soft memory budget forces multi-pass degradation; both modes must
  // degrade identically (same effective partition size, same result).
  ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")), Gt(RCol("sale"), Lit(20.0)));
  QueryGuardOptions gopt;
  gopt.memory_budget_bytes =
      MixedAggs().size() * base_.num_rows() * kGuardBytesPerAggState +
      3 * kGuardBytesPerIndexedBaseRow;
  QueryGuard row_guard(gopt), vec_guard(gopt);

  MdJoinOptions row_options;
  row_options.execution_mode = ExecutionMode::kRow;
  row_options.guard = &row_guard;
  MdJoinOptions vec_options;
  vec_options.execution_mode = ExecutionMode::kVectorized;
  vec_options.guard = &vec_guard;

  MdJoinStats row_stats, vec_stats;
  Result<Table> row = MdJoin(base_, sales_, MixedAggs(), theta, row_options, &row_stats);
  Result<Table> vec = MdJoin(base_, sales_, MixedAggs(), theta, vec_options, &vec_stats);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  ASSERT_TRUE(vec.ok()) << vec.status().ToString();
  EXPECT_TRUE(TablesEqualOrdered(*row, *vec));
  EXPECT_TRUE(row_stats.memory_degraded);
  EXPECT_TRUE(vec_stats.memory_degraded);
  EXPECT_EQ(row_stats.base_rows_per_pass_effective,
            vec_stats.base_rows_per_pass_effective);
  EXPECT_EQ(row_stats.passes_over_detail, vec_stats.passes_over_detail);
  EXPECT_GT(row_stats.passes_over_detail, 1);
}

TEST_P(VectorizedAB, GeneralizedCubeComponentsKeepIndexesSeparate) {
  // Two components over a cube base (multi-bucket indexes) whose equi keys
  // coincide but whose base-only filters differ: the same probe key must
  // yield different candidate sets per component. Catches any state (e.g. a
  // probe memo) leaking across component indexes in the shared scan.
  Table cube = *CubeByBase(sales_, {"prod", "month"});
  std::vector<MdJoinComponent> components;
  components.push_back(
      {{Count("n_all"), Sum(RCol("sale"), "t_all")},
       And(Eq(RCol("prod"), BCol("prod")), Eq(RCol("month"), BCol("month")))});
  components.push_back(
      {{Count("n_h2"), Sum(RCol("sale"), "t_h2")},
       And(Eq(RCol("prod"), BCol("prod")), Eq(RCol("month"), BCol("month")),
           Gt(BCol("month"), Lit(2)))});

  MdJoinOptions options;
  MdJoinStats row_stats, vec_stats;
  Result<Table> row = GeneralizedMdJoin(cube, sales_, components,
                                        WithMode(options, ExecutionMode::kRow),
                                        &row_stats);
  Result<Table> vec = GeneralizedMdJoin(cube, sales_, components,
                                        WithMode(options, ExecutionMode::kVectorized),
                                        &vec_stats);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  ASSERT_TRUE(vec.ok()) << vec.status().ToString();
  EXPECT_TRUE(TablesEqualOrdered(*row, *vec));
  EXPECT_EQ(row_stats.matched_pairs, vec_stats.matched_pairs);
}

TEST_P(VectorizedAB, GeneralizedSharedScanAgrees) {
  std::vector<MdJoinComponent> components;
  components.push_back(
      {{Count("ny_n"), Sum(RCol("sale"), "ny_total")},
       And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit("NY")))});
  components.push_back(
      {{Sum(RCol("sale"), "big_total"), Min(RCol("sale"), "big_lo"),
        CountDistinct(RCol("prod"), "big_prods")},
       And(Eq(RCol("cust"), BCol("cust")), Gt(RCol("sale"), Lit(100.0)))});

  for (bool pushdown : {true, false}) {
    MdJoinOptions options;
    options.push_detail_selection = pushdown;
    MdJoinStats row_stats, vec_stats;
    Result<Table> row = GeneralizedMdJoin(base_, sales_, components,
                                          WithMode(options, ExecutionMode::kRow),
                                          &row_stats);
    Result<Table> vec = GeneralizedMdJoin(base_, sales_, components,
                                          WithMode(options, ExecutionMode::kVectorized),
                                          &vec_stats);
    ASSERT_TRUE(row.ok()) << row.status().ToString();
    ASSERT_TRUE(vec.ok()) << vec.status().ToString();
    EXPECT_TRUE(TablesEqualOrdered(*row, *vec));
    EXPECT_EQ(row_stats.detail_rows_scanned, vec_stats.detail_rows_scanned);
    EXPECT_EQ(row_stats.detail_rows_qualified, vec_stats.detail_rows_qualified);
    EXPECT_EQ(row_stats.candidate_pairs, vec_stats.candidate_pairs);
    EXPECT_EQ(row_stats.matched_pairs, vec_stats.matched_pairs);
    EXPECT_GT(vec_stats.blocks, 0);
  }
}

TEST_P(VectorizedAB, ParallelVariantsAgree) {
  ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")), Gt(RCol("sale"), Lit(60.0)));
  MdJoinOptions options;  // kAuto
  Result<Table> want =
      MdJoin(base_, sales_, MixedAggs(), theta, WithMode(options, ExecutionMode::kRow));
  ASSERT_TRUE(want.ok());
  for (ExecutionMode mode : {ExecutionMode::kRow, ExecutionMode::kVectorized}) {
    ParallelMdJoinStats base_split_stats, detail_split_stats;
    Result<Table> base_split =
        ParallelMdJoin(base_, sales_, MixedAggs(), theta, /*num_partitions=*/3,
                       /*num_threads=*/2, WithMode(options, mode), &base_split_stats);
    Result<Table> detail_split = ParallelMdJoinDetailSplit(
        base_, sales_, MixedAggs(), theta, /*num_partitions=*/3,
        /*num_threads=*/2, WithMode(options, mode), &detail_split_stats);
    ASSERT_TRUE(base_split.ok()) << base_split.status().ToString();
    ASSERT_TRUE(detail_split.ok()) << detail_split.status().ToString();
    EXPECT_TRUE(TablesEqualUnordered(*want, *base_split));
    EXPECT_TRUE(TablesEqualOrdered(*want, *detail_split));
    const bool vec = mode == ExecutionMode::kVectorized;
    EXPECT_EQ(base_split_stats.blocks > 0, vec);
    EXPECT_EQ(detail_split_stats.blocks > 0, vec);
  }
}

TEST_P(VectorizedAB, AutoModeResolvesToVectorized) {
  ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  MdJoinStats stats;
  Result<Table> out = MdJoin(base_, sales_, MixedAggs(), theta, MdJoinOptions{}, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(stats.blocks, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorizedAB, ::testing::Values(1, 2, 3, 4, 5),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mdjoin
