/// Query-guardrail coverage: cooperative cancellation (before and mid-scan,
/// observed within one check stride), deadlines, memory accounting with
/// graceful degradation to multi-pass (Theorem 4.1), row/pair work budgets,
/// first-error-wins propagation out of the parallel paths, failpoint-driven
/// fault injection, and the hardened ThreadPool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/failpoint.h"
#include "common/query_guard.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "obs/trace.h"
#include "core/generalized.h"
#include "core/incremental.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "optimizer/executor.h"
#include "optimizer/plan.h"
#include "parallel/parallel_mdjoin.h"
#include "parallel/thread_pool.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT

ExprPtr CustTheta() { return Eq(RCol("cust"), BCol("cust")); }

/// Resets the global failpoint registry around every test so armed points
/// never leak across tests.
class GuardrailTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Global()->Reset(); }
  void TearDown() override { FailpointRegistry::Global()->Reset(); }
};

TEST_F(GuardrailTest, CancelBeforeScanAllPaths) {
  Table sales = testutil::RandomSales(41, 300);
  Table base = *GroupByBase(sales, {"cust"});
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};

  QueryGuard guard;
  guard.Cancel();
  MdJoinOptions options;
  options.guard = &guard;

  Result<Table> classic = MdJoin(base, sales, aggs, CustTheta(), options);
  ASSERT_FALSE(classic.ok());
  EXPECT_EQ(classic.status().code(), StatusCode::kCancelled);

  Result<Table> parallel =
      ParallelMdJoin(base, sales, aggs, CustTheta(), 4, 2, options);
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().code(), StatusCode::kCancelled);

  Result<Table> split =
      ParallelMdJoinDetailSplit(base, sales, aggs, CustTheta(), 4, 2, options);
  ASSERT_FALSE(split.ok());
  EXPECT_EQ(split.status().code(), StatusCode::kCancelled);

  std::vector<MdJoinComponent> components = {{aggs, CustTheta()}};
  Result<Table> generalized = GeneralizedMdJoin(base, sales, components, options);
  ASSERT_FALSE(generalized.ok());
  EXPECT_EQ(generalized.status().code(), StatusCode::kCancelled);
}

TEST_F(GuardrailTest, CancelMidScanObservedWithinStride) {
  Table sales = testutil::RandomSales(43, 2000);
  Table base = *GroupByBase(sales, {"cust"});
  std::vector<AggSpec> aggs = {Count("n")};

  // The failpoint fires inside QueryGuard::Check at a stride boundary, which
  // is exactly where a concurrent Cancel() would first be seen. Skip the
  // first two checks (operator entry + first stride) so the cancel lands
  // mid-scan, then verify it is observed within one further stride.
  const int64_t stride = 64;
  QueryGuardOptions guard_options;
  guard_options.check_stride = stride;
  QueryGuard guard(guard_options);
  MdJoinOptions options;
  options.guard = &guard;
  FailpointRegistry::Global()->Enable("query_guard:cancel", /*count=*/1, /*skip=*/2);

  MdJoinStats stats;
  Result<Table> result = MdJoin(base, sales, aggs, CustTheta(), options, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // Two checks passed (entry + one stride of 64 rows), the third cancelled:
  // the scan stopped after at most two strides of detail rows.
  EXPECT_GT(stats.detail_rows_scanned, 0);
  EXPECT_LE(stats.detail_rows_scanned, 2 * stride);
  EXPECT_LT(stats.detail_rows_scanned, sales.num_rows());
}

TEST_F(GuardrailTest, CancelMidScanParallelPaths) {
  Table sales = testutil::RandomSales(45, 2000);
  Table base = *GroupByBase(sales, {"cust"});
  std::vector<AggSpec> aggs = {Count("n")};

  for (int variant = 0; variant < 2; ++variant) {
    FailpointRegistry::Global()->Reset();
    FailpointRegistry::Global()->Enable("query_guard:cancel", /*count=*/1,
                                        /*skip=*/4);
    QueryGuardOptions guard_options;
    guard_options.check_stride = 64;
    QueryGuard guard(guard_options);
    MdJoinOptions options;
    options.guard = &guard;
    Result<Table> result =
        variant == 0
            ? ParallelMdJoin(base, sales, aggs, CustTheta(), 4, 2, options)
            : ParallelMdJoinDetailSplit(base, sales, aggs, CustTheta(), 4, 2, options);
    ASSERT_FALSE(result.ok()) << "variant=" << variant;
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled) << "variant=" << variant;
  }
}

TEST_F(GuardrailTest, CancelledQueryProfileStillWellFormed) {
  // A query tripped mid-scan must still leave a coherent observability
  // record: a profile tree with partial counts, a non-ok terminal event, a
  // guard-trip instant in the trace, and a guard-trip counter increment.
  Table sales = testutil::RandomSales(49, 2000);
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", &sales).ok());
  PlanPtr base =
      DistinctPlan(ProjectPlan(TableRef("Sales"), {{Col("cust"), "cust"}}));
  PlanPtr plan = MdJoinPlan(base, TableRef("Sales"), {Count("n")}, CustTheta());

  QueryGuardOptions guard_options;
  guard_options.check_stride = 64;
  QueryGuard guard(guard_options);
  MdJoinOptions options;
  options.guard = &guard;
  // Every executor node gate evaluates the failpoint too (five plan nodes),
  // then the scan's entry check: skipping ten lands the cancel a few strides
  // into the detail scan, with partial counts already accumulated.
  FailpointRegistry::Global()->Enable("query_guard:cancel", /*count=*/1,
                                      /*skip=*/10);

  Counter* trips = MetricsRegistry::Global().GetCounter("mdjoin_guard_trips_total");
  Counter* cancelled =
      MetricsRegistry::Global().GetCounter("mdjoin_guard_trips_cancelled_total");
  const int64_t trips_before = trips->value();
  const int64_t cancelled_before = cancelled->value();

  Tracing::Start();
  QueryProfile profile;
  Result<Table> result = ExplainAnalyze(plan, catalog, options, &profile);
  Tracing::Stop();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);

  // The profile is well-formed despite the failure.
  ASSERT_NE(profile.root, nullptr);
  EXPECT_FALSE(profile.complete);
  EXPECT_NE(profile.terminal, "ok");
  EXPECT_NE(profile.terminal.find("Cancelled"), std::string::npos);
  EXPECT_GE(profile.total_ms, 0);
  // Partial scan counts from the strides that ran before the trip.
  EXPECT_TRUE(profile.root->is_mdjoin);
  EXPECT_GT(profile.root->detail_rows_scanned, 0);
  EXPECT_LT(profile.root->detail_rows_scanned, sales.num_rows());
  // The base subtree completed before the join started scanning.
  ASSERT_EQ(profile.root->children.size(), 2u);
  EXPECT_GT(profile.root->children[0]->output_rows, 0);
  // Rendering still works and carries the terminal event.
  std::string text = profile.ToText();
  EXPECT_NE(text.find("terminal: "), std::string::npos);
  EXPECT_NE(text.find("Cancelled"), std::string::npos);
  std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"complete\": false"), std::string::npos);
  EXPECT_NE(json.find("Cancelled"), std::string::npos);

  // The trip surfaced as a trace instant and a counter increment.
  EXPECT_EQ(trips->value(), trips_before + 1);
  EXPECT_EQ(cancelled->value(), cancelled_before + 1);
  bool saw_trip = false;
  for (const TraceEvent& e : Tracing::Snapshot()) {
    if (std::string(e.name) == "guard_trip") saw_trip = true;
  }
  EXPECT_TRUE(saw_trip);
}

TEST_F(GuardrailTest, DeadlineExpires) {
  Table sales = testutil::RandomSales(47, 200);
  Table base = *GroupByBase(sales, {"cust"});

  QueryGuardOptions guard_options;
  guard_options.timeout_ms = 1;
  QueryGuard guard(guard_options);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  MdJoinOptions options;
  options.guard = &guard;
  Result<Table> result = MdJoin(base, sales, {Count("n")}, CustTheta(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status().ToString();
  EXPECT_NE(result.status().message().find("deadline"), std::string::npos);
}

TEST_F(GuardrailTest, MemoryBudgetDegradesToMultiPass) {
  Table sales = testutil::RandomSales(49, 600);
  Table base = *GroupByBase(sales, {"cust", "month"});
  ExprPtr theta =
      And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("month"), BCol("month")));
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};

  MdJoinStats unguarded_stats;
  Result<Table> unguarded = MdJoin(base, sales, aggs, theta, {}, &unguarded_stats);
  ASSERT_TRUE(unguarded.ok());
  ASSERT_EQ(unguarded_stats.passes_over_detail, 1);

  // Budget: full state footprint plus index room for ~1/3 of the base rows.
  const int64_t n = base.num_rows();
  const int64_t per_pass_rows = std::max<int64_t>(1, n / 3);
  QueryGuardOptions guard_options;
  guard_options.memory_budget_bytes =
      static_cast<int64_t>(aggs.size()) * n * kGuardBytesPerAggState +
      per_pass_rows * kGuardBytesPerIndexedBaseRow;
  QueryGuard guard(guard_options);
  MdJoinOptions options;
  options.guard = &guard;

  MdJoinStats stats;
  Result<Table> guarded = MdJoin(base, sales, aggs, theta, options, &stats);
  ASSERT_TRUE(guarded.ok()) << guarded.status().ToString();
  EXPECT_TRUE(stats.memory_degraded);
  EXPECT_LE(stats.base_rows_per_pass_effective, per_pass_rows);
  EXPECT_GT(stats.passes_over_detail, 1);
  // Theorem 4.1: the multi-pass evaluation is result-identical, it only
  // trades extra scans of R for the smaller per-pass index.
  EXPECT_TRUE(TablesEqualOrdered(*unguarded, *guarded));
  EXPECT_EQ(stats.detail_rows_scanned,
            stats.passes_over_detail * sales.num_rows());
}

TEST_F(GuardrailTest, MemoryHardLimitFails) {
  Table sales = testutil::RandomSales(51, 200);
  Table base = *GroupByBase(sales, {"cust"});

  QueryGuardOptions guard_options;
  guard_options.memory_hard_limit_bytes = 64;  // nothing fits
  QueryGuard guard(guard_options);
  MdJoinOptions options;
  options.guard = &guard;
  Result<Table> result = MdJoin(base, sales, {Count("n")}, CustTheta(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status().ToString();
  EXPECT_NE(result.status().message().find("hard limit"), std::string::npos);
}

TEST_F(GuardrailTest, DetailRowAndPairBudgets) {
  Table sales = testutil::RandomSales(53, 500);
  Table base = *GroupByBase(sales, {"cust"});

  {
    QueryGuardOptions guard_options;
    guard_options.max_detail_rows = 100;
    guard_options.check_stride = 32;
    QueryGuard guard(guard_options);
    MdJoinOptions options;
    options.guard = &guard;
    Result<Table> result = MdJoin(base, sales, {Count("n")}, CustTheta(), options);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsResourceExhausted());
    EXPECT_NE(result.status().message().find("detail-row budget"), std::string::npos);
  }
  {
    QueryGuardOptions guard_options;
    guard_options.max_candidate_pairs = 50;
    guard_options.check_stride = 32;
    QueryGuard guard(guard_options);
    MdJoinOptions options;
    options.guard = &guard;
    Result<Table> result = MdJoin(base, sales, {Count("n")}, CustTheta(), options);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsResourceExhausted());
    EXPECT_NE(result.status().message().find("candidate-pair budget"),
              std::string::npos);
  }
}

TEST_F(GuardrailTest, GuardedRunMatchesUnguardedAndAccountsWork) {
  Table sales = testutil::RandomSales(55, 400);
  Table base = *GroupByBase(sales, {"cust"});
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};

  Result<Table> unguarded = MdJoin(base, sales, aggs, CustTheta());
  ASSERT_TRUE(unguarded.ok());

  QueryGuard guard;  // no limits: pure observation
  MdJoinOptions options;
  options.guard = &guard;
  MdJoinStats stats;
  Result<Table> guarded = MdJoin(base, sales, aggs, CustTheta(), options, &stats);
  ASSERT_TRUE(guarded.ok());
  EXPECT_TRUE(TablesEqualOrdered(*unguarded, *guarded));
  // GuardTicket::Finish flushes the tail, so accounting is exact.
  EXPECT_EQ(guard.detail_rows_seen(), stats.detail_rows_scanned);
  EXPECT_EQ(guard.candidate_pairs_seen(), stats.candidate_pairs);
  EXPECT_GT(guard.bytes_high_water(), 0);
  EXPECT_EQ(guard.bytes_reserved(), 0);  // everything released
}

TEST_F(GuardrailTest, ParallelFragmentErrorFirstErrorWins) {
  Table sales = testutil::RandomSales(57, 400);
  Table base = *GroupByBase(sales, {"cust"});
  std::vector<AggSpec> aggs = {Count("n")};

  FailpointRegistry::Global()->Enable("parallel:fragment_error", /*count=*/1);
  Result<Table> result = ParallelMdJoin(base, sales, aggs, CustTheta(), 4, 2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("parallel:fragment_error"),
            std::string::npos);

  FailpointRegistry::Global()->Reset();
  FailpointRegistry::Global()->Enable("parallel:fragment_error", /*count=*/1);
  result = ParallelMdJoinDetailSplit(base, sales, aggs, CustTheta(), 4, 2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("parallel:fragment_error"),
            std::string::npos);
}

TEST_F(GuardrailTest, ParallelNullThetaSymmetry) {
  Table sales = testutil::SmallSales();
  Table base = *GroupByBase(sales, {"cust"});
  // Both entry points reject a null θ the same way (this was asymmetric).
  Result<Table> a = ParallelMdJoin(base, sales, {Count("n")}, nullptr, 2, 2);
  ASSERT_FALSE(a.ok());
  EXPECT_TRUE(a.status().IsInvalidArgument());
  Result<Table> b = ParallelMdJoinDetailSplit(base, sales, {Count("n")}, nullptr, 2, 2);
  ASSERT_FALSE(b.ok());
  EXPECT_TRUE(b.status().IsInvalidArgument());
}

TEST_F(GuardrailTest, ParallelStatsAggregateAcrossFragments) {
  Table sales = testutil::RandomSales(59, 400);
  Table base = *GroupByBase(sales, {"cust"});
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};

  MdJoinStats seq;
  ASSERT_TRUE(MdJoin(base, sales, aggs, CustTheta(), {}, &seq).ok());

  const int partitions = 4;
  ParallelMdJoinStats base_split;
  ASSERT_TRUE(ParallelMdJoin(base, sales, aggs, CustTheta(), partitions, 2, {},
                             &base_split)
                  .ok());
  // Theorem 4.1 split: every fragment scans all of R; base rows (and thus
  // candidate/matched pairs) partition across fragments.
  EXPECT_EQ(base_split.total_detail_rows_scanned, partitions * sales.num_rows());
  EXPECT_EQ(base_split.detail_rows_qualified, partitions * seq.detail_rows_qualified);
  EXPECT_EQ(base_split.candidate_pairs, seq.candidate_pairs);
  EXPECT_EQ(base_split.matched_pairs, seq.matched_pairs);
  // Morsel scheduling: with the default morsel size (1024 ≥ 400 rows) each
  // fragment is one morsel, all four dispatched. How the two workers split
  // them is a race, so the per-worker extremes only admit loose bounds —
  // pigeonhole guarantees the busiest worker at least half the total.
  EXPECT_EQ(base_split.morsels_executed, partitions);
  EXPECT_GE(base_split.steal_waits, 2);  // each worker's drain probe
  EXPECT_LE(base_split.min_worker_detail_rows, base_split.max_worker_detail_rows);
  EXPECT_GE(base_split.max_worker_detail_rows,
            (base_split.total_detail_rows_scanned + 1) / 2);
  EXPECT_LE(base_split.max_worker_detail_rows, base_split.total_detail_rows_scanned);

  ParallelMdJoinStats detail_split;
  ASSERT_TRUE(ParallelMdJoinDetailSplit(base, sales, aggs, CustTheta(), partitions, 2,
                                        {}, &detail_split)
                  .ok());
  // Detail split: R is scanned exactly once in total; every pair is tested
  // exactly once across workers.
  EXPECT_EQ(detail_split.total_detail_rows_scanned, sales.num_rows());
  EXPECT_EQ(detail_split.detail_rows_qualified, seq.detail_rows_qualified);
  EXPECT_EQ(detail_split.candidate_pairs, seq.candidate_pairs);
  EXPECT_EQ(detail_split.matched_pairs, seq.matched_pairs);
  // 400 detail rows fit in one default-size morsel, so exactly one worker
  // runs and scans everything.
  EXPECT_EQ(detail_split.morsels_executed, 1);
  EXPECT_EQ(detail_split.min_worker_detail_rows, sales.num_rows());
  EXPECT_EQ(detail_split.max_worker_detail_rows, sales.num_rows());
}

TEST_F(GuardrailTest, ExecutorObservesGuard) {
  Table sales = testutil::RandomSales(61, 300);
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", &sales).ok());
  Table base = *GroupByBase(sales, {"cust"});
  ASSERT_TRUE(catalog.Register("Base", &base).ok());
  PlanPtr plan = MdJoinPlan(TableRef("Base"), TableRef("Sales"),
                            {Count("n"), Sum(RCol("sale"), "total")}, CustTheta());

  {
    QueryGuard guard;
    guard.Cancel();
    MdJoinOptions options;
    options.guard = &guard;
    Result<Table> result = ExecutePlan(plan, catalog, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
  {
    FailpointRegistry::Global()->Enable("executor:node_error", /*count=*/1);
    Result<Table> result = ExecutePlan(plan, catalog);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("executor:node_error"),
              std::string::npos);
  }
  {
    // A hard limit smaller than the materialized detail table trips the
    // executor's per-node memory accounting.
    QueryGuardOptions guard_options;
    guard_options.memory_hard_limit_bytes = 1024;
    QueryGuard guard(guard_options);
    MdJoinOptions options;
    options.guard = &guard;
    Result<Table> result = ExecutePlan(plan, catalog, options);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status().ToString();
  }
}

TEST_F(GuardrailTest, IncrementalMaintenanceObservesGuard) {
  Table sales = testutil::RandomSales(63, 200);
  Table base = *GroupByBase(sales, {"cust"});
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};
  Result<Table> previous = MdJoin(base, sales, aggs, CustTheta());
  ASSERT_TRUE(previous.ok());
  Table delta = testutil::RandomSales(64, 50);

  QueryGuard guard;
  guard.Cancel();
  MdJoinOptions options;
  options.guard = &guard;
  Result<Table> result = MdJoinApplyDelta(*previous, delta, aggs, CustTheta(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(GuardrailTest, ReserveFailpointInjectsAllocationFailure) {
  Table sales = testutil::RandomSales(65, 200);
  Table base = *GroupByBase(sales, {"cust"});
  FailpointRegistry::Global()->Enable("query_guard:reserve", /*count=*/1);
  QueryGuard guard;
  MdJoinOptions options;
  options.guard = &guard;
  Result<Table> result = MdJoin(base, sales, {Count("n")}, CustTheta(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
  EXPECT_NE(result.status().message().find("query_guard:reserve"), std::string::npos);
  EXPECT_EQ(FailpointRegistry::Global()->fire_count("query_guard:reserve"), 1);
}

TEST_F(GuardrailTest, FailpointRegistrySpecAndCounts) {
  FailpointRegistry* registry = FailpointRegistry::Global();
  ASSERT_TRUE(registry->LoadSpec("a:x=2@1; b:y=-1,c:z=1").ok());
  // a:x skips one evaluation then fires twice.
  EXPECT_FALSE(registry->Evaluate("a:x"));
  EXPECT_TRUE(registry->Evaluate("a:x"));
  EXPECT_TRUE(registry->Evaluate("a:x"));
  EXPECT_FALSE(registry->Evaluate("a:x"));
  EXPECT_EQ(registry->fire_count("a:x"), 2);
  // b:y fires forever.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(registry->Evaluate("b:y"));
  // c:z fires once.
  EXPECT_TRUE(registry->Evaluate("c:z"));
  EXPECT_FALSE(registry->Evaluate("c:z"));
  // Unknown points never fire; malformed specs error.
  EXPECT_FALSE(registry->Evaluate("nope"));
  EXPECT_FALSE(registry->LoadSpec("missing-equals").ok());
  EXPECT_FALSE(registry->LoadSpec("p=abc").ok());
  registry->Reset();
  EXPECT_FALSE(registry->Evaluate("b:y"));
}

TEST_F(GuardrailTest, ThreadPoolCancelDrainsQueue) {
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> ran{0};

  // Occupy the single worker so the follow-up tasks stay queued.
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Cancel();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
  // Every queued-but-unstarted task was dropped.
  EXPECT_EQ(ran.load(), 0);
  // The pool remains usable after a Cancel round.
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace mdjoin
