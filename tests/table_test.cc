#include <gtest/gtest.h>

#include "table/csv.h"
#include "table/table.h"
#include "table/table_builder.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using testutil::ALL;
using testutil::F;
using testutil::I;
using testutil::NUL;
using testutil::S;

Table TwoColumn() {
  TableBuilder b({{"k", DataType::kInt64}, {"v", DataType::kString}});
  b.AppendRowOrDie({I(2), S("b")});
  b.AppendRowOrDie({I(1), S("a")});
  b.AppendRowOrDie({I(2), S("c")});
  b.AppendRowOrDie({I(3), S("a")});
  return std::move(b).Finish();
}

TEST(TableBuilderTest, TypeChecksCells) {
  TableBuilder b({{"k", DataType::kInt64}, {"v", DataType::kString}});
  EXPECT_TRUE(b.AppendRow({I(1), S("x")}).ok());
  EXPECT_TRUE(b.AppendRow({NUL(), ALL()}).ok());  // NULL/ALL fit any column
  EXPECT_TRUE(b.AppendRow({I(1), I(2)}).IsTypeError());
  EXPECT_TRUE(b.AppendRow({I(1)}).IsInvalidArgument());  // arity
}

TEST(TableBuilderTest, NumericColumnsInterchangeable) {
  TableBuilder b({{"x", DataType::kFloat64}});
  EXPECT_TRUE(b.AppendRow({I(3)}).ok());  // int literal into float column
  EXPECT_TRUE(b.AppendRow({F(3.5)}).ok());
}

TEST(TableTest, BasicAccessors) {
  Table t = TwoColumn();
  EXPECT_EQ(t.num_rows(), 4);
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_EQ(t.Get(0, 0).int64(), 2);
  EXPECT_EQ(t.Get(2, 1).string(), "c");
}

TEST(TableTest, CloneIsIndependent) {
  Table t = TwoColumn();
  Table c = t.Clone();
  c.Set(0, 0, I(99));
  EXPECT_EQ(t.Get(0, 0).int64(), 2);
  EXPECT_EQ(c.Get(0, 0).int64(), 99);
}

TEST(TableTest, GetRowKey) {
  Table t = TwoColumn();
  RowKey key = t.GetRowKey(1, {1, 0});
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key[0].string(), "a");
  EXPECT_EQ(key[1].int64(), 1);
}

TEST(TableTest, AddColumn) {
  Table t = TwoColumn();
  ASSERT_TRUE(t.AddColumn({"w", DataType::kInt64}, {I(1), I(2), I(3), I(4)}).ok());
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_EQ(t.Get(3, 2).int64(), 4);
  EXPECT_FALSE(t.AddColumn({"w", DataType::kInt64}, {}).ok());       // duplicate name
  EXPECT_FALSE(t.AddColumn({"z", DataType::kInt64}, {I(1)}).ok());   // wrong length
}

TEST(TableOpsTest, SortByKeyColumns) {
  Table t = TwoColumn();
  Table sorted = SortTable(t, {{0, true}, {1, false}});
  EXPECT_EQ(sorted.Get(0, 0).int64(), 1);
  EXPECT_EQ(sorted.Get(1, 0).int64(), 2);
  EXPECT_EQ(sorted.Get(1, 1).string(), "c");  // descending v within k=2
  EXPECT_EQ(sorted.Get(2, 1).string(), "b");
  EXPECT_EQ(sorted.Get(3, 0).int64(), 3);
}

TEST(TableOpsTest, SortPlacesNullAndAllFirst) {
  TableBuilder b({{"k", DataType::kInt64}});
  b.AppendRowOrDie({I(5)});
  b.AppendRowOrDie({ALL()});
  b.AppendRowOrDie({NUL()});
  Table sorted = SortTable(std::move(b).Finish(), {{0, true}});
  EXPECT_TRUE(sorted.Get(0, 0).is_null());
  EXPECT_TRUE(sorted.Get(1, 0).is_all());
  EXPECT_EQ(sorted.Get(2, 0).int64(), 5);
}

TEST(TableOpsTest, DistinctKeepsFirstOccurrence) {
  TableBuilder b({{"k", DataType::kInt64}});
  for (int64_t v : {3, 1, 3, 2, 1}) b.AppendRowOrDie({I(v)});
  Table d = Distinct(std::move(b).Finish());
  EXPECT_EQ(d.num_rows(), 3);
  EXPECT_EQ(d.Get(0, 0).int64(), 3);
  EXPECT_EQ(d.Get(1, 0).int64(), 1);
  EXPECT_EQ(d.Get(2, 0).int64(), 2);
}

TEST(TableOpsTest, DistinctTreatsAllAsOrdinaryValue) {
  TableBuilder b({{"k", DataType::kInt64}});
  b.AppendRowOrDie({ALL()});
  b.AppendRowOrDie({I(1)});
  b.AppendRowOrDie({ALL()});
  Table d = Distinct(std::move(b).Finish());
  EXPECT_EQ(d.num_rows(), 2);  // ALL deduplicates with ALL, not with 1
}

TEST(TableOpsTest, DistinctOnProjects) {
  Table t = TwoColumn();
  Result<Table> d = DistinctOn(t, {"v"});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_columns(), 1);
  EXPECT_EQ(d->num_rows(), 3);  // b, a, c
}

TEST(TableOpsTest, ConcatRequiresMatchingSchemas) {
  Table t = TwoColumn();
  Result<Table> both = Concat(t, TwoColumn());
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->num_rows(), 8);
  TableBuilder other({{"z", DataType::kInt64}});
  EXPECT_FALSE(Concat(t, std::move(other).Finish()).ok());
}

TEST(TableOpsTest, PartitionIntoNPreservesAllRows) {
  Table t = testutil::SmallSales();
  std::vector<Table> parts = PartitionIntoN(t, 5);
  ASSERT_EQ(parts.size(), 5u);
  int64_t total = 0;
  for (const Table& p : parts) total += p.num_rows();
  EXPECT_EQ(total, t.num_rows());
  Result<Table> rejoined = ConcatAll(parts);
  ASSERT_TRUE(rejoined.ok());
  EXPECT_TRUE(TablesEqualOrdered(t, *rejoined));  // order-preserving split
}

TEST(TableOpsTest, PartitionIntoMoreThanRows) {
  Table t = TwoColumn();
  std::vector<Table> parts = PartitionIntoN(t, 10);
  ASSERT_EQ(parts.size(), 10u);
  int64_t total = 0;
  for (const Table& p : parts) total += p.num_rows();
  EXPECT_EQ(total, 4);
}

TEST(TableOpsTest, PartitionByColumns) {
  Table t = TwoColumn();
  Result<std::vector<Table>> parts = PartitionByColumns(t, {"k"});
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 3u);  // k = 2, 1, 3
  int64_t total = 0;
  for (const Table& p : *parts) total += p.num_rows();
  EXPECT_EQ(total, 4);
}

TEST(TableOpsTest, UnorderedEqualityIgnoresRowOrder) {
  Table t = TwoColumn();
  Table shuffled = TakeRows(t, {3, 1, 0, 2});
  EXPECT_TRUE(TablesEqualUnordered(t, shuffled));
  EXPECT_FALSE(TablesEqualOrdered(t, shuffled));
}

TEST(TableOpsTest, UnorderedEqualityIsMultiset) {
  TableBuilder a({{"k", DataType::kInt64}});
  a.AppendRowOrDie({I(1)});
  a.AppendRowOrDie({I(1)});
  a.AppendRowOrDie({I(2)});
  TableBuilder b({{"k", DataType::kInt64}});
  b.AppendRowOrDie({I(1)});
  b.AppendRowOrDie({I(2)});
  b.AppendRowOrDie({I(2)});
  EXPECT_FALSE(TablesEqualUnordered(std::move(a).Finish(), std::move(b).Finish()));
}

TEST(TableOpsTest, RenameColumns) {
  Table t = TwoColumn();
  Result<Table> renamed = RenameColumns(t, {"k"}, {"key"});
  ASSERT_TRUE(renamed.ok());
  EXPECT_TRUE(renamed->schema().FindField("key").has_value());
  EXPECT_FALSE(renamed->schema().FindField("k").has_value());
}

TEST(TableOpsTest, PrefixColumns) {
  Table prefixed = PrefixColumns(TwoColumn(), "S.");
  EXPECT_EQ(prefixed.schema().field(0).name, "S.k");
  EXPECT_EQ(prefixed.schema().field(1).name, "S.v");
  EXPECT_EQ(prefixed.num_rows(), 4);
}

TEST(PrinterTest, RendersGridWithAllAndNull) {
  TableBuilder b({{"k", DataType::kInt64}, {"v", DataType::kString}});
  b.AppendRowOrDie({ALL(), NUL()});
  std::string s = std::move(b).Finish().ToString();
  EXPECT_NE(s.find("ALL"), std::string::npos);
  EXPECT_NE(s.find("NULL"), std::string::npos);
  EXPECT_NE(s.find("k |"), std::string::npos);  // header cell (right-aligned: numeric)
  EXPECT_NE(s.find("| v"), std::string::npos);  // header cell (left-aligned: string)
}

TEST(PrinterTest, TruncatesLongTables) {
  TableBuilder b({{"k", DataType::kInt64}});
  for (int i = 0; i < 100; ++i) b.AppendRowOrDie({I(i)});
  std::string s = std::move(b).Finish().ToString(/*max_rows=*/10);
  EXPECT_NE(s.find("(90 more rows)"), std::string::npos);
}

TEST(CsvTest, RoundTrip) {
  Table t = testutil::SmallSales();
  std::string csv = TableToCsv(t);
  Result<Table> back = TableFromCsv(csv, t.schema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(TablesEqualOrdered(t, *back));
}

TEST(CsvTest, NullAllAndQuoting) {
  TableBuilder b({{"k", DataType::kInt64}, {"v", DataType::kString}});
  b.AppendRowOrDie({NUL(), S("has,comma")});
  b.AppendRowOrDie({ALL(), S("has\"quote")});
  Table t = std::move(b).Finish();
  std::string csv = TableToCsv(t);
  Result<Table> back = TableFromCsv(csv, t.schema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->Get(0, 0).is_null());
  EXPECT_TRUE(back->Get(1, 0).is_all());
  EXPECT_EQ(back->Get(0, 1).string(), "has,comma");
  EXPECT_EQ(back->Get(1, 1).string(), "has\"quote");
}

TEST(CsvTest, RejectsBadHeaderAndCells) {
  Schema schema({{"k", DataType::kInt64}});
  EXPECT_TRUE(TableFromCsv("wrong\n1\n", schema).status().IsParseError());
  EXPECT_TRUE(TableFromCsv("k\nnotanumber\n", schema).status().IsParseError());
  EXPECT_TRUE(TableFromCsv("", schema).status().IsParseError());
}

TEST(CsvTest, FileRoundTrip) {
  Table t = TwoColumn();
  std::string path = ::testing::TempDir() + "/mdjoin_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  Result<Table> back = ReadCsvFile(path, t.schema());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(TablesEqualOrdered(t, *back));
}

}  // namespace
}  // namespace mdjoin
