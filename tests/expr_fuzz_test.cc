/// Randomized robustness sweep over the expression system: generated
/// expression trees must compile against matching schemas, evaluate without
/// crashing on any row (including NULL/ALL cells), produce values consistent
/// with the statically inferred type, and round-trip through the conjunct
/// analyzer without changing semantics.

#include <gtest/gtest.h>

#include <limits>

#include "analyze/range_analysis.h"
#include "common/random.h"
#include "expr/compile.h"
#include "expr/conjuncts.h"
#include "table/table_builder.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT

/// Schemas used by the generator: numeric and string columns on both sides.
Schema BaseSchema() {
  return Schema({{"b_int", DataType::kInt64},
                 {"b_flt", DataType::kFloat64},
                 {"b_str", DataType::kString}});
}
Schema DetailSchema() {
  return Schema({{"d_int", DataType::kInt64},
                 {"d_flt", DataType::kFloat64},
                 {"d_str", DataType::kString}});
}

/// Random table over `schema` with NULL/ALL sprinkled in.
Table RandomTable(const Schema& schema, Random* rng, int64_t rows) {
  TableBuilder b(schema);
  const char* strings[] = {"NY", "NJ", "CT", "zz"};
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    for (int c = 0; c < schema.num_fields(); ++c) {
      double dice = rng->NextDouble();
      if (dice < 0.08) {
        row.push_back(Value::Null());
      } else if (dice < 0.16) {
        row.push_back(Value::All());
      } else {
        switch (schema.field(c).type) {
          case DataType::kInt64:
            row.push_back(Value::Int64(rng->UniformInt(-5, 5)));
            break;
          case DataType::kFloat64:
            row.push_back(Value::Float64(static_cast<double>(rng->UniformInt(-50, 50)) / 4));
            break;
          case DataType::kString:
            row.push_back(Value::String(strings[rng->Uniform(4)]));
            break;
        }
      }
    }
    b.AppendRowOrDie(std::move(row));
  }
  return std::move(b).Finish();
}

/// Random expression of bounded depth over both sides.
ExprPtr RandomExpr(Random* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.3)) {
    // Leaf.
    switch (rng->Uniform(8)) {
      case 0:
        return BCol("b_int");
      case 1:
        return BCol("b_flt");
      case 2:
        return BCol("b_str");
      case 3:
        return RCol("d_int");
      case 4:
        return RCol("d_flt");
      case 5:
        return RCol("d_str");
      case 6:
        return Lit(rng->UniformInt(-5, 5));
      default:
        return Lit(static_cast<double>(rng->UniformInt(-20, 20)) / 4);
    }
  }
  switch (rng->Uniform(12)) {
    case 0:
      return Add(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 1:
      return Sub(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 2:
      return Mul(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 3:
      return Div(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 4:
      return Eq(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 5:
      return Lt(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 6:
      return Ge(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 7:
      return And(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 8:
      return Or(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 9:
      return Not(RandomExpr(rng, depth - 1));
    case 10:
      return IsNull(RandomExpr(rng, depth - 1));
    default:
      return In(RandomExpr(rng, depth - 1),
                {Value::Int64(rng->UniformInt(-3, 3)), Value::String("NY")});
  }
}

class ExprFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExprFuzz, CompileEvalTypeConsistency) {
  Random rng(GetParam());
  Schema base_schema = BaseSchema();
  Schema detail_schema = DetailSchema();
  Table base = RandomTable(base_schema, &rng, 12);
  Table detail = RandomTable(detail_schema, &rng, 12);

  for (int round = 0; round < 60; ++round) {
    ExprPtr expr = RandomExpr(&rng, 4);
    Result<CompiledExpr> compiled = CompileExpr(expr, &base_schema, &detail_schema);
    ASSERT_TRUE(compiled.ok()) << expr->ToString();
    RowCtx ctx;
    ctx.base = &base;
    ctx.detail = &detail;
    for (int64_t b = 0; b < base.num_rows(); ++b) {
      for (int64_t d = 0; d < detail.num_rows(); ++d) {
        ctx.base_row = b;
        ctx.detail_row = d;
        Value v = compiled->Eval(ctx);
        // The inferred static type must match the runtime payload type (up
        // to NULL, which any expression may produce, and numeric widening:
        // int64-typed expressions never produce float64, float64-typed ones
        // may produce either through int fast paths).
        if (v.is_null() || v.is_all()) continue;
        DataType rt = *v.Type();
        DataType st = compiled->result_type();
        bool consistent = rt == st || (st == DataType::kFloat64 && rt == DataType::kInt64);
        EXPECT_TRUE(consistent)
            << expr->ToString() << " static=" << DataTypeToString(st)
            << " runtime=" << DataTypeToString(rt) << " value=" << v.ToString();
      }
    }
  }
}

TEST_P(ExprFuzz, ConjunctAnalysisPreservesSemantics) {
  Random rng(GetParam() + 5000);
  Schema base_schema = BaseSchema();
  Schema detail_schema = DetailSchema();
  Table base = RandomTable(base_schema, &rng, 10);
  Table detail = RandomTable(detail_schema, &rng, 10);

  for (int round = 0; round < 40; ++round) {
    // Conjunctions of random predicates — the θ shape AnalyzeTheta sees.
    std::vector<ExprPtr> conjuncts;
    int n = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < n; ++i) {
      conjuncts.push_back(
          Eq(RandomExpr(&rng, 2), RandomExpr(&rng, 2)));
    }
    ExprPtr theta = CombineConjuncts(conjuncts);
    ExprPtr recombined = CombineTheta(AnalyzeTheta(theta));
    Result<CompiledExpr> a = CompileExpr(theta, &base_schema, &detail_schema);
    Result<CompiledExpr> b = CompileExpr(recombined, &base_schema, &detail_schema);
    ASSERT_TRUE(a.ok() && b.ok());
    RowCtx ctx;
    ctx.base = &base;
    ctx.detail = &detail;
    for (int64_t br = 0; br < base.num_rows(); ++br) {
      for (int64_t dr = 0; dr < detail.num_rows(); ++dr) {
        ctx.base_row = br;
        ctx.detail_row = dr;
        EXPECT_EQ(a->EvalBool(ctx), b->EvalBool(ctx))
            << theta->ToString() << " vs " << recombined->ToString();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// RangeAnalysis differential property (satellite of the verifier PR)
// ---------------------------------------------------------------------------

/// Random comparison literal, weighted toward the adversarial numeric
/// endpoints the interval domain must stay sound on.
Value RandomRangeLit(Random* rng) {
  switch (rng->Uniform(9)) {
    case 0:
      return Value::Int64(rng->UniformInt(-5, 5));
    case 1:
    case 2:
      return Value::Float64(static_cast<double>(rng->UniformInt(-50, 50)) / 4);
    case 3:
      return Value::Float64(std::numeric_limits<double>::quiet_NaN());
    case 4:
      return Value::Float64(std::numeric_limits<double>::infinity());
    case 5:
      return Value::Float64(-std::numeric_limits<double>::infinity());
    case 6:
      return Value::String(rng->Bernoulli(0.5) ? "NJ" : "zz");
    case 7:
      return Value::Null();
    default:
      return Value::All();
  }
}

ExprPtr RandomPlainColumn(Random* rng) {
  switch (rng->Uniform(6)) {
    case 0:
      return BCol("b_int");
    case 1:
      return BCol("b_flt");
    case 2:
      return BCol("b_str");
    case 3:
      return RCol("d_int");
    case 4:
      return RCol("d_flt");
    default:
      return RCol("d_str");
  }
}

/// Random conjunct in the shapes RangeAnalysis derives facts from — plus ORs
/// and column-vs-column forms to exercise the join and equi-transfer paths.
ExprPtr RandomRangePredicate(Random* rng, int depth) {
  if (depth > 0 && rng->Bernoulli(0.25)) {
    return Or(RandomRangePredicate(rng, depth - 1),
              RandomRangePredicate(rng, depth - 1));
  }
  ExprPtr col = RandomPlainColumn(rng);
  switch (rng->Uniform(9)) {
    case 0:
      return Lt(col, Lit(RandomRangeLit(rng)));
    case 1:
      return Le(col, Lit(RandomRangeLit(rng)));
    case 2:
      return Gt(col, Lit(RandomRangeLit(rng)));
    case 3:
      return Ge(col, Lit(RandomRangeLit(rng)));
    case 4:
      return Eq(col, Lit(RandomRangeLit(rng)));
    case 5:
      return In(col, {RandomRangeLit(rng), RandomRangeLit(rng)});
    case 6:
      return IsNull(col);
    case 7:
      return Not(IsNull(col));
    default:
      return Eq(RandomPlainColumn(rng), RandomPlainColumn(rng));
  }
}

/// Overwrites some float cells with NaN / ±inf: the payloads whose ordering
/// corner cases (NaN compares equal to everything) the domain's may_be_nan
/// flag exists for.
void SprinkleSpecialFloats(Table* t, Random* rng) {
  for (int c = 0; c < t->schema().num_fields(); ++c) {
    if (t->schema().field(c).type != DataType::kFloat64) continue;
    for (int64_t r = 0; r < t->num_rows(); ++r) {
      double dice = rng->NextDouble();
      if (dice < 0.12) {
        t->Set(r, c, Value::Float64(std::numeric_limits<double>::quiet_NaN()));
      } else if (dice < 0.18) {
        t->Set(r, c, Value::Float64((dice < 0.15 ? 1 : -1) *
                                    std::numeric_limits<double>::infinity()));
      }
    }
  }
}

TEST_P(ExprFuzz, RangeAnalysisIsSoundOverApproximation) {
  Random rng(GetParam() + 9000);
  Schema base_schema = BaseSchema();
  Schema detail_schema = DetailSchema();
  Table base = RandomTable(base_schema, &rng, 9);
  Table detail = RandomTable(detail_schema, &rng, 9);
  SprinkleSpecialFloats(&base, &rng);
  SprinkleSpecialFloats(&detail, &rng);

  for (int round = 0; round < 120; ++round) {
    std::vector<ExprPtr> conjuncts;
    int n = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < n; ++i) conjuncts.push_back(RandomRangePredicate(&rng, 1));
    ExprPtr theta = CombineConjuncts(conjuncts);

    RangeAnalysis analysis = AnalyzeRanges(theta);
    Result<CompiledExpr> compiled = CompileExpr(theta, &base_schema, &detail_schema);
    ASSERT_TRUE(compiled.ok()) << theta->ToString();

    RowCtx ctx;
    ctx.base = &base;
    ctx.detail = &detail;
    for (int64_t b = 0; b < base.num_rows(); ++b) {
      for (int64_t d = 0; d < detail.num_rows(); ++d) {
        ctx.base_row = b;
        ctx.detail_row = d;
        if (!compiled->EvalBool(ctx)) continue;
        // θ is truthy on this pair. An unsat verdict would be a refuted
        // proof; a fact rejecting the actual column value would be unsound.
        ASSERT_TRUE(analysis.satisfiable)
            << "unsat verdict refuted by a truthy pair: " << theta->ToString()
            << "\n" << analysis.ToString();
        for (const RangeFact& f : analysis.facts) {
          const bool is_base = f.side == Side::kBase;
          const Schema& s = is_base ? base_schema : detail_schema;
          Result<int> col = s.GetFieldIndex(f.column);
          ASSERT_TRUE(col.ok()) << f.ToString();
          const Value& v = (is_base ? base : detail).Get(is_base ? b : d, *col);
          EXPECT_TRUE(f.range.Admits(v))
              << "fact " << f.ToString() << " rejects actual value "
              << v.ToString() << " under truthy θ " << theta->ToString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprFuzz, ::testing::Values(101, 202, 303, 404),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mdjoin
