/// Observability-layer coverage: the metrics registry (instrument semantics,
/// exposition, kind safety), the trace buffers and Chrome JSON writer, the
/// near-zero disabled-path contract (no allocations, enforced with a global
/// operator-new hook), concurrent registry/buffer hammering (run under TSan
/// via the tsan test label), and EXPLAIN ANALYZE profile round-trips.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "obs/trace.h"
#include "optimizer/executor.h"
#include "optimizer/plan.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

// ---------------------------------------------------------------------------
// Global allocation hook: counts heap allocations while armed. The disabled
// tracing / metrics hot paths promise zero allocation; this makes the promise
// a test failure instead of a comment.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<int64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracing::Stop(); }
  void TearDown() override { Tracing::Stop(); }
};

// ---------------------------------------------------------------------------
// Metrics registry

TEST_F(ObsTest, CounterGaugeHistogramSemantics) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("obs_test_counter_total", "test counter");
  ASSERT_NE(c, nullptr);
  c->Reset();
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42);
  // Same name returns the same stable instrument.
  EXPECT_EQ(reg.GetCounter("obs_test_counter_total"), c);

  Gauge* g = reg.GetGauge("obs_test_gauge", "test gauge");
  ASSERT_NE(g, nullptr);
  g->Reset();
  g->Set(7);
  g->Add(3);
  EXPECT_EQ(g->value(), 10);
  g->UpdateMax(5);  // below current: no change
  EXPECT_EQ(g->value(), 10);
  g->UpdateMax(99);
  EXPECT_EQ(g->value(), 99);

  Histogram* h = reg.GetHistogram("obs_test_hist", {10, 100, 1000}, "test histogram");
  ASSERT_NE(h, nullptr);
  h->Reset();
  h->Observe(5);     // bucket le=10
  h->Observe(50);    // bucket le=100
  h->Observe(5000);  // overflow bucket
  EXPECT_EQ(h->total_count(), 3);
  EXPECT_EQ(h->sum(), 5055);
  EXPECT_EQ(h->bucket_count(0), 1);
  EXPECT_EQ(h->bucket_count(1), 1);
  EXPECT_EQ(h->bucket_count(2), 0);
  EXPECT_EQ(h->bucket_count(3), 1);  // overflow
}

TEST_F(ObsTest, KindMismatchReturnsNull) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  ASSERT_NE(reg.GetCounter("obs_test_kinded_total"), nullptr);
  EXPECT_EQ(reg.GetGauge("obs_test_kinded_total"), nullptr);
  EXPECT_EQ(reg.GetHistogram("obs_test_kinded_total", {1}), nullptr);
}

TEST_F(ObsTest, SnapshotAndExposition) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("obs_test_expo_total", "exposition counter");
  c->Reset();
  c->Increment(5);
  Histogram* h = reg.GetHistogram("obs_test_expo_hist", {10}, "exposition histogram");
  h->Reset();
  h->Observe(3);

  bool saw_counter = false;
  for (const MetricSample& s : reg.Snapshot()) {
    if (s.name == "obs_test_expo_total") {
      saw_counter = true;
      EXPECT_EQ(s.kind, MetricSample::Kind::kCounter);
      EXPECT_EQ(s.value, 5);
      EXPECT_EQ(s.help, "exposition counter");
    }
  }
  EXPECT_TRUE(saw_counter);

  std::string text = reg.RenderText();
  EXPECT_NE(text.find("# TYPE obs_test_expo_total counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_total 5"), std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_hist_bucket"), std::string::npos);

  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"obs_test_expo_total\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_expo_hist\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracing

TEST_F(ObsTest, SpansAndInstantsRoundTrip) {
  Tracing::Start();
  ASSERT_TRUE(Tracing::enabled());
  {
    Span outer("outer", "test");
    outer.SetArg("a", 1);
    outer.SetArg("b", 2);
    outer.SetArg("dropped", 3);  // only two args travel
    Span inner("inner", "test");
    TraceInstant("ping", "test", "x", 7);
  }
  Tracing::Stop();

  std::vector<TraceEvent> events = Tracing::Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Snapshot is sorted by start timestamp: outer, inner, ping — but inner
  // and ping may share a coarse clock tick, so assert membership instead.
  bool saw_outer = false, saw_inner = false, saw_ping = false;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "outer") {
      saw_outer = true;
      EXPECT_GE(e.dur_ns, 0);
      EXPECT_STREQ(e.arg1_name, "a");
      EXPECT_EQ(e.arg1, 1);
      EXPECT_STREQ(e.arg2_name, "b");
      EXPECT_EQ(e.arg2, 2);
    } else if (std::string(e.name) == "inner") {
      saw_inner = true;
      EXPECT_GE(e.dur_ns, 0);
    } else if (std::string(e.name) == "ping") {
      saw_ping = true;
      EXPECT_LT(e.dur_ns, 0);  // instant
      EXPECT_EQ(e.arg1, 7);
    }
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
  EXPECT_TRUE(saw_ping);

  // A restart clears the buffers.
  Tracing::Start();
  Tracing::Stop();
  EXPECT_EQ(Tracing::event_count(), 0);
}

TEST_F(ObsTest, ChromeTraceJsonShape) {
  Tracing::Start();
  Tracing::SetThreadName("obs test thread");
  {
    Span s("span_event", "test");
    s.SetArg("rows", 123);
  }
  TraceInstant("instant_event", "test");
  std::thread t([] {
    Tracing::SetThreadName("second thread");
    Span s("other_track", "test");
  });
  t.join();
  Tracing::Stop();

  std::vector<TraceEvent> events = Tracing::Snapshot();
  ASSERT_EQ(events.size(), 3u);
  std::set<int32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), 2u);  // distinct per-thread tracks

  std::string json = ChromeTraceWriter::ToJson(events);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("obs test thread"), std::string::npos);
  EXPECT_NE(json.find("second thread"), std::string::npos);
  EXPECT_NE(json.find("span_event"), std::string::npos);
  EXPECT_NE(json.find("\"rows\": 123"), std::string::npos);
}

TEST_F(ObsTest, DisabledTracingAllocatesNothing) {
  // Start+Stop clears buffers left over from earlier tests (Stop alone keeps
  // events available to Snapshot), so event_count below measures this test.
  Tracing::Start();
  Tracing::Stop();
  ASSERT_FALSE(Tracing::enabled());
  // Warm the metric instruments so the armed window sees only hot-path work.
  Counter* c = MetricsRegistry::Global().GetCounter("obs_test_hot_total");
  Histogram* h = MetricsRegistry::Global().GetHistogram("obs_test_hot_hist", {10, 100});

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    Span span("hot", "test");
    span.SetArg("i", i);
    TraceInstant("hot_instant", "test");
    c->Increment();
    h->Observe(i);
  }
  g_count_allocs.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0)
      << "disabled spans / metric increments must not allocate";
  EXPECT_EQ(Tracing::event_count(), 0);
}

// ---------------------------------------------------------------------------
// Concurrency (meaningful under the tsan test label)

TEST_F(ObsTest, ConcurrentRegistryAccess) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test_conc_total")->Reset();
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) {
        // Registration races with increments and with exposition.
        reg.GetCounter("obs_test_conc_total")->Increment();
        if (i % 512 == 0) reg.Snapshot();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("obs_test_conc_total")->value(), kThreads * kIters);
}

TEST_F(ObsTest, ConcurrentSpanBuffers) {
  Tracing::Start();
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      Tracing::SetThreadName("conc");
      for (int i = 0; i < kIters; ++i) {
        Span span("conc_span", "test");
        span.SetArg("i", i);
        if (i % 128 == 0) Tracing::Snapshot();  // reader races the writers
      }
    });
  }
  for (std::thread& t : threads) t.join();
  Tracing::Stop();
  EXPECT_EQ(Tracing::event_count(), kThreads * kIters);
  std::set<int32_t> tids;
  for (const TraceEvent& e : Tracing::Snapshot()) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE profiles

TEST_F(ObsTest, ExplainAnalyzeRecordsCountersAndJson) {
  Table sales = testutil::RandomSales(7, 500);
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", &sales).ok());
  PlanPtr base =
      DistinctPlan(ProjectPlan(TableRef("Sales"), {{Col("cust"), "cust"}}));
  PlanPtr plan = MdJoinPlan(base, TableRef("Sales"), {Count("n")},
                            Eq(RCol("cust"), BCol("cust")));

  QueryProfile profile;
  profile.rewrites.push_back(
      {"test rule", "MdJoin", true, 100.0, 80.0, "accepted: test"});
  Result<Table> result = ExplainAnalyze(plan, catalog, {}, &profile);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(profile.root, nullptr);
  EXPECT_TRUE(profile.complete);
  EXPECT_EQ(profile.terminal, "ok");
  EXPECT_GT(profile.total_ms, 0);
  EXPECT_TRUE(profile.root->is_mdjoin);
  EXPECT_EQ(profile.root->output_rows, result->num_rows());
  EXPECT_GT(profile.root->detail_rows_scanned, 0);
  EXPECT_GT(profile.root->agg_updates, 0);
  EXPECT_GE(profile.root->selectivity(), 0);
  // The pre-seeded rewrite log survives execution.
  ASSERT_EQ(profile.rewrites.size(), 1u);

  std::string text = profile.ToText();
  EXPECT_NE(text.find("MdJoin"), std::string::npos);
  EXPECT_NE(text.find("sel="), std::string::npos);
  EXPECT_NE(text.find("[applied] test rule"), std::string::npos);
  EXPECT_NE(text.find("terminal: ok"), std::string::npos);

  std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"terminal\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"complete\": true"), std::string::npos);
  EXPECT_NE(json.find("\"detail_rows_scanned\""), std::string::npos);
  EXPECT_NE(json.find("\"rewrites\": [{\"rule\": \"test rule\""), std::string::npos);
}

TEST_F(ObsTest, ExplainAnalyzeEmitsWorkerTracks) {
  Table sales = testutil::RandomSales(11, 4000);
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", &sales).ok());
  PlanPtr base =
      DistinctPlan(ProjectPlan(TableRef("Sales"), {{Col("cust"), "cust"}}));
  PlanPtr plan = MdJoinPlan(base, TableRef("Sales"), {Count("n")},
                            Eq(RCol("cust"), BCol("cust")));

  MdJoinOptions options;
  options.num_threads = 2;
  options.morsel_size = 256;
  QueryProfile profile;
  Tracing::Start();
  Result<Table> result = ExplainAnalyze(plan, catalog, options, &profile);
  Tracing::Stop();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(profile.root->morsels, 1);
  EXPECT_EQ(profile.root->num_threads, 2);

  bool saw_morsel = false, saw_steal = false;
  std::set<int32_t> morsel_tids;
  for (const TraceEvent& e : Tracing::Snapshot()) {
    if (std::string(e.name) == "morsel") {
      saw_morsel = true;
      morsel_tids.insert(e.tid);
    }
    if (std::string(e.name) == "steal_wait") saw_steal = true;
  }
  EXPECT_TRUE(saw_morsel);
  EXPECT_TRUE(saw_steal);
  EXPECT_GE(morsel_tids.size(), 1u);
}

}  // namespace
}  // namespace mdjoin
