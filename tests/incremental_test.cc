/// Tests for the two access/maintenance extensions: range extraction +
/// clustered-index detail access (access_path.h) and incremental MD-join
/// maintenance under appends (incremental.h).

#include <gtest/gtest.h>

#include "core/access_path.h"
#include "core/incremental.h"
#include "cube/base_tables.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using testutil::I;

TEST(AccessPathTest, ExtractsRangesFromDetailConjuncts) {
  ExprPtr theta = And(Eq(RCol("prod"), BCol("prod")), Ge(RCol("year"), Lit(1995)),
                      Le(RCol("year"), Lit(1997)));
  DetailKeyRange range = ExtractDetailKeyRange(theta, "year");
  ASSERT_TRUE(range.bounded());
  EXPECT_EQ(range.lo->int64(), 1995);
  EXPECT_EQ(range.hi->int64(), 1997);
}

TEST(AccessPathTest, IntersectsMultipleBoundsAndMirrors) {
  // 1994 <= year, year <= 1999, 1996 >= year (mirrored: year <= 1996),
  // year >= 1995: net [1995, 1996].
  ExprPtr theta = And(Le(Lit(1994), RCol("year")), Le(RCol("year"), Lit(1999)),
                      Ge(Lit(1996), RCol("year")), Ge(RCol("year"), Lit(1995)));
  DetailKeyRange range = ExtractDetailKeyRange(theta, "year");
  EXPECT_EQ(range.lo->int64(), 1995);
  EXPECT_EQ(range.hi->int64(), 1996);
}

TEST(AccessPathTest, EqualityAndIrrelevantConjuncts) {
  ExprPtr theta = And(Eq(RCol("year"), Lit(1999)), Eq(RCol("state"), Lit("NY")),
                      Gt(RCol("sale"), BCol("cust")));
  DetailKeyRange range = ExtractDetailKeyRange(theta, "year");
  EXPECT_EQ(range.lo->int64(), 1999);
  EXPECT_EQ(range.hi->int64(), 1999);
  // No predicate on the key at all: unbounded.
  EXPECT_FALSE(ExtractDetailKeyRange(Eq(RCol("prod"), BCol("prod")), "year").bounded());
  // Equi conjuncts with the base side do not constrain the scan.
  EXPECT_FALSE(ExtractDetailKeyRange(Eq(RCol("year"), BCol("year")), "year").bounded());
}

TEST(AccessPathTest, IndexedDetailMatchesFullScan) {
  Table sales = testutil::RandomSales(41, 400);
  Result<Table> base = GroupByBase(sales, {"prod"});
  Result<ClusteredIndex> index = ClusteredIndex::Build(sales, "year");
  ASSERT_TRUE(index.ok());
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total"), Count("n")};
  for (const ExprPtr& theta : {
           And(Eq(RCol("prod"), BCol("prod")), Ge(RCol("year"), Lit(1997))),
           And(Eq(RCol("prod"), BCol("prod")), Eq(RCol("year"), Lit(1999))),
           And(Eq(RCol("prod"), BCol("prod")), Gt(RCol("year"), Lit(1996)),
               Lt(RCol("year"), Lit(1999))),  // strict bounds widen, θ rechecks
           Eq(RCol("prod"), BCol("prod")),    // unbounded: full clustered scan
       }) {
    MdJoinStats indexed_stats;
    Result<Table> indexed =
        MdJoinIndexedDetail(*base, *index, aggs, theta, {}, &indexed_stats);
    Result<Table> full = MdJoin(*base, sales, aggs, theta);
    ASSERT_TRUE(indexed.ok() && full.ok()) << theta->ToString();
    EXPECT_TRUE(TablesEqualOrdered(*indexed, *full)) << theta->ToString();
  }
}

TEST(AccessPathTest, IndexedDetailScansOnlyTheRange) {
  Table sales = testutil::RandomSales(42, 600);
  Result<Table> base = GroupByBase(sales, {"prod"});
  Result<ClusteredIndex> index = ClusteredIndex::Build(sales, "year");
  ExprPtr theta = And(Eq(RCol("prod"), BCol("prod")), Eq(RCol("year"), Lit(1999)));
  MdJoinStats stats;
  Result<Table> out = MdJoinIndexedDetail(*base, *index, {Count("n")}, theta, {},
                                          &stats);
  ASSERT_TRUE(out.ok());
  int64_t year_rows = index->PointScan(I(1999)).num_rows();
  EXPECT_EQ(stats.detail_rows_scanned, year_rows);
  EXPECT_LT(year_rows, sales.num_rows());
}

TEST(AccessPathTest, ContradictoryRangeYieldsIdentityAggregates) {
  Table sales = testutil::RandomSales(43, 100);
  Result<Table> base = GroupByBase(sales, {"prod"});
  Result<ClusteredIndex> index = ClusteredIndex::Build(sales, "year");
  ExprPtr theta = And(Eq(RCol("prod"), BCol("prod")), Ge(RCol("year"), Lit(2005)),
                      Le(RCol("year"), Lit(2000)));
  Result<Table> out = MdJoinIndexedDetail(*base, *index, {Count("n")}, theta);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), base->num_rows());
  for (int64_t r = 0; r < out->num_rows(); ++r) {
    EXPECT_EQ(out->Get(r, 1).int64(), 0);
  }
}

TEST(IncrementalTest, DeltaEqualsRecomputation) {
  Table all = testutil::RandomSales(51, 500);
  // Split into an initial load and three appended batches.
  std::vector<Table> batches = PartitionIntoN(all, 4);
  ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("month"), BCol("month")));
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total"),
                               Min(RCol("sale"), "lo"), Max(RCol("sale"), "hi")};
  // The base is fixed up front (all cust/month pairs of the full data) —
  // base values are decoupled from the data, so this is natural here.
  Result<Table> base = GroupByBase(all, {"cust", "month"});
  Result<Table> materialized = MdJoin(*base, batches[0], aggs, theta);
  ASSERT_TRUE(materialized.ok());
  Table current = std::move(*materialized);
  Table loaded = batches[0].Clone();
  for (size_t i = 1; i < batches.size(); ++i) {
    MdJoinStats stats;
    Result<Table> updated =
        MdJoinApplyDelta(current, batches[i], aggs, theta, {}, &stats);
    ASSERT_TRUE(updated.ok()) << updated.status().ToString();
    // Only the delta was scanned.
    EXPECT_EQ(stats.detail_rows_scanned, batches[i].num_rows());
    current = std::move(*updated);
    Result<Table> both = Concat(loaded, batches[i]);
    loaded = std::move(*both);
    Result<Table> recomputed = MdJoin(*base, loaded, aggs, theta);
    ASSERT_TRUE(recomputed.ok());
    EXPECT_TRUE(TablesEqualOrdered(current, *recomputed)) << "batch " << i;
  }
}

TEST(IncrementalTest, CubeMaintenance) {
  // Maintaining a full data cube under appends — the materialized-view case.
  Table all = testutil::RandomSales(53, 300);
  std::vector<Table> halves = PartitionIntoN(all, 2);
  std::vector<std::string> dims = {"prod", "month"};
  ExprPtr theta = And(Eq(BCol("prod"), RCol("prod")), Eq(BCol("month"), RCol("month")));
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total"), Count("n")};
  Result<Table> base = CubeByBase(all, dims);
  Result<Table> cube0 = MdJoin(*base, halves[0], aggs, theta);
  Result<Table> cube1 = MdJoinApplyDelta(*cube0, halves[1], aggs, theta);
  Result<Table> full = MdJoin(*base, all, aggs, theta);
  ASSERT_TRUE(cube1.ok() && full.ok());
  EXPECT_TRUE(TablesEqualOrdered(*cube1, *full));
}

TEST(IncrementalTest, EmptyDeltaIsIdentity) {
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};
  ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  Result<Table> current = MdJoin(*base, sales, aggs, theta);
  Table empty{testutil::SalesSchema()};
  Result<Table> updated = MdJoinApplyDelta(*current, empty, aggs, theta);
  ASSERT_TRUE(updated.ok());
  EXPECT_TRUE(TablesEqualOrdered(*current, *updated));
}

TEST(IncrementalTest, Preconditions) {
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  Result<Table> current = MdJoin(*base, sales, {Avg(RCol("sale"), "a")}, theta);
  // avg is algebraic, not distributive: refuse.
  EXPECT_FALSE(MdJoinApplyDelta(*current, sales, {Avg(RCol("sale"), "a")}, theta).ok());
  // Mismatched aggregate names against the previous schema.
  Result<Table> counted = MdJoin(*base, sales, {Count("n")}, theta);
  EXPECT_FALSE(MdJoinApplyDelta(*counted, sales, {Count("m")}, theta).ok());
}

}  // namespace
}  // namespace mdjoin
