#include <gtest/gtest.h>

#include "agg/agg_spec.h"
#include "agg/aggregate.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using testutil::F;
using testutil::I;

/// Runs `fn` over `values` and finalizes.
Value RunAgg(const std::string& name, const std::vector<Value>& values) {
  const AggregateFunction* fn = *AggregateRegistry::Global()->Lookup(name);
  std::unique_ptr<AggregateState> state = fn->MakeState();
  for (const Value& v : values) fn->Update(state.get(), v);
  return fn->Finalize(*state);
}

/// Splits `values` at every position, merging the two partial states, and
/// checks the merged result equals the single-pass result.
void CheckMergeConsistent(const std::string& name, const std::vector<Value>& values) {
  const AggregateFunction* fn = *AggregateRegistry::Global()->Lookup(name);
  Value expected = RunAgg(name, values);
  for (size_t split = 0; split <= values.size(); ++split) {
    std::unique_ptr<AggregateState> a = fn->MakeState();
    std::unique_ptr<AggregateState> b = fn->MakeState();
    for (size_t i = 0; i < split; ++i) fn->Update(a.get(), values[i]);
    for (size_t i = split; i < values.size(); ++i) fn->Update(b.get(), values[i]);
    fn->Merge(a.get(), *b);
    Value merged = fn->Finalize(*a);
    EXPECT_TRUE(merged.Equals(expected) || (merged.is_null() && expected.is_null()))
        << name << " split at " << split << ": " << merged.ToString() << " vs "
        << expected.ToString();
  }
}

TEST(AggTest, RegistryLookup) {
  EXPECT_TRUE(AggregateRegistry::Global()->Lookup("sum").ok());
  EXPECT_TRUE(AggregateRegistry::Global()->Lookup("SUM").ok());  // case-insensitive
  EXPECT_TRUE(AggregateRegistry::Global()->Lookup("nope").status().IsNotFound());
}

TEST(AggTest, CountSkipsNull) {
  EXPECT_EQ(RunAgg("count", {I(1), Value::Null(), I(3)}).int64(), 2);
  EXPECT_EQ(RunAgg("count", {}).int64(), 0);  // identity: 0, not NULL
}

TEST(AggTest, SumIntStaysInt) {
  Value v = RunAgg("sum", {I(1), I(2), I(3)});
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.int64(), 6);
}

TEST(AggTest, SumPromotesOnFloat) {
  Value v = RunAgg("sum", {I(1), F(2.5)});
  EXPECT_TRUE(v.is_float64());
  EXPECT_DOUBLE_EQ(v.float64(), 3.5);
}

TEST(AggTest, SumOfEmptyIsNull) {
  EXPECT_TRUE(RunAgg("sum", {}).is_null());
  EXPECT_TRUE(RunAgg("sum", {Value::Null()}).is_null());
}

TEST(AggTest, MinMax) {
  EXPECT_EQ(RunAgg("min", {I(3), I(1), I(2)}).int64(), 1);
  EXPECT_EQ(RunAgg("max", {I(3), I(1), I(2)}).int64(), 3);
  EXPECT_EQ(RunAgg("min", {Value::String("NY"), Value::String("CT")}).string(), "CT");
  EXPECT_TRUE(RunAgg("min", {}).is_null());
}

TEST(AggTest, Avg) {
  Value v = RunAgg("avg", {I(1), I(2), I(3), Value::Null()});
  EXPECT_DOUBLE_EQ(v.float64(), 2.0);
  EXPECT_TRUE(RunAgg("avg", {}).is_null());
}

TEST(AggTest, VarAndStddev) {
  // Population variance of {2, 4, 4, 4, 5, 5, 7, 9} is 4.
  std::vector<Value> vals;
  for (int64_t x : {2, 4, 4, 4, 5, 5, 7, 9}) vals.push_back(I(x));
  EXPECT_DOUBLE_EQ(RunAgg("var_pop", vals).float64(), 4.0);
  EXPECT_DOUBLE_EQ(RunAgg("stddev_pop", vals).float64(), 2.0);
}

TEST(AggTest, CountDistinct) {
  EXPECT_EQ(RunAgg("count_distinct", {I(1), I(1), I(2), Value::Null(), I(2)}).int64(), 2);
}

TEST(AggTest, MergeConsistency) {
  std::vector<Value> values = {I(5), I(1), Value::Null(), I(3), F(2.5), I(1)};
  for (const char* name :
       {"count", "sum", "min", "max", "avg", "var_pop", "stddev_pop", "count_distinct"}) {
    CheckMergeConsistent(name, values);
  }
}

TEST(AggTest, Classification) {
  auto cls = [](const char* n) {
    return (*AggregateRegistry::Global()->Lookup(n))->agg_class();
  };
  EXPECT_EQ(cls("count"), AggClass::kDistributive);
  EXPECT_EQ(cls("sum"), AggClass::kDistributive);
  EXPECT_EQ(cls("min"), AggClass::kDistributive);
  EXPECT_EQ(cls("max"), AggClass::kDistributive);
  EXPECT_EQ(cls("avg"), AggClass::kAlgebraic);
  EXPECT_EQ(cls("var_pop"), AggClass::kAlgebraic);
  EXPECT_EQ(cls("count_distinct"), AggClass::kHolistic);
}

TEST(AggTest, RollupNames) {
  auto rollup = [](const char* n) {
    return (*AggregateRegistry::Global()->Lookup(n))->RollupFunctionName();
  };
  EXPECT_EQ(rollup("count"), "sum");  // "a count in l becomes a sum in l'"
  EXPECT_EQ(rollup("sum"), "sum");
  EXPECT_EQ(rollup("min"), "min");
  EXPECT_EQ(rollup("max"), "max");
  EXPECT_EQ(rollup("avg"), "");  // algebraic: no roll-up rewrite
}

TEST(AggTest, RollupSpecRewrite) {
  Result<AggSpec> r = RollupSpec(Count("n"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->function, "sum");
  EXPECT_EQ(r->output_name, "n");
  ASSERT_NE(r->argument, nullptr);
  EXPECT_EQ(r->argument->ToString(), "R.n");
  EXPECT_TRUE(RollupSpec(Avg(RCol("sale"), "a")).status().IsInvalidArgument());
}

TEST(AggTest, AllDistributiveCheck) {
  EXPECT_TRUE(*AllDistributive({Count("n"), Sum(RCol("sale"), "s")}));
  EXPECT_FALSE(*AllDistributive({Count("n"), Avg(RCol("sale"), "a")}));
}

TEST(AggTest, BindAggsValidates) {
  Schema detail({{"sale", DataType::kFloat64}, {"state", DataType::kString}});
  // OK case.
  Result<std::vector<BoundAgg>> ok = BindAggs({Sum(RCol("sale"), "total"), Count("n")},
                                              /*base_schema=*/nullptr, &detail);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ((*ok)[0].output_field.type, DataType::kFloat64);
  EXPECT_EQ((*ok)[1].output_field.type, DataType::kInt64);
  // Duplicate output names.
  EXPECT_FALSE(BindAggs({Count("n"), Count("n")}, nullptr, &detail).ok());
  // sum of a string column is a type error.
  EXPECT_TRUE(
      BindAggs({Sum(RCol("state"), "s")}, nullptr, &detail).status().IsTypeError());
  // sum needs an argument.
  EXPECT_FALSE(BindAggs({AggSpec{"sum", nullptr, "s"}}, nullptr, &detail).ok());
  // Unknown column in the argument.
  EXPECT_FALSE(BindAggs({Sum(RCol("nope"), "s")}, nullptr, &detail).ok());
  // Output name colliding with a base column.
  Schema base({{"total", DataType::kInt64}});
  EXPECT_FALSE(BindAggs({Sum(RCol("sale"), "total")}, &base, &detail).ok());
}

TEST(AggTest, UserDefinedAggregateRegisters) {
  // A tiny UDAF: product of values (distributive, rollup = itself).
  struct ProductState : AggregateState {
    double product = 1;
    bool any = false;
  };
  class ProductFunction : public AggregateFunction {
   public:
    const std::string& name() const override {
      static const std::string kName = "test_product";
      return kName;
    }
    AggClass agg_class() const override { return AggClass::kDistributive; }
    Result<DataType> ResultType(std::optional<DataType>) const override {
      return DataType::kFloat64;
    }
    std::unique_ptr<AggregateState> MakeState() const override {
      return std::make_unique<ProductState>();
    }
    void Update(AggregateState* state, const Value& v) const override {
      if (!v.is_numeric()) return;
      auto* s = static_cast<ProductState*>(state);
      s->product *= v.AsDouble();
      s->any = true;
    }
    void Merge(AggregateState* state, const AggregateState& other) const override {
      auto* s = static_cast<ProductState*>(state);
      const auto& o = static_cast<const ProductState&>(other);
      s->product *= o.product;
      s->any = s->any || o.any;
    }
    Value Finalize(const AggregateState& state) const override {
      const auto& s = static_cast<const ProductState&>(state);
      return s.any ? Value::Float64(s.product) : Value::Null();
    }
    std::string RollupFunctionName() const override { return "test_product"; }
  };

  static bool registered = [] {
    return AggregateRegistry::Global()->Register(std::make_unique<ProductFunction>()).ok();
  }();
  ASSERT_TRUE(registered);
  EXPECT_DOUBLE_EQ(RunAgg("test_product", {I(2), I(3), I(4)}).float64(), 24.0);
  // Double registration is rejected.
  EXPECT_FALSE(
      AggregateRegistry::Global()->Register(std::make_unique<ProductFunction>()).ok());
}

}  // namespace
}  // namespace mdjoin
