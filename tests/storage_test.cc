// Tests for the out-of-core storage layer (src/storage/): block-file
// round-trips across every encoding and payload class, footer zone maps and
// the ZoneCouldMatch pruning test, the fixed-budget BlockCache (LRU, pins,
// singleflight, external-charge refusal), the storage failpoints
// (storage:block_read / storage:block_corrupt / storage:spill_write), and a
// differential fuzz arm proving zone-map pruning never drops a θ-matching
// row. The out-of-core MD-join driver itself is covered by
// out_of_core_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/query_guard.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "storage/block_cache.h"
#include "storage/block_format.h"
#include "storage/out_of_core.h"
#include "storage/paged_table.h"
#include "storage/spill.h"
#include "table/table_builder.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using testutil::ALL;
using testutil::F;
using testutil::I;
using testutil::NUL;
using testutil::S;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Unique temp path for one test, removed on scope exit.
class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(std::filesystem::temp_directory_path().string() +
              "/mdjoin_storage_test_" + tag + "_" +
              std::to_string(reinterpret_cast<uintptr_t>(this))) {}
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Bit-exact cell comparison: same variant, and doubles compared by bit
/// pattern so NaN payloads and -0.0 vs 0.0 count as differences.
bool BitEq(const Value& a, const Value& b) {
  if (a.is_null()) return b.is_null();
  if (a.is_all()) return b.is_all();
  if (a.is_int64()) return b.is_int64() && a.int64() == b.int64();
  if (a.is_float64()) {
    if (!b.is_float64()) return false;
    uint64_t ba, bb;
    const double da = a.float64(), db = b.float64();
    std::memcpy(&ba, &da, sizeof(ba));
    std::memcpy(&bb, &db, sizeof(bb));
    return ba == bb;
  }
  return b.is_string() && a.string() == b.string();
}

bool TablesBitIdentical(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      if (!BitEq(a.Get(r, c), b.Get(r, c))) return false;
    }
  }
  return true;
}

/// Round-trips `table` through a block file and asserts bit identity.
void RoundTrip(const Table& table, int64_t block_size_rows,
               const std::string& tag) {
  TempFile file(tag);
  BlockFileOptions options;
  options.block_size_rows = block_size_rows;
  ASSERT_TRUE(WriteBlockFile(table, file.path(), options).ok());
  Result<std::unique_ptr<PagedTable>> paged = PagedTable::Open(file.path());
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  EXPECT_EQ((*paged)->num_rows(), table.num_rows());
  Result<Table> read = (*paged)->ReadAll(nullptr);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(TablesBitIdentical(table, *read));
}

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Global()->Reset(); }
  void TearDown() override { FailpointRegistry::Global()->Reset(); }
};

// ---------------------------------------------------------------------------
// Block-file round-trips

TEST_F(StorageTest, RoundTripSmallSales) {
  RoundTrip(testutil::SmallSales(), 5, "small_sales");
}

TEST_F(StorageTest, RoundTripEveryPayloadClass) {
  // One column mixing every Value variant, including bit-pattern landmines:
  // NaN, ±inf, -0.0, the empty string, and embedded NULs. Built with
  // AppendRowUnchecked: decoded blocks are plain Value columns, so the codec
  // must round-trip cells whose class differs from the declared column type.
  Table t(Schema({{"v", DataType::kFloat64}}));
  t.AppendRowUnchecked({NUL()});
  t.AppendRowUnchecked({ALL()});
  t.AppendRowUnchecked({I(-42)});
  t.AppendRowUnchecked({F(kNaN)});
  t.AppendRowUnchecked({F(kInf)});
  t.AppendRowUnchecked({F(-kInf)});
  t.AppendRowUnchecked({F(-0.0)});
  t.AppendRowUnchecked({F(0.0)});
  t.AppendRowUnchecked({S("")});
  t.AppendRowUnchecked({S(std::string("a\0b", 3))});
  RoundTrip(t, 3, "payload_classes");
}

TEST_F(StorageTest, RoundTripEmptyTable) {
  RoundTrip(Table(testutil::SalesSchema()), 4, "empty");
}

TEST_F(StorageTest, RoundTripSingleRow) {
  TableBuilder b({{"x", DataType::kInt64}, {"s", DataType::kString}});
  b.AppendRowOrDie({I(7), S("one")});
  RoundTrip(std::move(b).Finish(), 4096, "single_row");
}

TEST_F(StorageTest, RoundTripLastBlockShort) {
  // 10 rows at 4 per block: the last block holds 2 rows.
  Table sales = testutil::RandomSales(7, 10);
  TempFile file("short_tail");
  BlockFileOptions options;
  options.block_size_rows = 4;
  ASSERT_TRUE(WriteBlockFile(sales, file.path(), options).ok());
  Result<std::unique_ptr<PagedTable>> paged = PagedTable::Open(file.path());
  ASSERT_TRUE(paged.ok());
  EXPECT_EQ((*paged)->num_blocks(), 3);
  EXPECT_EQ((*paged)->block_meta(2).num_rows, 2);
  Result<BlockPin> tail = (*paged)->Fault(2, nullptr);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->table().num_rows(), 2);
  EXPECT_TRUE(BitEq(tail->table().Get(1, 0), sales.Get(9, 0)));
}

TEST_F(StorageTest, WriterPicksExpectedEncodings) {
  // Column layout engineered per encoding: a pure-int64 column (kForInt), a
  // low-cardinality string column (kDict), a long-runs float column (kRle —
  // float so the all-int64 kForInt rule does not preempt it), and a
  // high-entropy mixed column (kPlain).
  Table t(Schema({{"ints", DataType::kInt64},
                  {"dict", DataType::kString},
                  {"runs", DataType::kFloat64},
                  {"mix", DataType::kFloat64}}));
  for (int64_t i = 0; i < 64; ++i) {
    t.AppendRowUnchecked(
        {I(1000000 + i * 3), S(i % 2 == 0 ? "NY" : "CA"),
         F(i < 32 ? 1.5 : 2.5),
         i % 3 == 0 ? F(0.5 * static_cast<double>(i))
                    : S("s" + std::to_string(i))});
  }
  TempFile file("encodings");
  BlockFileOptions options;
  options.block_size_rows = 64;
  ASSERT_TRUE(WriteBlockFile(t, file.path(), options).ok());
  Result<std::unique_ptr<BlockFile>> f = BlockFile::Open(file.path());
  ASSERT_TRUE(f.ok());
  const BlockMeta& meta = (*f)->block_meta(0);
  ASSERT_EQ(meta.encodings.size(), 4u);
  EXPECT_EQ(meta.encodings[0], static_cast<uint8_t>(BlockEncoding::kForInt));
  EXPECT_EQ(meta.encodings[1], static_cast<uint8_t>(BlockEncoding::kDict));
  EXPECT_EQ(meta.encodings[2], static_cast<uint8_t>(BlockEncoding::kRle));
  EXPECT_EQ(meta.encodings[3], static_cast<uint8_t>(BlockEncoding::kPlain));
  Result<Table> read = (*f)->ReadBlock(0);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(TablesBitIdentical(t, *read));
}

TEST_F(StorageTest, ZoneMapsSummarizeEachBlock) {
  Table t(Schema({{"x", DataType::kFloat64}}));
  // Block 0: numerics 1..4. Block 1: NULL, ALL, NaN, string.
  for (int i = 1; i <= 4; ++i) t.AppendRowUnchecked({F(i)});
  t.AppendRowUnchecked({NUL()});
  t.AppendRowUnchecked({ALL()});
  t.AppendRowUnchecked({F(kNaN)});
  t.AppendRowUnchecked({S("zebra")});
  TempFile file("zones");
  BlockFileOptions options;
  options.block_size_rows = 4;
  ASSERT_TRUE(WriteBlockFile(t, file.path(), options).ok());
  Result<std::unique_ptr<BlockFile>> f = BlockFile::Open(file.path());
  ASSERT_TRUE(f.ok());
  const ColumnZoneMap& z0 = (*f)->block_meta(0).zones[0];
  EXPECT_DOUBLE_EQ(z0.num_min, 1.0);
  EXPECT_DOUBLE_EQ(z0.num_max, 4.0);
  EXPECT_EQ(z0.numeric_count, 4);
  EXPECT_EQ(z0.null_count + z0.all_count + z0.nan_count + z0.string_count, 0);
  const ColumnZoneMap& z1 = (*f)->block_meta(1).zones[0];
  EXPECT_EQ(z1.numeric_count, 0);
  EXPECT_EQ(z1.null_count, 1);
  EXPECT_EQ(z1.all_count, 1);
  EXPECT_EQ(z1.nan_count, 1);
  EXPECT_EQ(z1.string_count, 1);
  EXPECT_EQ(z1.str_min, "zebra");
  EXPECT_EQ(z1.str_max, "zebra");
}

TEST_F(StorageTest, OpenRejectsGarbage) {
  TempFile file("garbage");
  {
    std::ofstream out(file.path(), std::ios::binary);
    out << "this is not a block file";
  }
  EXPECT_FALSE(BlockFile::Open(file.path()).ok());
  EXPECT_FALSE(BlockFile::Open(file.path() + ".does_not_exist").ok());
}

// ---------------------------------------------------------------------------
// Failpoints: mid-scan I/O errors surface as clean Status

TEST_F(StorageTest, BlockReadFailpointSurfacesCleanStatus) {
  Table sales = testutil::SmallSales();
  TempFile file("read_fp");
  BlockFileOptions options;
  options.block_size_rows = 4;
  ASSERT_TRUE(WriteBlockFile(sales, file.path(), options).ok());
  Result<std::unique_ptr<BlockFile>> f = BlockFile::Open(file.path());
  ASSERT_TRUE(f.ok());
  FailpointRegistry::Global()->Enable("storage:block_read", /*count=*/1);
  Result<Table> read = (*f)->ReadBlock(0);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInternal);
  // The failpoint consumed its budget: the retry decodes fine.
  Result<Table> retry = (*f)->ReadBlock(0);
  EXPECT_TRUE(retry.ok());
}

TEST_F(StorageTest, ChecksumCorruptionDetected) {
  Table sales = testutil::SmallSales();
  TempFile file("corrupt_fp");
  ASSERT_TRUE(WriteBlockFile(sales, file.path(), {}).ok());
  Result<std::unique_ptr<BlockFile>> f = BlockFile::Open(file.path());
  ASSERT_TRUE(f.ok());
  FailpointRegistry::Global()->Enable("storage:block_corrupt", /*count=*/1);
  Result<Table> read = (*f)->ReadBlock(0);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInternal);
  EXPECT_NE(read.status().ToString().find("checksum"), std::string::npos);
}

TEST_F(StorageTest, MidScanReadErrorFailsQueryWithoutLeaks) {
  // A paged MD-join whose second block read fails must return the I/O error
  // (no partial result) and leave zero bytes pinned in the cache and zero
  // bytes reserved on the guard.
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  ASSERT_TRUE(base.ok());
  TempFile file("scan_fp");
  BlockFileOptions foptions;
  foptions.block_size_rows = 3;
  ASSERT_TRUE(WriteBlockFile(sales, file.path(), foptions).ok());
  Result<std::unique_ptr<PagedTable>> paged = PagedTable::Open(file.path());
  ASSERT_TRUE(paged.ok());

  BlockCache cache(BlockCache::Options{});
  QueryGuardOptions goptions;
  goptions.memory_hard_limit_bytes = 1 << 30;
  QueryGuard guard(goptions);
  MdJoinOptions md;
  md.guard = &guard;
  md.block_cache = &cache;
  FailpointRegistry::Global()->Enable("storage:block_read", /*count=*/1,
                                      /*skip=*/1);
  Result<Table> out = PagedMdJoin(*base, **paged, {Count("n")},
                                  Eq(RCol("cust"), BCol("cust")), md);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInternal);
  EXPECT_EQ(guard.bytes_reserved(), 0);
  // Everything the failed query faulted is unpinned: fully evictable.
  cache.EvictBytes(std::numeric_limits<int64_t>::max());
  EXPECT_EQ(cache.resident_bytes(), 0);
  FailpointRegistry::Global()->Reset();
  Result<Table> ok = PagedMdJoin(*base, **paged, {Count("n")},
                                 Eq(RCol("cust"), BCol("cust")), md);
  EXPECT_TRUE(ok.ok());
}

TEST_F(StorageTest, SpillWriteFailpointSurfacesCleanStatus) {
  QueryGuard guard(QueryGuardOptions{});
  TempFile file("spill_fp");
  Result<std::unique_ptr<SpillWriter>> writer =
      SpillWriter::Create(file.path(), 7, &guard);
  ASSERT_TRUE(writer.ok());
  Table sales = testutil::SmallSales();
  FailpointRegistry::Global()->Enable("storage:spill_write", /*count=*/1);
  Status status = Status::OK();
  for (int64_t r = 0; r < sales.num_rows() && status.ok(); ++r) {
    status = (*writer)->AppendRow(sales, r);
  }
  if (status.ok()) status = (*writer)->Finish();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  writer->reset();  // destroying the writer releases its buffer reservation
  EXPECT_EQ(guard.bytes_reserved(), 0);
}

TEST_F(StorageTest, SpillJoinCleansUpFilesOnWriteError) {
  Table sales = testutil::RandomSales(11, 300);
  Result<Table> base = GroupByBase(sales, {"cust"});
  ASSERT_TRUE(base.ok());
  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/mdjoin_spill_fp_test";
  std::filesystem::create_directories(dir);
  MdJoinOptions md;
  md.spill_dir = dir;
  md.spill_partitions = 4;
  FailpointRegistry::Global()->Enable("storage:spill_write", /*count=*/1);
  MdJoinStats stats;
  Result<Table> out = SpillMdJoin(*base, sales, {Count("n")},
                                  Eq(RCol("cust"), BCol("cust")), md, &stats);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInternal);
  // The janitor removed every partition file despite the error.
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// ---------------------------------------------------------------------------
// BlockCache

Result<Table> MakeBlock(int64_t tag) {
  TableBuilder b({{"x", DataType::kInt64}});
  b.AppendRowOrDie({I(tag)});
  return std::move(b).Finish();
}

TEST_F(StorageTest, CacheHitsServeResidentBlocks) {
  BlockCache::Options options;
  options.capacity_bytes = 1 << 20;
  BlockCache cache(options);
  const uint64_t id = BlockCache::NewFileId();
  int loads = 0;
  auto loader = [&]() {
    ++loads;
    return MakeBlock(1);
  };
  bool hit = true;
  Result<BlockPin> a = cache.GetOrLoad(id, 0, 100, loader, &hit);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(hit);
  a->Release();
  Result<BlockPin> b = cache.GetOrLoad(id, 0, 100, loader, &hit);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST_F(StorageTest, CacheEvictsLruWithinBudget) {
  BlockCache::Options options;
  options.capacity_bytes = 250;  // room for two 100-byte blocks
  BlockCache cache(options);
  const uint64_t id = BlockCache::NewFileId();
  for (int block = 0; block < 3; ++block) {
    Result<BlockPin> pin =
        cache.GetOrLoad(id, block, 100, [&] { return MakeBlock(block); });
    ASSERT_TRUE(pin.ok());
  }
  EXPECT_LE(cache.resident_bytes(), 250);
  EXPECT_GE(cache.stats().evictions, 1);
  // Block 0 was the coldest: reloading it is a miss, the hottest is a hit.
  bool hit = false;
  Result<BlockPin> back =
      cache.GetOrLoad(id, 2, 100, [&] { return MakeBlock(2); }, &hit);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(hit);
  Result<BlockPin> cold =
      cache.GetOrLoad(id, 0, 100, [&] { return MakeBlock(0); }, &hit);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(hit);
}

TEST_F(StorageTest, PinnedBlocksAreNotEvictable) {
  BlockCache::Options options;
  options.capacity_bytes = 150;
  BlockCache cache(options);
  const uint64_t id = BlockCache::NewFileId();
  Result<BlockPin> pinned =
      cache.GetOrLoad(id, 0, 100, [&] { return MakeBlock(0); });
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(cache.EvictBytes(1000), 0);  // the only entry is pinned
  EXPECT_EQ(cache.resident_bytes(), 100);
  pinned->Release();
  EXPECT_EQ(cache.EvictBytes(1000), 100);
  EXPECT_EQ(cache.resident_bytes(), 0);
}

TEST_F(StorageTest, ChargeRefusalFallsBackToEphemeralPin) {
  // The external pool refuses everything: blocks must still be served, as
  // ephemeral pins that never enter the cache.
  BlockCache::Options options;
  options.capacity_bytes = 1 << 20;
  options.charge = [](int64_t) { return false; };
  options.release = [](int64_t) {};
  BlockCache cache(options);
  const uint64_t id = BlockCache::NewFileId();
  bool hit = true;
  Result<BlockPin> pin =
      cache.GetOrLoad(id, 0, 100, [&] { return MakeBlock(42); }, &hit);
  ASSERT_TRUE(pin.ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(pin->table().Get(0, 0).int64(), 42);
  EXPECT_EQ(cache.resident_bytes(), 0);
  EXPECT_EQ(cache.stats().ephemeral_loads, 1);
  // Not resident: the next lookup is another miss.
  Result<BlockPin> again =
      cache.GetOrLoad(id, 0, 100, [&] { return MakeBlock(42); }, &hit);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(hit);
}

TEST_F(StorageTest, ExternalChargesBalanceOnDestruction) {
  std::atomic<int64_t> pool{0};
  {
    BlockCache::Options options;
    options.capacity_bytes = 250;
    options.charge = [&](int64_t bytes) {
      pool.fetch_add(bytes);
      return true;
    };
    options.release = [&](int64_t bytes) { pool.fetch_sub(bytes); };
    BlockCache cache(options);
    const uint64_t id = BlockCache::NewFileId();
    for (int block = 0; block < 4; ++block) {
      Result<BlockPin> pin =
          cache.GetOrLoad(id, block, 100, [&] { return MakeBlock(block); });
      ASSERT_TRUE(pin.ok());
    }
    EXPECT_EQ(pool.load(), cache.resident_bytes());
  }
  EXPECT_EQ(pool.load(), 0);  // destructor released every charge
}

TEST_F(StorageTest, SingleflightRunsOneLoaderAcrossThreads) {
  BlockCache::Options options;
  options.capacity_bytes = 1 << 20;
  BlockCache cache(options);
  const uint64_t id = BlockCache::NewFileId();
  std::atomic<int> loads{0};
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      Result<BlockPin> pin = cache.GetOrLoad(id, 0, 100, [&] {
        loads.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return MakeBlock(7);
      });
      if (!pin.ok() || pin->table().Get(0, 0).int64() != 7) failures.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(loads.load(), 1);
}

TEST_F(StorageTest, FailedLoadWakesWaitersAndRetries) {
  BlockCache::Options options;
  BlockCache cache(options);
  const uint64_t id = BlockCache::NewFileId();
  std::atomic<int> attempts{0};
  auto flaky = [&]() -> Result<Table> {
    if (attempts.fetch_add(1) == 0) return Status::Internal("injected");
    return MakeBlock(9);
  };
  Result<BlockPin> first = cache.GetOrLoad(id, 0, 100, flaky);
  EXPECT_FALSE(first.ok());
  Result<BlockPin> second = cache.GetOrLoad(id, 0, 100, flaky);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->table().Get(0, 0).int64(), 9);
}

// ---------------------------------------------------------------------------
// Zone-map pruning: CouldMatch / CouldMatchString / ZoneCouldMatch

ZoneMapPredicate NumericWindow(double lo, double hi, bool lo_open = false,
                               bool hi_open = false) {
  ZoneMapPredicate pred;
  pred.column = "x";
  pred.num_lo = lo;
  pred.num_hi = hi;
  pred.num_lo_open = lo_open;
  pred.num_hi_open = hi_open;
  pred.allow_null = false;
  pred.allow_nan = false;
  pred.allow_all = false;
  pred.allow_string = false;
  pred.allow_non_numeric = false;
  return pred;
}

TEST_F(StorageTest, CouldMatchOpenVersusClosedEndpoints) {
  // Block spans exactly [5, 5]: x >= 5 admits it, x > 5 refutes it.
  EXPECT_TRUE(NumericWindow(5, kInf).CouldMatch(5, 5, false));
  EXPECT_FALSE(NumericWindow(5, kInf, /*lo_open=*/true).CouldMatch(5, 5, false));
  EXPECT_TRUE(NumericWindow(-kInf, 5).CouldMatch(5, 5, false));
  EXPECT_FALSE(NumericWindow(-kInf, 5, false, /*hi_open=*/true)
                   .CouldMatch(5, 5, false));
  // Disjoint windows refute; touching closed windows admit.
  EXPECT_FALSE(NumericWindow(6, 10).CouldMatch(1, 5, false));
  EXPECT_TRUE(NumericWindow(5, 10).CouldMatch(1, 5, false));
}

TEST_F(StorageTest, CouldMatchInfiniteEndpoints) {
  // A block holding +inf values satisfies x > 1e308's upper-unbounded window.
  EXPECT_TRUE(NumericWindow(1e308, kInf, /*lo_open=*/true)
                  .CouldMatch(kInf, kInf, false));
  // x < -1e308 against a block of -inf.
  EXPECT_TRUE(NumericWindow(-kInf, -1e308, false, /*hi_open=*/true)
                  .CouldMatch(-kInf, -kInf, false));
  // Unbounded predicate admits any numeric block.
  EXPECT_TRUE(NumericWindow(-kInf, kInf).CouldMatch(-kInf, kInf, false));
}

TEST_F(StorageTest, NullsOnlyMatterWhenPredicateAllowsThem) {
  ZoneMapPredicate pred = NumericWindow(10, 20);
  // Numeric window disjoint, but the block stores NULLs…
  EXPECT_FALSE(pred.CouldMatch(1, 5, /*block_has_null=*/true));
  pred.allow_null = true;
  EXPECT_TRUE(pred.CouldMatch(1, 5, /*block_has_null=*/true));
}

ColumnZoneMap NumericZone(double lo, double hi, int64_t n = 4) {
  ColumnZoneMap zone;
  zone.num_min = lo;
  zone.num_max = hi;
  zone.numeric_count = n;
  return zone;
}

TEST_F(StorageTest, ZoneCouldMatchNaNOnlyColumn) {
  // A NaN-only block has no numeric window at all; only a NaN-admitting
  // predicate keeps it.
  ColumnZoneMap zone;
  zone.nan_count = 4;
  ZoneMapPredicate pred = NumericWindow(-kInf, kInf);
  EXPECT_FALSE(ZoneCouldMatch(pred, zone));
  pred.allow_nan = true;
  EXPECT_TRUE(ZoneCouldMatch(pred, zone));
}

TEST_F(StorageTest, ZoneCouldMatchAllNullBlock) {
  ColumnZoneMap zone;
  zone.null_count = 4;
  ZoneMapPredicate pred = NumericWindow(-kInf, kInf);
  EXPECT_FALSE(ZoneCouldMatch(pred, zone));
  pred.allow_null = true;
  EXPECT_TRUE(ZoneCouldMatch(pred, zone));
}

TEST_F(StorageTest, ZoneCouldMatchAllMarkerBlock) {
  ColumnZoneMap zone;
  zone.all_count = 1;
  ZoneMapPredicate pred = NumericWindow(10, 20);
  EXPECT_FALSE(ZoneCouldMatch(pred, zone));
  pred.allow_all = true;
  pred.allow_non_numeric = true;
  EXPECT_TRUE(ZoneCouldMatch(pred, zone));
}

TEST_F(StorageTest, ZoneCouldMatchStringWindow) {
  // Dictionary-coded string range: the zone carries [str_min, str_max].
  ColumnZoneMap zone;
  zone.string_count = 8;
  zone.str_min = "CA";
  zone.str_max = "NJ";
  ZoneMapPredicate pred;
  pred.column = "state";
  pred.allow_null = false;
  pred.allow_nan = false;
  pred.allow_all = false;
  pred.allow_string = true;
  pred.allow_non_numeric = true;
  pred.str_lo = "NY";
  pred.str_hi = "NY";
  // 'NY' > 'NJ': the equality window misses the zone.
  EXPECT_FALSE(ZoneCouldMatch(pred, zone));
  EXPECT_FALSE(pred.CouldMatchString("CA", "NJ"));
  zone.str_max = "NY";
  EXPECT_TRUE(ZoneCouldMatch(pred, zone));
  EXPECT_TRUE(pred.CouldMatchString("CA", "NY"));
  // Open upper endpoint: state < "CA" refutes a CA..NY zone.
  ZoneMapPredicate below;
  below.column = "state";
  below.allow_null = false;
  below.allow_all = false;
  below.str_hi = "CA";
  below.str_hi_open = true;
  EXPECT_FALSE(below.CouldMatchString("CA", "NY"));
  below.str_hi_open = false;
  EXPECT_TRUE(below.CouldMatchString("CA", "NY"));
}

TEST_F(StorageTest, ZoneCouldMatchMixedBlockUsesEveryClass) {
  // A block mixing numerics outside the window with strings inside it must
  // be kept (the string side may match), and vice versa.
  ColumnZoneMap zone = NumericZone(100, 200);
  zone.string_count = 2;
  zone.str_min = "AA";
  zone.str_max = "ZZ";
  ZoneMapPredicate pred = NumericWindow(1, 5);
  pred.allow_string = true;
  pred.allow_non_numeric = true;
  EXPECT_TRUE(ZoneCouldMatch(pred, zone));  // strings could match
  pred.allow_string = false;
  pred.allow_non_numeric = false;
  EXPECT_FALSE(ZoneCouldMatch(pred, zone));  // now only the numeric window counts
  pred.num_lo = 150;
  pred.num_hi = kInf;
  EXPECT_TRUE(ZoneCouldMatch(pred, zone));
}

// ---------------------------------------------------------------------------
// Differential fuzz: pruned blocks contain zero θ-matching rows

TEST_F(StorageTest, FuzzPrunedBlocksHoldNoMatchingRows) {
  // For random tables × a family of range-bearing θs: every block the planner
  // prunes must contain zero rows matching θ against *any* base row — checked
  // by running the reference MD-join over just that block.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Table sales = testutil::RandomSales(seed, 200);
    Result<Table> base = GroupByBase(sales, {"cust"});
    ASSERT_TRUE(base.ok());
    TempFile file("fuzz_" + std::to_string(seed));
    BlockFileOptions options;
    options.block_size_rows = 16;
    ASSERT_TRUE(WriteBlockFile(sales, file.path(), options).ok());
    Result<std::unique_ptr<PagedTable>> paged = PagedTable::Open(file.path());
    ASSERT_TRUE(paged.ok());

    Random rng(seed * 77);
    std::vector<ExprPtr> thetas = {
        And(Eq(RCol("cust"), BCol("cust")),
            Gt(RCol("sale"), Lit(static_cast<double>(rng.UniformInt(1, 500))))),
        And(Eq(RCol("cust"), BCol("cust")),
            Eq(RCol("state"), Lit(rng.Uniform(2) == 0 ? "NY" : "IL"))),
        And(Eq(RCol("cust"), BCol("cust")),
            And(Ge(RCol("month"), Lit(rng.UniformInt(1, 4))),
                Le(RCol("sale"), Lit(static_cast<double>(rng.UniformInt(1, 300)))))),
        And(Eq(RCol("cust"), BCol("cust")),
            Lt(RCol("year"), Lit(1996))),  // unsatisfiable on this data
    };
    for (size_t ti = 0; ti < thetas.size(); ++ti) {
      const ExprPtr& theta = thetas[ti];
      std::vector<bool> keep = PlanBlockPruning(**paged, theta);
      ASSERT_EQ(keep.size(), static_cast<size_t>((*paged)->num_blocks()));
      for (size_t b = 0; b < keep.size(); ++b) {
        if (keep[b]) continue;
        Result<BlockPin> pin = (*paged)->Fault(static_cast<int>(b), nullptr);
        ASSERT_TRUE(pin.ok());
        Result<Table> counts = MdJoin(*base, pin->table(), {Count("n")}, theta);
        ASSERT_TRUE(counts.ok()) << counts.status().ToString();
        for (int64_t r = 0; r < counts->num_rows(); ++r) {
          ASSERT_EQ(counts->Get(r, counts->num_columns() - 1).int64(), 0)
              << "seed " << seed << " theta " << ti << ": pruned block " << b
              << " holds a matching row";
        }
      }
    }
  }
}

}  // namespace
}  // namespace mdjoin
