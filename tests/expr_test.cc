#include <gtest/gtest.h>

#include "expr/compile.h"
#include "expr/conjuncts.h"
#include "expr/expr.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using testutil::ALL;
using testutil::F;
using testutil::I;
using testutil::NUL;
using testutil::S;

/// Evaluates `e` against one base row and one detail row.
Value EvalPair(const ExprPtr& e, const Table& base, int64_t brow, const Table& detail,
               int64_t drow) {
  Result<CompiledExpr> c = CompileExpr(e, &base.schema(), &detail.schema());
  EXPECT_TRUE(c.ok()) << c.status().ToString();
  RowCtx ctx{&base, brow, &detail, drow};
  return c->Eval(ctx);
}

Value EvalSingle(const ExprPtr& e, const Table& t, int64_t row) {
  Result<CompiledExpr> c = CompileExpr(e, t.schema());
  EXPECT_TRUE(c.ok()) << c.status().ToString();
  RowCtx ctx;
  ctx.detail = &t;
  ctx.detail_row = row;
  return c->Eval(ctx);
}

Table OneRow(std::vector<Field> fields, std::vector<Value> values) {
  TableBuilder b{Schema(std::move(fields))};
  b.AppendRowOrDie(std::move(values));
  return std::move(b).Finish();
}

TEST(ExprTest, LiteralsAndArithmetic) {
  Table t = OneRow({{"x", DataType::kInt64}}, {I(10)});
  EXPECT_EQ(EvalSingle(Add(Col("x"), Lit(5)), t, 0).int64(), 15);
  EXPECT_EQ(EvalSingle(Sub(Col("x"), Lit(3)), t, 0).int64(), 7);
  EXPECT_EQ(EvalSingle(Mul(Col("x"), Lit(2)), t, 0).int64(), 20);
  EXPECT_DOUBLE_EQ(EvalSingle(Div(Col("x"), Lit(4)), t, 0).float64(), 2.5);
  EXPECT_EQ(EvalSingle(Mod(Col("x"), Lit(3)), t, 0).int64(), 1);
  EXPECT_EQ(EvalSingle(Neg(Col("x")), t, 0).int64(), -10);
}

TEST(ExprTest, IntFloatPromotion) {
  Table t = OneRow({{"x", DataType::kFloat64}}, {F(1.5)});
  Value v = EvalSingle(Add(Col("x"), Lit(1)), t, 0);
  EXPECT_TRUE(v.is_float64());
  EXPECT_DOUBLE_EQ(v.float64(), 2.5);
}

TEST(ExprTest, DivisionByZeroIsNull) {
  Table t = OneRow({{"x", DataType::kInt64}}, {I(10)});
  EXPECT_TRUE(EvalSingle(Div(Col("x"), Lit(0)), t, 0).is_null());
  EXPECT_TRUE(EvalSingle(Mod(Col("x"), Lit(0)), t, 0).is_null());
}

TEST(ExprTest, NullPropagatesThroughArithmetic) {
  Table t = OneRow({{"x", DataType::kInt64}}, {NUL()});
  EXPECT_TRUE(EvalSingle(Add(Col("x"), Lit(1)), t, 0).is_null());
  EXPECT_TRUE(EvalSingle(Neg(Col("x")), t, 0).is_null());
}

TEST(ExprTest, Comparisons) {
  Table t = OneRow({{"x", DataType::kInt64}, {"s", DataType::kString}}, {I(5), S("NY")});
  EXPECT_TRUE(EvalSingle(Eq(Col("x"), Lit(5)), t, 0).IsTruthy());
  EXPECT_FALSE(EvalSingle(Eq(Col("x"), Lit(6)), t, 0).IsTruthy());
  EXPECT_TRUE(EvalSingle(Ne(Col("x"), Lit(6)), t, 0).IsTruthy());
  EXPECT_TRUE(EvalSingle(Lt(Col("x"), Lit(6)), t, 0).IsTruthy());
  EXPECT_TRUE(EvalSingle(Le(Col("x"), Lit(5)), t, 0).IsTruthy());
  EXPECT_TRUE(EvalSingle(Gt(Col("x"), Lit(4)), t, 0).IsTruthy());
  EXPECT_TRUE(EvalSingle(Ge(Col("x"), Lit(5)), t, 0).IsTruthy());
  EXPECT_TRUE(EvalSingle(Eq(Col("s"), Lit("NY")), t, 0).IsTruthy());
  EXPECT_TRUE(EvalSingle(Lt(Col("s"), Lit("NZ")), t, 0).IsTruthy());
}

TEST(ExprTest, ComparisonWithNullIsFalse) {
  Table t = OneRow({{"x", DataType::kInt64}}, {NUL()});
  EXPECT_FALSE(EvalSingle(Eq(Col("x"), Lit(1)), t, 0).IsTruthy());
  EXPECT_FALSE(EvalSingle(Ne(Col("x"), Lit(1)), t, 0).IsTruthy());
  EXPECT_FALSE(EvalSingle(Lt(Col("x"), Lit(1)), t, 0).IsTruthy());
  EXPECT_TRUE(EvalSingle(IsNull(Col("x")), t, 0).IsTruthy());
}

TEST(ExprTest, AllIsEqualityWildcard) {
  // The load-bearing cube semantics: B.state = R.state is true when the base
  // row's state is ALL.
  Table base = OneRow({{"state", DataType::kString}}, {ALL()});
  Table detail = OneRow({{"state", DataType::kString}}, {S("CA")});
  ExprPtr eq = Eq(BCol("state"), RCol("state"));
  EXPECT_TRUE(EvalPair(eq, base, 0, detail, 0).IsTruthy());
  // But ordered comparisons with ALL are false.
  EXPECT_FALSE(EvalPair(Lt(BCol("state"), RCol("state")), base, 0, detail, 0).IsTruthy());
  EXPECT_FALSE(EvalPair(Ge(BCol("state"), RCol("state")), base, 0, detail, 0).IsTruthy());
}

TEST(ExprTest, MixedTypeOrderedComparisonIsFalse) {
  Table t = OneRow({{"x", DataType::kInt64}, {"s", DataType::kString}}, {I(5), S("NY")});
  EXPECT_FALSE(EvalSingle(Lt(Col("x"), Col("s")), t, 0).IsTruthy());
  EXPECT_FALSE(EvalSingle(Eq(Col("x"), Col("s")), t, 0).IsTruthy());
}

TEST(ExprTest, BooleanConnectives) {
  Table t = OneRow({{"x", DataType::kInt64}}, {I(5)});
  EXPECT_TRUE(EvalSingle(And(Gt(Col("x"), Lit(1)), Lt(Col("x"), Lit(9))), t, 0).IsTruthy());
  EXPECT_FALSE(
      EvalSingle(And(Gt(Col("x"), Lit(1)), Lt(Col("x"), Lit(2))), t, 0).IsTruthy());
  EXPECT_TRUE(EvalSingle(Or(Lt(Col("x"), Lit(2)), Gt(Col("x"), Lit(2))), t, 0).IsTruthy());
  EXPECT_TRUE(EvalSingle(Not(Eq(Col("x"), Lit(9))), t, 0).IsTruthy());
  // Variadic And.
  EXPECT_TRUE(EvalSingle(And(True(), True(), Gt(Col("x"), Lit(0))), t, 0).IsTruthy());
}

TEST(ExprTest, BetweenAndIn) {
  Table t = OneRow({{"x", DataType::kInt64}}, {I(5)});
  EXPECT_TRUE(EvalSingle(Between(Col("x"), Lit(5), Lit(7)), t, 0).IsTruthy());
  EXPECT_FALSE(EvalSingle(Between(Col("x"), Lit(6), Lit(7)), t, 0).IsTruthy());
  EXPECT_TRUE(
      EvalSingle(In(Col("x"), {Value::Int64(1), Value::Int64(5)}), t, 0).IsTruthy());
  EXPECT_FALSE(EvalSingle(In(Col("x"), {Value::Int64(1)}), t, 0).IsTruthy());
}

TEST(ExprTest, CaseExpression) {
  Table t = OneRow({{"x", DataType::kInt64}}, {I(5)});
  // First matching arm wins.
  ExprPtr e = CaseWhen({{Lt(Col("x"), Lit(3)), Lit("small")},
                        {Lt(Col("x"), Lit(10)), Lit("medium")}},
                       Lit("large"));
  EXPECT_EQ(EvalSingle(e, t, 0).string(), "medium");
  // No match, with ELSE.
  ExprPtr e2 = CaseWhen({{Gt(Col("x"), Lit(100)), Lit(1)}}, Lit(0));
  EXPECT_EQ(EvalSingle(e2, t, 0).int64(), 0);
  // No match, no ELSE: NULL.
  ExprPtr e3 = CaseWhen({{Gt(Col("x"), Lit(100)), Lit(1)}}, nullptr);
  EXPECT_TRUE(EvalSingle(e3, t, 0).is_null());
}

TEST(ExprTest, CaseConditionalAggregationIdiom) {
  // sum(case when state='NY' then sale end): the SQL pivot idiom.
  Table t = OneRow({{"state", DataType::kString}, {"sale", DataType::kFloat64}},
                   {S("NY"), F(10)});
  ExprPtr pick_ny = CaseWhen({{Eq(Col("state"), Lit("NY")), Col("sale")}}, nullptr);
  EXPECT_DOUBLE_EQ(EvalSingle(pick_ny, t, 0).float64(), 10.0);
  Table nj = OneRow({{"state", DataType::kString}, {"sale", DataType::kFloat64}},
                    {S("NJ"), F(10)});
  EXPECT_TRUE(EvalSingle(pick_ny, nj, 0).is_null());  // skipped by SUM
}

TEST(ExprTest, CaseTypeInference) {
  Table t = OneRow({{"x", DataType::kInt64}}, {I(1)});
  Result<CompiledExpr> numeric = CompileExpr(
      CaseWhen({{True(), Lit(1)}}, Lit(2.5)), t.schema());
  ASSERT_TRUE(numeric.ok());
  EXPECT_EQ(numeric->result_type(), DataType::kFloat64);  // mixed int/float
  // Mixing string and numeric arms is rejected at compile time.
  EXPECT_TRUE(CompileExpr(CaseWhen({{True(), Lit("a")}}, Lit(1)), t.schema())
                  .status()
                  .IsTypeError());
}

TEST(ExprTest, CaseStructuralHelpers) {
  ExprPtr e = CaseWhen({{Eq(BCol("state"), Lit("NY")), RCol("sale")}}, BCol("backup"));
  EXPECT_TRUE(e->ReferencesSide(Side::kBase));
  EXPECT_TRUE(e->ReferencesSide(Side::kDetail));
  EXPECT_EQ(e->ReferencedColumns(Side::kBase),
            (std::set<std::string>{"state", "backup"}));
  ExprPtr remapped = Expr::RemapSide(e, Side::kBase, Side::kDetail);
  EXPECT_FALSE(remapped->ReferencesSide(Side::kBase));
  EXPECT_NE(e->ToString().find("case when"), std::string::npos);
}

TEST(ExprTest, BindErrors) {
  Table t = OneRow({{"x", DataType::kInt64}}, {I(1)});
  EXPECT_TRUE(CompileExpr(Col("nope"), t.schema()).status().IsNotFound());
  // Base-side reference without a base schema is a bind error.
  EXPECT_TRUE(CompileExpr(BCol("x"), t.schema()).status().IsBindError());
}

TEST(ExprTest, ReferencesSideAndColumns) {
  ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit("NY")));
  EXPECT_TRUE(theta->ReferencesSide(Side::kBase));
  EXPECT_TRUE(theta->ReferencesSide(Side::kDetail));
  EXPECT_EQ(theta->ReferencedColumns(Side::kBase), std::set<std::string>{"cust"});
  EXPECT_EQ(theta->ReferencedColumns(Side::kDetail),
            (std::set<std::string>{"cust", "state"}));
}

TEST(ExprTest, RemapSide) {
  ExprPtr sel = Gt(BCol("month"), Lit(3));
  ExprPtr remapped = Expr::RemapSide(sel, Side::kBase, Side::kDetail);
  EXPECT_FALSE(remapped->ReferencesSide(Side::kBase));
  EXPECT_EQ(remapped->ReferencedColumns(Side::kDetail), std::set<std::string>{"month"});
}

TEST(ExprTest, RenameColumnsRewrites) {
  ExprPtr e = Eq(RCol("a"), RCol("b"));
  ExprPtr renamed = Expr::RenameColumns(e, Side::kDetail, {"a"}, {"x"});
  EXPECT_EQ(renamed->ReferencedColumns(Side::kDetail), (std::set<std::string>{"x", "b"}));
}

TEST(ExprTest, ToStringReadable) {
  ExprPtr e = And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit("NY")));
  EXPECT_EQ(e->ToString(), "((R.cust = B.cust) and (R.state = 'NY'))");
}

TEST(ExprTest, EvalConstExpr) {
  Result<Value> v = EvalConstExpr(Add(Lit(2), Lit(3)));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int64(), 5);
  EXPECT_FALSE(EvalConstExpr(Col("x")).ok());
}

TEST(ConjunctsTest, SplitFlattensNestedAnds) {
  ExprPtr e = And(Eq(RCol("a"), Lit(1)), And(Eq(RCol("b"), Lit(2)), Eq(RCol("c"), Lit(3))));
  std::vector<ExprPtr> parts = SplitConjuncts(e);
  EXPECT_EQ(parts.size(), 3u);
}

TEST(ConjunctsTest, TrueLiteralVanishes) {
  EXPECT_TRUE(SplitConjuncts(True()).empty());
  EXPECT_EQ(SplitConjuncts(And(True(), Eq(RCol("a"), Lit(1)))).size(), 1u);
}

TEST(ConjunctsTest, CombineEmptyIsTrue) {
  ExprPtr combined = CombineConjuncts({});
  Result<Value> v = EvalConstExpr(combined);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->IsTruthy());
}

TEST(ConjunctsTest, AnalyzeThetaClassifies) {
  // Example 2.2's first θ: Sales.cust = cust and Sales.state = 'NY',
  // plus a base-only and a mixed non-equi conjunct for coverage.
  ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")),  // equi
                      Eq(RCol("state"), Lit("NY")),    // detail-only
                      Gt(BCol("month"), Lit(1)),       // base-only
                      Gt(RCol("sale"), BCol("avg_sale")));  // residual
  ThetaParts parts = AnalyzeTheta(theta);
  ASSERT_EQ(parts.equi.size(), 1u);
  EXPECT_EQ(parts.equi[0].base_expr->ToString(), "B.cust");
  EXPECT_EQ(parts.equi[0].detail_expr->ToString(), "R.cust");
  EXPECT_EQ(parts.detail_only.size(), 1u);
  EXPECT_EQ(parts.base_only.size(), 1u);
  EXPECT_EQ(parts.residual.size(), 1u);
}

TEST(ConjunctsTest, ComputedEquiKey) {
  // Example 2.5's previous-month condition: R.month = B.month - 1.
  ExprPtr theta = Eq(RCol("month"), Sub(BCol("month"), Lit(1)));
  ThetaParts parts = AnalyzeTheta(theta);
  ASSERT_EQ(parts.equi.size(), 1u);
  EXPECT_EQ(parts.equi[0].base_expr->ToString(), "(B.month - 1)");
}

TEST(ConjunctsTest, EquiNeedsOneSidePerOperand) {
  // B.a + R.b = 3 is mixed on one operand: residual, not equi.
  ExprPtr theta = Eq(Add(BCol("a"), RCol("b")), Lit(3));
  ThetaParts parts = AnalyzeTheta(theta);
  EXPECT_TRUE(parts.equi.empty());
  EXPECT_EQ(parts.residual.size(), 1u);
}

TEST(ConjunctsTest, CombineThetaRoundTripsSemantics) {
  Table base = OneRow({{"cust", DataType::kInt64}, {"month", DataType::kInt64}},
                      {I(1), I(2)});
  Table detail = OneRow(
      {{"cust", DataType::kInt64}, {"month", DataType::kInt64}, {"sale", DataType::kFloat64}},
      {I(1), I(1), F(10)});
  ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")),
                      Eq(RCol("month"), Sub(BCol("month"), Lit(1))),
                      Gt(RCol("sale"), Lit(5)));
  ExprPtr recombined = CombineTheta(AnalyzeTheta(theta));
  EXPECT_EQ(EvalPair(theta, base, 0, detail, 0).IsTruthy(),
            EvalPair(recombined, base, 0, detail, 0).IsTruthy());
  EXPECT_TRUE(EvalPair(recombined, base, 0, detail, 0).IsTruthy());
}

}  // namespace
}  // namespace mdjoin
