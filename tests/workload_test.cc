#include <gtest/gtest.h>

#include "table/table_ops.h"
#include "workload/generators.h"

namespace mdjoin {
namespace {

TEST(WorkloadTest, SalesSchemaAndBounds) {
  SalesConfig config;
  config.num_rows = 2000;
  config.num_customers = 10;
  config.num_products = 5;
  config.num_months = 6;
  config.first_year = 1995;
  config.last_year = 1997;
  config.num_states = 8;
  config.max_sale = 100.0;
  Table t = GenerateSales(config);
  EXPECT_EQ(t.num_rows(), 2000);
  EXPECT_EQ(t.schema().ToString(),
            "cust:int64, prod:int64, day:int64, month:int64, year:int64, "
            "state:string, sale:float64");
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_GE(t.Get(r, 0).int64(), 1);
    EXPECT_LE(t.Get(r, 0).int64(), 10);
    EXPECT_GE(t.Get(r, 1).int64(), 1);
    EXPECT_LE(t.Get(r, 1).int64(), 5);
    EXPECT_GE(t.Get(r, 3).int64(), 1);
    EXPECT_LE(t.Get(r, 3).int64(), 6);
    EXPECT_GE(t.Get(r, 4).int64(), 1995);
    EXPECT_LE(t.Get(r, 4).int64(), 1997);
    EXPECT_GE(t.Get(r, 6).float64(), 0.0);
    EXPECT_LT(t.Get(r, 6).float64(), 100.0);
  }
}

TEST(WorkloadTest, DeterministicBySeed) {
  SalesConfig config;
  config.num_rows = 100;
  Table a = GenerateSales(config);
  Table b = GenerateSales(config);
  EXPECT_TRUE(TablesEqualOrdered(a, b));
  config.seed = 99;
  Table c = GenerateSales(config);
  EXPECT_FALSE(TablesEqualOrdered(a, c));
}

TEST(WorkloadTest, ZipfSkewConcentratesCustomers) {
  SalesConfig uniform;
  uniform.num_rows = 5000;
  uniform.num_customers = 100;
  SalesConfig skewed = uniform;
  skewed.zipf_theta = 1.2;
  Table u = GenerateSales(uniform);
  Table z = GenerateSales(skewed);
  auto count_cust1 = [](const Table& t) {
    int64_t n = 0;
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      if (t.Get(r, 0).int64() == 1) ++n;
    }
    return n;
  };
  EXPECT_GT(count_cust1(z), count_cust1(u) * 3);
}

TEST(WorkloadTest, StateNamesIncludePaperStates) {
  EXPECT_EQ(StateName(0), "NY");
  EXPECT_EQ(StateName(1), "NJ");
  EXPECT_EQ(StateName(2), "CT");
  EXPECT_EQ(StateName(3), "CA");
  EXPECT_EQ(StateName(4), "IL");
  EXPECT_EQ(StateName(7), "S07");
  SalesConfig config;
  config.num_rows = 500;
  config.num_states = 3;
  Table t = GenerateSales(config);
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    const std::string& s = t.Get(r, 5).string();
    EXPECT_TRUE(s == "NY" || s == "NJ" || s == "CT") << s;
  }
}

TEST(WorkloadTest, PaymentsSchemaAndBounds) {
  PaymentsConfig config;
  config.num_rows = 300;
  config.num_customers = 7;
  Table t = GeneratePayments(config);
  EXPECT_EQ(t.num_rows(), 300);
  EXPECT_EQ(t.schema().ToString(),
            "cust:int64, day:int64, month:int64, year:int64, amount:float64");
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_GE(t.Get(r, 0).int64(), 1);
    EXPECT_LE(t.Get(r, 0).int64(), 7);
  }
}

}  // namespace
}  // namespace mdjoin
