#include <gtest/gtest.h>

#include "core/reference.h"
#include "expr/conjuncts.h"
#include "optimizer/cost.h"
#include "optimizer/executor.h"
#include "optimizer/plan.h"
#include "optimizer/rules.h"
#include "table/table_ops.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using testutil::I;

ExprPtr CustTheta() { return Eq(RCol("cust"), BCol("cust")); }

ExprPtr DimsTheta(const std::vector<std::string>& dims) {
  std::vector<ExprPtr> eqs;
  for (const std::string& d : dims) eqs.push_back(Eq(BCol(d), RCol(d)));
  return CombineConjuncts(std::move(eqs));
}

/// Fixture: Sales registered as "sales", base = distinct customers.
class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sales_ = testutil::SmallSales();
    ASSERT_TRUE(catalog_.Register("sales", &sales_).ok());
  }

  PlanPtr DistinctCustBase() {
    return DistinctPlan(
        ProjectPlan(TableRef("sales"), {{Col("cust"), "cust"}}));
  }

  /// Executes both plans and expects identical multisets of rows.
  void ExpectSameResult(const PlanPtr& a, const PlanPtr& b) {
    Result<Table> ra = ExecutePlanCse(a, catalog_);
    Result<Table> rb = ExecutePlanCse(b, catalog_);
    ASSERT_TRUE(ra.ok()) << ra.status().ToString() << "\n" << ExplainPlan(a);
    ASSERT_TRUE(rb.ok()) << rb.status().ToString() << "\n" << ExplainPlan(b);
    EXPECT_TRUE(TablesEqualUnordered(*ra, *rb))
        << "plan A:\n" << ExplainPlan(a) << "result A:\n" << ra->ToString()
        << "plan B:\n" << ExplainPlan(b) << "result B:\n" << rb->ToString();
  }

  Table sales_;
  Catalog catalog_;
};

TEST_F(OptimizerTest, ExecuteSimpleMdJoinPlan) {
  PlanPtr plan = MdJoinPlan(DistinctCustBase(), TableRef("sales"),
                            {Count("n"), Sum(RCol("sale"), "total")}, CustTheta());
  ExecStats stats;
  Result<Table> result = ExecutePlan(plan, catalog_, {}, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 4);
  EXPECT_EQ(stats.mdjoin_operators, 1);
  EXPECT_EQ(stats.detail_rows_scanned, sales_.num_rows());
  // Cross-check against the direct operator call.
  Result<Table> direct = MdJoinReference(
      *DistinctOn(sales_, {"cust"}), sales_, {Count("n"), Sum(RCol("sale"), "total")},
      CustTheta());
  EXPECT_TRUE(TablesEqualUnordered(*result, *direct));
}

TEST_F(OptimizerTest, SchemaInference) {
  PlanPtr plan = MdJoinPlan(DistinctCustBase(), TableRef("sales"),
                            {Count("n"), Avg(RCol("sale"), "a")}, CustTheta());
  Result<Schema> schema = InferSchema(plan, catalog_);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->ToString(), "cust:int64, n:int64, a:float64");
  // Bad θ is caught without execution.
  PlanPtr bad = MdJoinPlan(DistinctCustBase(), TableRef("sales"), {Count("n")},
                           Eq(RCol("cust"), BCol("nope")));
  EXPECT_FALSE(InferSchema(bad, catalog_).ok());
}

TEST_F(OptimizerTest, ExplainRendersTree) {
  PlanPtr plan = MdJoinPlan(DistinctCustBase(), TableRef("sales"), {Count("n")},
                            CustTheta());
  std::string text = ExplainPlan(plan);
  EXPECT_NE(text.find("MdJoin"), std::string::npos);
  EXPECT_NE(text.find("  Distinct"), std::string::npos);
  EXPECT_NE(text.find("TableRef(sales)"), std::string::npos);
}

TEST_F(OptimizerTest, Theorem41PartitioningPreservesResults) {
  PlanPtr plan = MdJoinPlan(DistinctCustBase(), TableRef("sales"),
                            {Count("n"), Sum(RCol("sale"), "t")}, CustTheta());
  for (int m : {1, 2, 3, 7}) {
    Result<PlanPtr> split = ApplyBasePartitioning(plan, m);
    ASSERT_TRUE(split.ok()) << split.status().ToString();
    EXPECT_EQ((*split)->children().size(), static_cast<size_t>(m));
    ExpectSameResult(plan, *split);
  }
}

TEST_F(OptimizerTest, Theorem41RequiresMdJoinRoot) {
  EXPECT_FALSE(ApplyBasePartitioning(TableRef("sales"), 2).ok());
}

TEST_F(OptimizerTest, Theorem42PushdownPreservesResults) {
  ExprPtr theta = And(CustTheta(), Eq(RCol("year"), Lit(1999)),
                      Gt(RCol("sale"), Lit(10)));
  PlanPtr plan = MdJoinPlan(DistinctCustBase(), TableRef("sales"), {Count("n")}, theta);
  Result<PlanPtr> pushed = ApplySelectionPushdown(plan);
  ASSERT_TRUE(pushed.ok()) << pushed.status().ToString();
  // The rewritten detail child is now a Filter node.
  EXPECT_EQ((*pushed)->child(1)->kind(), PlanKind::kFilter);
  ExpectSameResult(plan, *pushed);
  // Not applicable without R-only conjuncts.
  PlanPtr no_detail_only =
      MdJoinPlan(DistinctCustBase(), TableRef("sales"), {Count("n")}, CustTheta());
  EXPECT_FALSE(ApplySelectionPushdown(no_detail_only).ok());
}

TEST_F(OptimizerTest, Observation41TransferPreservesResults) {
  // Base restricted to cust <= 2; the equi conjunct lets the restriction
  // transfer to the detail side.
  PlanPtr filtered_base = FilterPlan(DistinctCustBase(), Le(Col("cust"), Lit(2)));
  PlanPtr plan = MdJoinPlan(filtered_base, TableRef("sales"),
                            {Count("n"), Sum(RCol("sale"), "t")}, CustTheta());
  Result<PlanPtr> transferred = ApplyBaseSelectionTransfer(plan);
  ASSERT_TRUE(transferred.ok()) << transferred.status().ToString();
  EXPECT_EQ((*transferred)->child(1)->kind(), PlanKind::kFilter);
  ExpectSameResult(plan, *transferred);
}

TEST_F(OptimizerTest, Observation41RequiresCoveredColumns) {
  // Selection on month, but θ only binds cust: not transferable.
  PlanPtr base = FilterPlan(
      DistinctPlan(ProjectPlan(TableRef("sales"),
                               {{Col("cust"), "cust"}, {Col("month"), "month"}})),
      Le(Col("month"), Lit(2)));
  PlanPtr plan = MdJoinPlan(base, TableRef("sales"), {Count("n")}, CustTheta());
  EXPECT_FALSE(ApplyBaseSelectionTransfer(plan).ok());
}

TEST_F(OptimizerTest, Theorem43FusionCollapsesIndependentSeries) {
  // Example 2.2: three independent per-state averages.
  auto state_theta = [](const char* st) {
    return And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit(st)));
  };
  PlanPtr plan = DistinctCustBase();
  plan = MdJoinPlan(plan, TableRef("sales"), {Avg(RCol("sale"), "avg_ny")},
                    state_theta("NY"));
  plan = MdJoinPlan(plan, TableRef("sales"), {Avg(RCol("sale"), "avg_nj")},
                    state_theta("NJ"));
  plan = MdJoinPlan(plan, TableRef("sales"), {Avg(RCol("sale"), "avg_ct")},
                    state_theta("CT"));
  Result<PlanPtr> fused = FuseMdJoinSeries(plan);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_EQ((*fused)->kind(), PlanKind::kGeneralizedMdJoin);
  EXPECT_EQ((*fused)->components.size(), 3u);
  ExpectSameResult(plan, *fused);
  // One scan instead of three.
  ExecStats fused_stats, series_stats;
  ASSERT_TRUE(ExecutePlan(*fused, catalog_, {}, &fused_stats).ok());
  ASSERT_TRUE(ExecutePlan(plan, catalog_, {}, &series_stats).ok());
  EXPECT_EQ(fused_stats.detail_rows_scanned, sales_.num_rows());
  EXPECT_EQ(series_stats.detail_rows_scanned, 3 * sales_.num_rows());
}

TEST_F(OptimizerTest, Theorem43FusionRespectsDependencies) {
  // Example 2.3 shape: the second MD-join needs the first one's avg output.
  PlanPtr plan = DistinctCustBase();
  plan = MdJoinPlan(plan, TableRef("sales"), {Avg(RCol("sale"), "avg_sale")},
                    CustTheta());
  plan = MdJoinPlan(plan, TableRef("sales"), {Count("above")},
                    And(CustTheta(), Gt(RCol("sale"), BCol("avg_sale"))));
  // Dependent: cannot fuse into one generalized node.
  EXPECT_FALSE(FuseMdJoinSeries(plan).ok());
}

TEST_F(OptimizerTest, Theorem43FusionMixedDependencies) {
  // Four MD-joins: #1 and #2 independent (fusible), #3 depends on #1,
  // #4 depends on #3 — expect generations {1,2}, {3}, {4}.
  PlanPtr plan = DistinctCustBase();
  plan = MdJoinPlan(plan, TableRef("sales"), {Avg(RCol("sale"), "a1")}, CustTheta());
  plan = MdJoinPlan(plan, TableRef("sales"), {Min(RCol("sale"), "m1")}, CustTheta());
  plan = MdJoinPlan(plan, TableRef("sales"), {Count("c1")},
                    And(CustTheta(), Gt(RCol("sale"), BCol("a1"))));
  plan = MdJoinPlan(plan, TableRef("sales"), {Count("c2")},
                    And(CustTheta(), Gt(RCol("sale"), BCol("c1"))));
  Result<PlanPtr> fused = FuseMdJoinSeries(plan);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  ExpectSameResult(plan, *fused);
  ExecStats stats;
  ASSERT_TRUE(ExecutePlan(*fused, catalog_, {}, &stats).ok());
  // 3 scans (gen0 fused + gen1 + gen2) instead of 4.
  EXPECT_EQ(stats.detail_rows_scanned, 3 * sales_.num_rows());
}

TEST_F(OptimizerTest, Theorem43CommutePreservesResults) {
  Table payments = GeneratePayments({.num_rows = 60, .num_customers = 4, .seed = 7});
  ASSERT_TRUE(catalog_.Register("payments", &payments).ok());
  PlanPtr inner = MdJoinPlan(DistinctCustBase(), TableRef("sales"),
                             {Sum(RCol("sale"), "total_sales")}, CustTheta());
  PlanPtr outer = MdJoinPlan(inner, TableRef("payments"),
                             {Sum(RCol("amount"), "total_paid")}, CustTheta());
  Result<PlanPtr> commuted = CommuteMdJoins(outer, catalog_);
  ASSERT_TRUE(commuted.ok()) << commuted.status().ToString();
  // Column order differs after commuting; compare re-projected columns.
  Result<Table> a = ExecutePlan(outer, catalog_);
  Result<Table> b = ExecutePlan(*commuted, catalog_);
  ASSERT_TRUE(a.ok() && b.ok());
  Result<Table> a_proj = ProjectColumns(*a, {"cust", "total_sales", "total_paid"});
  Result<Table> b_proj = ProjectColumns(*b, {"cust", "total_sales", "total_paid"});
  EXPECT_TRUE(TablesEqualUnordered(*a_proj, *b_proj));
}

TEST_F(OptimizerTest, Theorem43CommuteRejectsDependent) {
  PlanPtr inner = MdJoinPlan(DistinctCustBase(), TableRef("sales"),
                             {Avg(RCol("sale"), "a")}, CustTheta());
  PlanPtr outer = MdJoinPlan(inner, TableRef("sales"), {Count("n")},
                             And(CustTheta(), Gt(RCol("sale"), BCol("a"))));
  EXPECT_FALSE(CommuteMdJoins(outer, catalog_).ok());
}

TEST_F(OptimizerTest, Theorem44SplitPreservesResults) {
  // Example 3.3: Sales and Payments per customer, as join of two MD-joins.
  Table payments = GeneratePayments({.num_rows = 80, .num_customers = 4, .seed = 9});
  ASSERT_TRUE(catalog_.Register("payments", &payments).ok());
  PlanPtr inner = MdJoinPlan(DistinctCustBase(), TableRef("sales"),
                             {Sum(RCol("sale"), "total_sales")}, CustTheta());
  PlanPtr outer = MdJoinPlan(inner, TableRef("payments"),
                             {Sum(RCol("amount"), "total_paid")}, CustTheta());
  Result<PlanPtr> split = SplitToEquiJoin(outer, catalog_);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_EQ((*split)->kind(), PlanKind::kHashJoin);
  ExpectSameResult(outer, *split);
}

TEST_F(OptimizerTest, Theorem45RollupPreservesResults) {
  std::vector<std::string> dims = {"prod", "month"};
  // Coarse cuboid: (prod, ALL).
  PlanPtr coarse = MdJoinPlan(CuboidBasePlan(TableRef("sales"), dims, 0b01),
                              TableRef("sales"),
                              {Sum(RCol("sale"), "total"), Count("n")}, DimsTheta(dims));
  Result<PlanPtr> rolled = ApplyRollup(coarse, 0b11);
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  // The detail child became the finer cuboid's MD-join.
  EXPECT_EQ((*rolled)->child(1)->kind(), PlanKind::kMdJoin);
  ExpectSameResult(coarse, *rolled);
}

TEST_F(OptimizerTest, Theorem45Preconditions) {
  std::vector<std::string> dims = {"prod", "month"};
  PlanPtr coarse_avg = MdJoinPlan(CuboidBasePlan(TableRef("sales"), dims, 0b01),
                                  TableRef("sales"), {Avg(RCol("sale"), "a")},
                                  DimsTheta(dims));
  // avg is not distributive.
  EXPECT_FALSE(ApplyRollup(coarse_avg, 0b11).ok());
  PlanPtr coarse = MdJoinPlan(CuboidBasePlan(TableRef("sales"), dims, 0b01),
                              TableRef("sales"), {Count("n")}, DimsTheta(dims));
  // Finer mask must be a strict superset.
  EXPECT_FALSE(ApplyRollup(coarse, 0b01).ok());
  EXPECT_FALSE(ApplyRollup(coarse, 0b10).ok());
  // θ with an extra residual conjunct is not pure dimension equality.
  PlanPtr resid = MdJoinPlan(CuboidBasePlan(TableRef("sales"), dims, 0b01),
                             TableRef("sales"), {Count("n")},
                             And(DimsTheta(dims), Gt(RCol("sale"), Lit(10))));
  EXPECT_FALSE(ApplyRollup(resid, 0b11).ok());
}

TEST_F(OptimizerTest, ExpandCubeBaseEqualsDirectCube) {
  std::vector<std::string> dims = {"prod", "month"};
  PlanPtr cube = MdJoinPlan(CubeBasePlan(TableRef("sales"), dims), TableRef("sales"),
                            {Sum(RCol("sale"), "total")}, DimsTheta(dims));
  Result<PlanPtr> expanded = ExpandCubeBase(cube);
  ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
  EXPECT_EQ((*expanded)->kind(), PlanKind::kUnion);
  EXPECT_EQ((*expanded)->children().size(), 4u);
  ExpectSameResult(cube, *expanded);
}

TEST_F(OptimizerTest, ExpandCubeBaseWithRollupsEqualsDirectCube) {
  std::vector<std::string> dims = {"prod", "month", "state"};
  PlanPtr cube = MdJoinPlan(CubeBasePlan(TableRef("sales"), dims), TableRef("sales"),
                            {Sum(RCol("sale"), "total"), Count("n")}, DimsTheta(dims));
  Result<PlanPtr> rolled = ExpandCubeBaseWithRollups(cube);
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  ExpectSameResult(cube, *rolled);
  // With CSE, the detail relation is scanned only by the full cuboid's
  // MD-join; every other cuboid reads a finer cuboid's (smaller) output.
  ExecStats direct_stats, rolled_stats;
  ASSERT_TRUE(ExecutePlanCse(cube, catalog_, {}, &direct_stats).ok());
  ASSERT_TRUE(ExecutePlanCse(*rolled, catalog_, {}, &rolled_stats).ok());
  EXPECT_GT(rolled_stats.cse_hits, 0);
}

TEST_F(OptimizerTest, CostModelRanksIndexableThetaCheaper) {
  PlanPtr indexable = MdJoinPlan(DistinctCustBase(), TableRef("sales"), {Count("n")},
                                 CustTheta());
  PlanPtr nested = MdJoinPlan(DistinctCustBase(), TableRef("sales"), {Count("n")},
                              Gt(RCol("sale"), BCol("cust")));
  Result<PlanCost> ci = EstimateCost(indexable, catalog_);
  Result<PlanCost> cn = EstimateCost(nested, catalog_);
  ASSERT_TRUE(ci.ok() && cn.ok());
  EXPECT_LT(ci->work, cn->work);
  Result<size_t> best = ChooseCheapestPlan({nested, indexable}, catalog_);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(*best, 1u);
}

TEST_F(OptimizerTest, CostModelPrefersFusedSeries) {
  auto state_theta = [](const char* st) {
    return And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit(st)));
  };
  PlanPtr series = DistinctCustBase();
  series = MdJoinPlan(series, TableRef("sales"), {Avg(RCol("sale"), "a1")},
                      state_theta("NY"));
  series = MdJoinPlan(series, TableRef("sales"), {Avg(RCol("sale"), "a2")},
                      state_theta("NJ"));
  Result<PlanPtr> fused = FuseMdJoinSeries(series);
  ASSERT_TRUE(fused.ok());
  Result<PlanCost> cs = EstimateCost(series, catalog_);
  Result<PlanCost> cf = EstimateCost(*fused, catalog_);
  ASSERT_TRUE(cs.ok() && cf.ok());
  EXPECT_LT(cf->work, cs->work);
}

TEST_F(OptimizerTest, CatalogErrors) {
  EXPECT_TRUE(catalog_.Lookup("nope").status().IsNotFound());
  Table other = testutil::SmallSales();
  EXPECT_EQ(catalog_.Register("sales", &other).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(ExecutePlan(TableRef("missing"), catalog_).ok());
}

}  // namespace
}  // namespace mdjoin
