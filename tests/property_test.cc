/// Parameterized property tests: every algebraic identity of §4 is checked
/// on randomized inputs against the Definition 3.1 reference evaluator. Each
/// suite sweeps seeds (and where relevant a structural parameter) via
/// INSTANTIATE_TEST_SUITE_P.

#include <gtest/gtest.h>

#include "core/generalized.h"
#include "core/mdjoin.h"
#include "core/reference.h"
#include "cube/base_tables.h"
#include "expr/conjuncts.h"
#include "ra/filter.h"
#include "ra/join.h"
#include "ra/project.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT

/// A θ-condition drawn from a small grammar covering every conjunct class:
/// equi (plain and computed key), detail-only, base-only, residual non-equi.
ExprPtr RandomTheta(Random* rng) {
  std::vector<ExprPtr> conjuncts;
  conjuncts.push_back(Eq(RCol("cust"), BCol("cust")));  // always indexable
  if (rng->Bernoulli(0.5)) {
    conjuncts.push_back(Eq(RCol("month"), BCol("month")));
  } else if (rng->Bernoulli(0.4)) {
    // Computed key: previous month.
    conjuncts.push_back(Eq(RCol("month"), Sub(BCol("month"), Lit(1))));
  }
  if (rng->Bernoulli(0.5)) {
    conjuncts.push_back(Eq(RCol("state"), Lit("NY")));  // detail-only
  }
  if (rng->Bernoulli(0.3)) {
    conjuncts.push_back(Le(BCol("cust"), Lit(rng->UniformInt(1, 6))));  // base-only
  }
  if (rng->Bernoulli(0.4)) {
    conjuncts.push_back(Gt(RCol("sale"), Lit(static_cast<double>(
                                             rng->UniformInt(50, 300)))));
  }
  if (rng->Bernoulli(0.3)) {
    // Residual: mixed non-equi.
    conjuncts.push_back(Gt(RCol("sale"), Mul(BCol("cust"), Lit(20))));
  }
  return CombineConjuncts(std::move(conjuncts));
}

std::vector<AggSpec> StandardAggs() {
  return {Count("n"), Sum(RCol("sale"), "total"), Min(RCol("sale"), "lo"),
          Max(RCol("sale"), "hi"), Avg(RCol("sale"), "mean")};
}

class TheoremProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    seed_ = GetParam();
    rng_ = std::make_unique<Random>(seed_);
    sales_ = testutil::RandomSales(seed_, 150);
    base_ = *GroupByBase(sales_, {"cust", "month"});
  }

  uint64_t seed_;
  std::unique_ptr<Random> rng_;
  Table sales_;
  Table base_;
};

TEST_P(TheoremProperty, OptimizedEvaluatorMatchesDefinition) {
  // Algorithm 3.1 with index + pushdown == Definition 3.1, for random θ.
  for (int round = 0; round < 4; ++round) {
    ExprPtr theta = RandomTheta(rng_.get());
    Result<Table> fast = MdJoin(base_, sales_, StandardAggs(), theta);
    Result<Table> ref = MdJoinReference(base_, sales_, StandardAggs(), theta);
    ASSERT_TRUE(fast.ok() && ref.ok()) << theta->ToString();
    EXPECT_TRUE(TablesEqualOrdered(*fast, *ref)) << theta->ToString();
  }
}

TEST_P(TheoremProperty, Theorem41_UnionOfPartitions) {
  ExprPtr theta = RandomTheta(rng_.get());
  Result<Table> whole = MdJoin(base_, sales_, StandardAggs(), theta);
  ASSERT_TRUE(whole.ok());
  for (int m : {2, 3, 5}) {
    std::vector<Table> parts = PartitionIntoN(base_, m);
    std::vector<Table> results;
    for (const Table& part : parts) {
      Result<Table> piece = MdJoin(part, sales_, StandardAggs(), theta);
      ASSERT_TRUE(piece.ok());
      results.push_back(std::move(*piece));
    }
    Result<Table> reunited = ConcatAll(results);
    ASSERT_TRUE(reunited.ok());
    EXPECT_TRUE(TablesEqualUnordered(*whole, *reunited))
        << "m=" << m << " θ=" << theta->ToString();
  }
}

TEST_P(TheoremProperty, Theorem42_SelectionPushdown) {
  // MD(B, R, θ1 ∧ θ2) == MD(B, σ_{θ2}(R), θ1) for R-only θ2.
  ExprPtr theta1 = Eq(RCol("cust"), BCol("cust"));
  ExprPtr theta2_detail = And(Eq(RCol("state"), Lit("NY")),
                              Gt(RCol("sale"), Lit(100)));
  Result<Table> combined =
      MdJoinReference(base_, sales_, StandardAggs(), And(theta1, theta2_detail));
  // σ expects single-table (detail-frame) references; θ2 already is.
  Result<Table> filtered = Filter(sales_, theta2_detail);
  Result<Table> pushed = MdJoinReference(base_, *filtered, StandardAggs(), theta1);
  ASSERT_TRUE(combined.ok() && pushed.ok());
  EXPECT_TRUE(TablesEqualOrdered(*combined, *pushed));
}

TEST_P(TheoremProperty, Observation41_RangeTransfer) {
  // A range selection on B transfers through the equi conjunct to R.
  int64_t hi = rng_->UniformInt(2, 5);
  ExprPtr base_sel = Le(Col("cust"), Lit(hi));
  Result<Table> restricted_base = Filter(base_, base_sel);
  ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")),
                      Eq(RCol("month"), BCol("month")));
  Result<Table> unpushed = MdJoin(*restricted_base, sales_, StandardAggs(), theta);
  // σ'(R): same range, on R's cust.
  Result<Table> restricted_detail = Filter(sales_, Le(Col("cust"), Lit(hi)));
  Result<Table> pushed =
      MdJoin(*restricted_base, *restricted_detail, StandardAggs(), theta);
  ASSERT_TRUE(unpushed.ok() && pushed.ok());
  EXPECT_TRUE(TablesEqualOrdered(*unpushed, *pushed));
}

TEST_P(TheoremProperty, Theorem43_Commutativity) {
  // MD(MD(B,R1,l1,θ1),R2,l2,θ2) == MD(MD(B,R2,l2,θ2),R1,l1,θ1) when both θs
  // touch only B attributes.
  Table r1 = testutil::RandomSales(seed_ + 1000, 120);
  Table r2 = testutil::RandomSales(seed_ + 2000, 120);
  ExprPtr theta1 = And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit("NY")));
  ExprPtr theta2 = And(Eq(RCol("cust"), BCol("cust")), Gt(RCol("sale"), Lit(200)));
  std::vector<AggSpec> l1 = {Sum(RCol("sale"), "s1"), Count("n1")};
  std::vector<AggSpec> l2 = {Avg(RCol("sale"), "a2")};

  Result<Table> ab = MdJoin(*MdJoin(base_, r1, l1, theta1), r2, l2, theta2);
  Result<Table> ba = MdJoin(*MdJoin(base_, r2, l2, theta2), r1, l1, theta1);
  ASSERT_TRUE(ab.ok() && ba.ok());
  std::vector<std::string> cols = {"cust", "month", "s1", "n1", "a2"};
  Result<Table> ab_proj = ProjectColumns(*ab, cols);
  Result<Table> ba_proj = ProjectColumns(*ba, cols);
  EXPECT_TRUE(TablesEqualOrdered(*ab_proj, *ba_proj));
}

TEST_P(TheoremProperty, Theorem43_GeneralizedEqualsSeries) {
  // Random collection of independent components: fused == sequential.
  std::vector<MdJoinComponent> comps;
  const char* states[] = {"NY", "NJ", "CT", "CA"};
  int k = static_cast<int>(rng_->UniformInt(2, 4));
  for (int i = 0; i < k; ++i) {
    std::string suffix = std::to_string(i);
    comps.push_back(
        {{Sum(RCol("sale"), "s" + suffix), Count("c" + suffix)},
         And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit(states[i])))});
  }
  Result<Table> fused = GeneralizedMdJoin(base_, sales_, comps);
  ASSERT_TRUE(fused.ok());
  Table step = base_.Clone();
  for (const MdJoinComponent& comp : comps) {
    Result<Table> next = MdJoin(step, sales_, comp.aggs, comp.theta);
    ASSERT_TRUE(next.ok());
    step = std::move(*next);
  }
  EXPECT_TRUE(TablesEqualOrdered(*fused, step));
}

TEST_P(TheoremProperty, Theorem44_EquiJoinSplit) {
  // MD(MD(B,R1,l1,θ1),R2,l2,θ2) == MD(B,R1,l1,θ1) ⋈ MD(B,R2,l2,θ2). B's rows
  // are distinct by construction (GroupByBase).
  Table r2 = testutil::RandomSales(seed_ + 3000, 120);
  ExprPtr theta1 = And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("month"), BCol("month")));
  ExprPtr theta2 = And(Eq(RCol("cust"), BCol("cust")), Gt(RCol("sale"), Lit(150)));
  std::vector<AggSpec> l1 = {Sum(RCol("sale"), "s1")};
  std::vector<AggSpec> l2 = {Count("n2")};
  Result<Table> sequential = MdJoin(*MdJoin(base_, sales_, l1, theta1), r2, l2, theta2);
  Result<Table> left = MdJoin(base_, sales_, l1, theta1);
  Result<Table> right = MdJoin(base_, r2, l2, theta2);
  ASSERT_TRUE(sequential.ok() && left.ok() && right.ok());
  Result<Table> joined =
      HashJoin(*left, *right, {"cust", "month"}, {"cust", "month"});
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(TablesEqualUnordered(*sequential, *joined));
}

TEST_P(TheoremProperty, Theorem45_RollupFromFinerCuboid) {
  // Coarser cuboid from finer cuboid, distributive aggregates, at every
  // coarse/finer mask pair of a 3-dim lattice.
  std::vector<std::string> dims = {"prod", "month", "state"};
  Result<CubeLattice> lattice = CubeLattice::Make(dims);
  ExprPtr theta = CombineConjuncts(
      {Eq(BCol("prod"), RCol("prod")), Eq(BCol("month"), RCol("month")),
       Eq(BCol("state"), RCol("state"))});
  std::vector<AggSpec> l = {Sum(RCol("sale"), "total"), Count("n"),
                            Min(RCol("sale"), "lo"), Max(RCol("sale"), "hi")};
  std::vector<AggSpec> l_prime;
  for (const AggSpec& spec : l) l_prime.push_back(*RollupSpec(spec));

  for (CuboidMask coarse : lattice->AllCuboids()) {
    for (CuboidMask finer : lattice->AllCuboids()) {
      if ((coarse & finer) != coarse || coarse == finer) continue;
      Result<Table> coarse_base = CuboidBase(sales_, *lattice, coarse);
      Result<Table> finer_base = CuboidBase(sales_, *lattice, finer);
      Result<Table> direct = MdJoin(*coarse_base, sales_, l, theta);
      Result<Table> finer_cuboid = MdJoin(*finer_base, sales_, l, theta);
      Result<Table> rolled = MdJoin(*coarse_base, *finer_cuboid, l_prime, theta);
      ASSERT_TRUE(direct.ok() && rolled.ok());
      EXPECT_TRUE(TablesEqualOrdered(*direct, *rolled))
          << "coarse=" << lattice->CuboidName(coarse)
          << " finer=" << lattice->CuboidName(finer);
    }
  }
}

TEST_P(TheoremProperty, MemoryBudgetEqualsSinglePass) {
  ExprPtr theta = RandomTheta(rng_.get());
  Result<Table> single = MdJoin(base_, sales_, StandardAggs(), theta);
  ASSERT_TRUE(single.ok());
  for (int64_t budget : {1, 3, 7}) {
    MdJoinOptions options;
    options.base_rows_per_pass = budget;
    Result<Table> multi = MdJoin(base_, sales_, StandardAggs(), theta, options);
    ASSERT_TRUE(multi.ok());
    EXPECT_TRUE(TablesEqualOrdered(*single, *multi)) << "budget=" << budget;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed_" + std::to_string(info.param);
                         });

/// Cube-specific properties parameterized on (seed, #dims).
class CubeProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(CubeProperty, CubeMdJoinMatchesReferenceAtAllGranularities) {
  auto [seed, ndims] = GetParam();
  Table sales = testutil::RandomSales(seed, 120);
  std::vector<std::string> all_dims = {"prod", "month", "state"};
  std::vector<std::string> dims(all_dims.begin(), all_dims.begin() + ndims);
  Result<Table> base = CubeByBase(sales, dims);
  std::vector<ExprPtr> eqs;
  for (const std::string& d : dims) eqs.push_back(Eq(BCol(d), RCol(d)));
  ExprPtr theta = CombineConjuncts(std::move(eqs));
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total"), Count("n")};
  Result<Table> fast = MdJoin(*base, sales, aggs, theta);
  Result<Table> ref = MdJoinReference(*base, sales, aggs, theta);
  ASSERT_TRUE(fast.ok() && ref.ok());
  EXPECT_TRUE(TablesEqualOrdered(*fast, *ref));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDims, CubeProperty,
    ::testing::Combine(::testing::Values(7, 11, 19), ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, int>>& info) {
      return "seed_" + std::to_string(std::get<0>(info.param)) + "_dims_" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mdjoin
