/// Edge cases not reached by the mainline suites: every ANALYZE BY generator
/// end-to-end, optimizer-rule rejection paths, wider cube lattices, and
/// partitioned-cube variants.

#include <gtest/gtest.h>

#include "analyze/binder.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "cube/partitioned_cube.h"
#include "cube/pipesort.h"
#include "expr/conjuncts.h"
#include "optimizer/executor.h"
#include "optimizer/rules.h"
#include "ra/group_by.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT

class GeneratorCoverage : public ::testing::Test {
 protected:
  void SetUp() override {
    sales_ = testutil::RandomSales(91, 200);
    ASSERT_TRUE(catalog_.Register("Sales", &sales_).ok());
  }

  Result<Table> Run(const std::string& sql) {
    Result<analyze::BoundQuery> bound = analyze::BindQueryString(sql, catalog_);
    if (!bound.ok()) return bound.status();
    return ExecutePlanCse(bound->plan, catalog_);
  }

  Table sales_;
  Catalog catalog_;
};

TEST_F(GeneratorCoverage, GroupingSetsQueryEndToEnd) {
  Result<Table> got = Run(
      "select prod, month, state, sum(sale) as total from Sales "
      "analyze by grouping_sets((prod, month), (state), ())");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  Result<Table> base = GroupingSetsBase(sales_, {"prod", "month", "state"},
                                        {{"prod", "month"}, {"state"}, {}});
  EXPECT_EQ(got->num_rows(), base->num_rows());
  // The () set contributes exactly one grand-total row.
  int grand = 0;
  double grand_total = 0;
  for (int64_t r = 0; r < sales_.num_rows(); ++r) {
    grand_total += sales_.Get(r, 6).AsDouble();
  }
  for (int64_t r = 0; r < got->num_rows(); ++r) {
    if (got->Get(r, 0).is_all() && got->Get(r, 1).is_all() && got->Get(r, 2).is_all()) {
      ++grand;
      EXPECT_DOUBLE_EQ(got->Get(r, 3).AsDouble(), grand_total);
    }
  }
  EXPECT_EQ(grand, 1);
}

TEST_F(GeneratorCoverage, RollupQueryEndToEnd) {
  Result<Table> got = Run(
      "select prod, month, count(*) as n from Sales analyze by rollup(prod, month)");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // (ALL, month) must never appear in a rollup.
  for (int64_t r = 0; r < got->num_rows(); ++r) {
    EXPECT_FALSE(got->Get(r, 0).is_all() && !got->Get(r, 1).is_all());
  }
  Result<Table> base = RollupBase(sales_, {"prod", "month"});
  EXPECT_EQ(got->num_rows(), base->num_rows());
}

TEST_F(GeneratorCoverage, CubeQueryWithVariableAndHaving) {
  // Generators compose with grouping variables: per cube cell, the count of
  // above-500 sales, restricted to cells with any data at all.
  Result<Table> got = Run(
      "select prod, month, count(*) as n, count(X.sale) as big from Sales "
      "analyze by cube(prod, month) "
      "such that X: X.prod = prod and X.month = month and X.sale > 500 "
      "having n > 0 order by n desc");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  for (int64_t r = 0; r < got->num_rows(); ++r) {
    EXPECT_LE(got->Get(r, 3).int64(), got->Get(r, 2).int64());
  }
}

TEST(RuleRejectionCoverage, CommuteAndSplitPatternMismatches) {
  Table sales = testutil::SmallSales();
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("sales", &sales).ok());
  PlanPtr not_nested = MdJoinPlan(TableRef("sales"), TableRef("sales"), {Count("n")},
                                  Eq(RCol("cust"), BCol("cust")));
  EXPECT_FALSE(CommuteMdJoins(not_nested, catalog).ok());
  EXPECT_FALSE(SplitToEquiJoin(not_nested, catalog).ok());
  EXPECT_FALSE(CommuteMdJoins(TableRef("sales"), catalog).ok());
  EXPECT_FALSE(FuseMdJoinSeries(TableRef("sales")).ok());
  EXPECT_FALSE(ApplyRollup(TableRef("sales"), 0b1).ok());
  EXPECT_FALSE(ExpandCubeBase(not_nested).ok());  // base is not CubeBase
  // Split rejects when the outer θ needs the inner's outputs.
  PlanPtr inner = MdJoinPlan(DistinctPlan(ProjectPlan(TableRef("sales"),
                                                      {{Col("cust"), "cust"}})),
                             TableRef("sales"), {Avg(RCol("sale"), "a")},
                             Eq(RCol("cust"), BCol("cust")));
  PlanPtr dependent = MdJoinPlan(inner, TableRef("sales"), {Count("n")},
                                 And(Eq(RCol("cust"), BCol("cust")),
                                     Gt(RCol("sale"), BCol("a"))));
  EXPECT_FALSE(SplitToEquiJoin(dependent, catalog).ok());
}

TEST(CubeWidthCoverage, FourDimensionalLattice) {
  Table sales = testutil::RandomSales(93, 150);
  std::vector<std::string> dims = {"prod", "month", "state", "year"};
  Result<CubeLattice> lattice = CubeLattice::Make(dims);
  ASSERT_TRUE(lattice.ok());
  EXPECT_EQ(lattice->AllCuboids().size(), 16u);
  // The direct MD-join over a 4-d cube still matches the oracle path:
  // spot-check totals through per-cuboid GROUP BYs of three granularities.
  Result<Table> base = CubeByBase(sales, dims);
  std::vector<ExprPtr> eqs;
  for (const std::string& d : dims) eqs.push_back(Eq(BCol(d), RCol(d)));
  Result<Table> cube = MdJoin(*base, sales, {Sum(RCol("sale"), "total")},
                              CombineConjuncts(std::move(eqs)));
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->num_rows(), base->num_rows());
  // PIPESORT plan covers all 16 cuboids with fewer than 16 sorts.
  auto cardinality = *CuboidCardinalities(sales, *lattice);
  Result<PipesortPlan> plan = BuildPipesortPlan(*lattice, cardinality);
  ASSERT_TRUE(plan.ok());
  size_t covered = 0;
  for (const auto& path : plan->paths) covered += path.size();
  EXPECT_EQ(covered, 16u);
  EXPECT_LT(plan->num_sorts(), 16);
  Result<Table> executed =
      ExecutePipesortPlan(*plan, sales, {Sum(RCol("sale"), "total")});
  ASSERT_TRUE(executed.ok());
  EXPECT_TRUE(TablesEqualUnordered(*executed, *cube));
}

TEST(PartitionedCubeCoverage, EveryDimensionAsPartitioner) {
  Table sales = testutil::RandomSales(95, 200);
  std::vector<std::string> dims = {"prod", "month"};
  Result<Table> base = CubeByBase(sales, dims);
  ExprPtr theta = And(Eq(BCol("prod"), RCol("prod")), Eq(BCol("month"), RCol("month")));
  Result<Table> direct = MdJoin(*base, sales, {Count("n")}, theta);
  ASSERT_TRUE(direct.ok());
  for (const std::string& partition_dim : dims) {
    PartitionedCubeStats stats;
    Result<Table> part =
        PartitionedCube(sales, dims, {Count("n")}, partition_dim, &stats);
    ASSERT_TRUE(part.ok()) << partition_dim;
    EXPECT_TRUE(TablesEqualUnordered(*part, *direct)) << partition_dim;
    EXPECT_EQ(stats.full_detail_scans, 1);
  }
}

TEST(PartitionedCubeCoverage, EmptyDetail) {
  Table empty{testutil::SalesSchema()};
  Result<Table> cube = PartitionedCube(empty, {"prod", "month"}, {Count("n")}, "prod");
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->num_rows(), 0);
}

TEST(EmptyInputCoverage, PipesortOnEmptyDetail) {
  Table empty{testutil::SalesSchema()};
  Result<CubeLattice> lattice = CubeLattice::Make({"prod", "month"});
  auto cardinality = *CuboidCardinalities(empty, *lattice);
  Result<PipesortPlan> plan = BuildPipesortPlan(*lattice, cardinality);
  ASSERT_TRUE(plan.ok());
  Result<Table> cube = ExecutePipesortPlan(*plan, empty, {Count("n")});
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_EQ(cube->num_rows(), 0);
}

TEST(GeneralizedCoverage, SharedDetailPredicateComponents) {
  // Components whose detail-only predicates overlap still evaluate each θ
  // independently (regression guard for the shared-scan early-continue).
  Table sales = testutil::RandomSales(97, 150);
  Result<Table> base = GroupByBase(sales, {"cust"});
  std::vector<MdJoinComponent> comps;
  comps.push_back({{Count("ny")},
                   And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit("NY")))});
  comps.push_back({{Count("all_states")}, Eq(RCol("cust"), BCol("cust"))});
  comps.push_back({{Count("expensive")},
                   And(Eq(RCol("cust"), BCol("cust")), Gt(RCol("sale"), Lit(450)))});
  Result<Table> fused = GeneralizedMdJoin(*base, sales, comps);
  ASSERT_TRUE(fused.ok());
  Table step = base->Clone();
  for (const MdJoinComponent& c : comps) {
    step = *MdJoin(step, sales, c.aggs, c.theta);
  }
  EXPECT_TRUE(TablesEqualOrdered(*fused, step));
  for (int64_t r = 0; r < fused->num_rows(); ++r) {
    EXPECT_LE(fused->Get(r, 1).int64(), fused->Get(r, 2).int64());
  }
}

}  // namespace
}  // namespace mdjoin
