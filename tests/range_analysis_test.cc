/// Interval abstract interpretation (analyze/range_analysis.h) and the
/// certified empty-result rewrite it licenses: derived facts must soundly
/// over-approximate θ's models, provably-empty θs must answer through the
/// EmptyRef rewrite bit-for-bit identically to the unoptimized plan with
/// zero detail rows scanned, and the satisfiability verdicts must respect
/// the evaluator's NULL / ALL / NaN corner semantics.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analyze/plan_analyzer.h"
#include "analyze/plan_invariants.h"
#include "analyze/range_analysis.h"
#include "optimizer/executor.h"
#include "optimizer/optimize.h"
#include "optimizer/rules.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using testutil::F;
using testutil::I;
using testutil::S;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Per-conjunct transfer functions
// ---------------------------------------------------------------------------

TEST(RangeAnalysis, OrderedComparisonDerivesWindowAndClearsNullAll) {
  RangeAnalysis a = AnalyzeRanges(Lt(RCol("sale"), Lit(5.0)));
  ASSERT_TRUE(a.satisfiable);
  const RangeFact* f = a.FindFact(Side::kDetail, "sale");
  ASSERT_NE(f, nullptr) << a.ToString();
  // Ordered comparisons are false on NULL and ALL, so both classes vanish.
  EXPECT_FALSE(f->range.may_be_null);
  EXPECT_FALSE(f->range.may_be_all);
  // Strict compare excludes NaN (NaN orders equal, so `< 5` is false on it).
  EXPECT_FALSE(f->range.may_be_nan);
  EXPECT_EQ(f->range.num_hi, 5.0);
  EXPECT_TRUE(f->range.num_hi_open);
  EXPECT_TRUE(f->range.Admits(F(4.0)));
  EXPECT_FALSE(f->range.Admits(F(5.0)));
  EXPECT_FALSE(f->range.Admits(Value::Null()));
  EXPECT_FALSE(f->range.Admits(Value::All()));
}

TEST(RangeAnalysis, ConjunctionMeetsWindows) {
  RangeAnalysis a =
      AnalyzeRanges(And(Ge(RCol("sale"), Lit(10.0)), Le(RCol("sale"), Lit(20.0))));
  ASSERT_TRUE(a.satisfiable);
  const RangeFact* f = a.FindFact(Side::kDetail, "sale");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->range.num_lo, 10.0);
  EXPECT_EQ(f->range.num_hi, 20.0);
  // Non-strict bounds: a NaN cell passes both `>= 10` and `<= 20`.
  EXPECT_TRUE(f->range.may_be_nan);
  EXPECT_TRUE(f->range.Admits(F(15.0)));
  EXPECT_FALSE(f->range.Admits(F(25.0)));
  EXPECT_TRUE(f->range.Admits(F(kNaN)));
}

TEST(RangeAnalysis, EqualityKeepsAllWildcard) {
  // θ-equality treats ALL as a wildcard, so `x = 5 AND x = 10` is NOT
  // unsatisfiable: an ALL cell matches both.
  RangeAnalysis a =
      AnalyzeRanges(And(Eq(RCol("prod"), Lit(5)), Eq(RCol("prod"), Lit(10))));
  EXPECT_TRUE(a.satisfiable) << a.ToString();
  const RangeFact* f = a.FindFact(Side::kDetail, "prod");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->range.may_be_all);
  EXPECT_FALSE(f->range.may_be_null);
  EXPECT_TRUE(f->range.Admits(Value::All()));
  EXPECT_FALSE(f->range.Admits(I(7)));
}

TEST(RangeAnalysis, ContradictoryStrictWindowIsUnsat) {
  // The acceptance example: R.x < 5 AND R.x > 10. Strict bounds exclude NaN
  // and the windows are disjoint — no value of any class survives.
  RangeAnalysis a =
      AnalyzeRanges(And(Lt(RCol("sale"), Lit(5.0)), Gt(RCol("sale"), Lit(10.0))));
  EXPECT_FALSE(a.satisfiable) << a.ToString();
  EXPECT_FALSE(a.unsat_reason.empty());
}

TEST(RangeAnalysis, NonStrictContradictionStaysSatisfiableViaNaN) {
  // `<= 5 AND >= 10` looks empty as an interval, but a NaN cell satisfies
  // both non-strict comparisons under Value::Compare's NaN-orders-equal
  // semantics. The analysis must NOT claim unsat.
  RangeAnalysis a =
      AnalyzeRanges(And(Le(RCol("sale"), Lit(5.0)), Ge(RCol("sale"), Lit(10.0))));
  EXPECT_TRUE(a.satisfiable) << a.ToString();
  const RangeFact* f = a.FindFact(Side::kDetail, "sale");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->range.may_be_nan);
  EXPECT_TRUE(f->range.Admits(F(kNaN)));
  EXPECT_FALSE(f->range.Admits(F(7.0)));
}

TEST(RangeAnalysis, NaNLiteralEndpoints) {
  // Strict compare against a NaN literal is false for every value.
  EXPECT_FALSE(AnalyzeRanges(Lt(RCol("sale"), Lit(kNaN))).satisfiable);
  EXPECT_FALSE(AnalyzeRanges(Gt(RCol("sale"), Lit(kNaN))).satisfiable);
  // Non-strict compare against NaN is true for every numeric value (and only
  // numeric): the fact keeps an unbounded window but drops NULL/ALL/strings.
  RangeAnalysis a = AnalyzeRanges(Le(RCol("sale"), Lit(kNaN)));
  ASSERT_TRUE(a.satisfiable);
  const RangeFact* f = a.FindFact(Side::kDetail, "sale");
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->range.may_be_null);
  EXPECT_FALSE(f->range.may_be_all);
  EXPECT_FALSE(f->range.may_be_string);
  EXPECT_TRUE(f->range.Admits(F(1e300)));
  EXPECT_FALSE(f->range.Admits(S("NY")));
}

TEST(RangeAnalysis, InfinityEndpointsAreOrdinaryBounds) {
  RangeAnalysis a = AnalyzeRanges(Le(RCol("sale"), Lit(-kInf)));
  ASSERT_TRUE(a.satisfiable);
  const RangeFact* f = a.FindFact(Side::kDetail, "sale");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->range.Admits(F(-kInf)));
  EXPECT_FALSE(f->range.Admits(F(0.0)));
}

TEST(RangeAnalysis, NullPredicates) {
  RangeAnalysis isnull = AnalyzeRanges(IsNull(RCol("state")));
  const RangeFact* f = isnull.FindFact(Side::kDetail, "state");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->range.Admits(Value::Null()));
  EXPECT_FALSE(f->range.Admits(S("NY")));

  RangeAnalysis notnull = AnalyzeRanges(Not(IsNull(RCol("state"))));
  f = notnull.FindFact(Side::kDetail, "state");
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->range.Admits(Value::Null()));
  EXPECT_TRUE(f->range.Admits(S("NY")));

  // NULL comparison literal never matches anything.
  EXPECT_FALSE(AnalyzeRanges(Eq(RCol("state"), Lit(Value::Null()))).satisfiable);
}

TEST(RangeAnalysis, StringWindowsAndInLists) {
  RangeAnalysis a = AnalyzeRanges(
      And(Ge(RCol("state"), Lit("CA")), Lt(RCol("state"), Lit("NY"))));
  ASSERT_TRUE(a.satisfiable);
  const RangeFact* f = a.FindFact(Side::kDetail, "state");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->range.Admits(S("CT")));
  EXPECT_FALSE(f->range.Admits(S("NY")));
  EXPECT_FALSE(f->range.Admits(F(1.0)));

  RangeAnalysis in = AnalyzeRanges(In(RCol("prod"), {I(2), I(4), I(9)}));
  f = in.FindFact(Side::kDetail, "prod");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->range.Admits(I(4)));
  EXPECT_FALSE(f->range.Admits(I(10)));
  // IN evaluates via MatchesEq: an ALL cell matches any candidate.
  EXPECT_TRUE(f->range.Admits(Value::All()));

  // IN with no non-null candidates matches nothing.
  EXPECT_FALSE(
      AnalyzeRanges(In(RCol("prod"), {Value::Null()})).satisfiable);
}

TEST(RangeAnalysis, DisjunctionJoinsArms) {
  RangeAnalysis a = AnalyzeRanges(
      Or(Lt(RCol("sale"), Lit(5.0)), Gt(RCol("sale"), Lit(100.0))));
  ASSERT_TRUE(a.satisfiable);
  const RangeFact* f = a.FindFact(Side::kDetail, "sale");
  ASSERT_NE(f, nullptr) << a.ToString();
  // The hull of the two arms: anything in between is admitted too (interval
  // domains cannot express holes), but NULL/ALL stay excluded since both
  // arms exclude them.
  EXPECT_TRUE(f->range.Admits(F(2.0)));
  EXPECT_TRUE(f->range.Admits(F(200.0)));
  EXPECT_FALSE(f->range.Admits(Value::Null()));
  EXPECT_FALSE(f->range.Admits(Value::All()));

  // An arm constraining a different column yields no common fact.
  RangeAnalysis mixed = AnalyzeRanges(
      Or(Lt(RCol("sale"), Lit(5.0)), Gt(RCol("prod"), Lit(3))));
  EXPECT_EQ(mixed.FindFact(Side::kDetail, "sale"), nullptr);
}

TEST(RangeAnalysis, TransferThroughEquiConjunct) {
  // B.cust = R.cust AND B.cust < 5: Observation 4.1 carries the base-side
  // window to the detail side.
  RangeAnalysis a = AnalyzeRanges(
      And(Eq(BCol("cust"), RCol("cust")), Lt(BCol("cust"), Lit(5))));
  ASSERT_TRUE(a.satisfiable);
  const RangeFact* base_fact = a.FindFact(Side::kBase, "cust");
  ASSERT_NE(base_fact, nullptr);
  EXPECT_FALSE(base_fact->from_transfer);
  const RangeFact* detail_fact = a.FindFact(Side::kDetail, "cust");
  ASSERT_NE(detail_fact, nullptr) << a.ToString();
  EXPECT_TRUE(detail_fact->from_transfer);
  EXPECT_EQ(detail_fact->range.num_hi, 5.0);
  // Transferred facts must readmit ALL: a detail ALL cell equi-matches any
  // base value.
  EXPECT_TRUE(detail_fact->range.Admits(Value::All()));
  EXPECT_FALSE(detail_fact->range.Admits(Value::Null()));
}

TEST(RangeAnalysis, ConstantFalseConjunctIsUnsat) {
  EXPECT_FALSE(AnalyzeRanges(And(Eq(Lit(1), Lit(2)), Lt(RCol("sale"), Lit(5.0))))
                   .satisfiable);
  EXPECT_TRUE(AnalyzeRanges(Eq(Lit(1), Lit(1))).satisfiable);
  // Null θ is trivially true.
  EXPECT_TRUE(AnalyzeRanges(nullptr).satisfiable);
}

// ---------------------------------------------------------------------------
// Zone-map export (ROADMAP item 1)
// ---------------------------------------------------------------------------

TEST(ZoneMap, CouldMatchPrunesDisjointBlocks) {
  RangeAnalysis a = AnalyzeRanges(
      And(Gt(RCol("sale"), Lit(100.0)), Lt(RCol("sale"), Lit(200.0))));
  ASSERT_TRUE(a.satisfiable);
  ASSERT_FALSE(a.zone_predicates.empty()) << a.ToString();
  const ZoneMapPredicate* z = nullptr;
  for (const ZoneMapPredicate& p : a.zone_predicates) {
    if (p.column == "sale") z = &p;
  }
  ASSERT_NE(z, nullptr);
  EXPECT_FALSE(z->allow_null);
  EXPECT_FALSE(z->allow_nan);
  // Block entirely below the window: prunable.
  EXPECT_FALSE(z->CouldMatch(0.0, 50.0, /*block_has_null=*/true));
  // Overlapping block: must be kept.
  EXPECT_TRUE(z->CouldMatch(150.0, 500.0, false));
  // Boundary-touching block against the strict bound: prunable.
  EXPECT_FALSE(z->CouldMatch(200.0, 300.0, false));
}

TEST(ZoneMap, NonStrictPredicateKeepsNaNBlocks) {
  RangeAnalysis a = AnalyzeRanges(Ge(RCol("sale"), Lit(100.0)));
  ASSERT_FALSE(a.zone_predicates.empty());
  const ZoneMapPredicate& z = a.zone_predicates.front();
  // may_be_nan survives `>=`, and min/max stats cannot witness NaN absence,
  // so no block is prunable on the numeric window alone... unless the reader
  // separately proves the block NaN-free. CouldMatch must stay conservative.
  EXPECT_TRUE(z.allow_nan);
  EXPECT_TRUE(z.CouldMatch(0.0, 50.0, false));
}

// ---------------------------------------------------------------------------
// Certified empty-result rewrite, end to end
// ---------------------------------------------------------------------------

class UnsatRewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sales_ = testutil::SmallSales();
    ASSERT_TRUE(catalog_.Register("sales", &sales_).ok());
  }

  PlanPtr DistinctCustBase() {
    return DistinctPlan(ProjectPlan(TableRef("sales"), {{Col("cust"), "cust"}}));
  }

  Table sales_;
  Catalog catalog_;
};

TEST_F(UnsatRewriteTest, CertificateIssuedOnlyWhenRefuted) {
  ExprPtr unsat = And(Lt(RCol("sale"), Lit(5.0)), Gt(RCol("sale"), Lit(10.0)));
  PlanPtr plan = MdJoinPlan(DistinctCustBase(), TableRef("sales"),
                            {Count("n"), Sum(RCol("sale"), "total")}, unsat);
  Result<UnsatThetaCertificate> cert = CertifyUnsatTheta(plan);
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  EXPECT_FALSE(cert->reason.empty());
  EXPECT_FALSE(cert->analysis.satisfiable);

  // Satisfiable θ: certificate refused.
  PlanPtr sat = MdJoinPlan(DistinctCustBase(), TableRef("sales"), {Count("n")},
                           Lt(RCol("sale"), Lit(5.0)));
  EXPECT_FALSE(CertifyUnsatTheta(sat).ok());
  // Non-MD-join root: refused.
  EXPECT_FALSE(CertifyUnsatTheta(TableRef("sales")).ok());
}

TEST_F(UnsatRewriteTest, RewriteIsBitIdenticalWithZeroDetailRowsScanned) {
  ExprPtr unsat = And(Lt(RCol("sale"), Lit(5.0)), Gt(RCol("sale"), Lit(10.0)));
  PlanPtr plan = MdJoinPlan(DistinctCustBase(), TableRef("sales"),
                            {Count("n"), Sum(RCol("sale"), "total"),
                             Min(RCol("sale"), "lo")},
                            unsat);

  // Unoptimized reference: every base row, empty-multiset aggregates.
  Result<Table> reference = ExecutePlan(plan, catalog_, {});
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  Result<PlanPtr> rewritten = ApplyUnsatThetaRewrite(plan, catalog_);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  ASSERT_EQ((*rewritten)->child(1)->kind(), PlanKind::kEmptyRef);

  QueryProfile profile;
  Result<Table> optimized = ExplainAnalyze(*rewritten, catalog_, {}, &profile);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();

  // Bit-identical: same rows, same order (MD-join preserves base order).
  EXPECT_TRUE(TablesEqualOrdered(*reference, *optimized))
      << "reference:\n" << reference->ToString() << "optimized:\n"
      << optimized->ToString();

  // The MD-join operator scanned zero detail rows.
  ASSERT_NE(profile.root, nullptr);
  EXPECT_TRUE(profile.root->is_mdjoin);
  EXPECT_EQ(profile.root->detail_rows_scanned, 0);

  // Idempotence: the rule refuses to fire again on its own output.
  EXPECT_FALSE(ApplyUnsatThetaRewrite(*rewritten, catalog_).ok());
}

TEST_F(UnsatRewriteTest, OptimizerAppliesRewriteAndReportsIt) {
  ExprPtr unsat = And(Lt(RCol("sale"), Lit(5.0)), Gt(RCol("sale"), Lit(10.0)));
  PlanPtr plan = MdJoinPlan(DistinctCustBase(), TableRef("sales"), {Count("n")},
                            unsat);
  OptimizeReport report;
  std::vector<RewriteRecord> log;
  Result<PlanPtr> optimized = OptimizePlan(plan, catalog_, {}, &report, &log);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  // Later rounds may push θ's R-only conjuncts into a σ above the EmptyRef;
  // either way the detail subtree must bottom out in the empty relation.
  PlanPtr detail = (*optimized)->child(1);
  while (detail->kind() == PlanKind::kFilter) detail = detail->child(0);
  EXPECT_EQ(detail->kind(), PlanKind::kEmptyRef) << ExplainPlan(*optimized);
  bool recorded = false;
  for (const RewriteRecord& r : log) {
    if (r.rule.find("unsat") != std::string::npos && r.accepted) recorded = true;
  }
  EXPECT_TRUE(recorded);

  Result<Table> ref = ExecutePlan(plan, catalog_, {});
  Result<Table> opt = ExecutePlan(*optimized, catalog_, {});
  ASSERT_TRUE(ref.ok() && opt.ok());
  EXPECT_TRUE(TablesEqualOrdered(*ref, *opt));

  // Disabled via options: plan untouched.
  OptimizeOptions off;
  off.enable_unsat_rewrite = false;
  Result<PlanPtr> untouched = OptimizePlan(plan, catalog_, off);
  ASSERT_TRUE(untouched.ok());
  EXPECT_NE((*untouched)->child(1)->kind(), PlanKind::kEmptyRef);
}

TEST_F(UnsatRewriteTest, SatisfiableThetaIsLeftAlone) {
  PlanPtr plan = MdJoinPlan(DistinctCustBase(), TableRef("sales"), {Count("n")},
                            And(Eq(BCol("cust"), RCol("cust")),
                                Le(RCol("sale"), Lit(5.0)),
                                Ge(RCol("sale"), Lit(10.0))));
  // <= / >= contradiction is NaN-satisfiable; the rewrite must NOT fire.
  EXPECT_FALSE(ApplyUnsatThetaRewrite(plan, catalog_).ok());
}

TEST_F(UnsatRewriteTest, StaticAnalysisSectionRendersInProfiles) {
  ExprPtr unsat = And(Lt(RCol("sale"), Lit(5.0)), Gt(RCol("sale"), Lit(10.0)));
  PlanPtr plan = MdJoinPlan(DistinctCustBase(), TableRef("sales"), {Count("n")},
                            unsat);
  std::vector<std::string> report = StaticAnalysisReport(plan, catalog_);
  ASSERT_FALSE(report.empty());
  bool has_verifier_line = false, has_unsat_line = false;
  for (const std::string& line : report) {
    if (line.find("bytecode") != std::string::npos) has_verifier_line = true;
    if (line.find("UNSATISFIABLE") != std::string::npos) has_unsat_line = true;
  }
  EXPECT_TRUE(has_verifier_line) << testing::PrintToString(report);
  EXPECT_TRUE(has_unsat_line) << testing::PrintToString(report);

  QueryProfile profile;
  Result<Table> result = ExplainAnalyze(plan, catalog_, {}, &profile);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(profile.analysis.empty());
  EXPECT_NE(profile.ToText().find("static analysis:"), std::string::npos);
  EXPECT_NE(profile.ToJson().find("\"analysis\""), std::string::npos);
}

TEST_F(UnsatRewriteTest, PushdownAndTransferCertificatesCarryRanges) {
  ExprPtr theta = And(Eq(BCol("cust"), RCol("cust")), Lt(RCol("sale"), Lit(100.0)));
  PlanPtr plan =
      MdJoinPlan(FilterPlan(DistinctCustBase(), Lt(BCol("cust"), Lit(3))),
                 TableRef("sales"), {Count("n")}, theta);
  Result<PushdownCertificate> push = CertifyDetailPushdown(plan);
  ASSERT_TRUE(push.ok()) << push.status().ToString();
  bool sale_range = false;
  for (const RangeFact& f : push->pushed_ranges) {
    if (f.column == "sale" && f.side == Side::kDetail) sale_range = true;
  }
  EXPECT_TRUE(sale_range);

  Result<TransferCertificate> transfer = CertifyEquiTransfer(plan);
  ASSERT_TRUE(transfer.ok()) << transfer.status().ToString();
  bool cust_transferred = false;
  for (const RangeFact& f : transfer->transferred_ranges) {
    if (f.column == "cust" && f.side == Side::kDetail && f.from_transfer) {
      cust_transferred = true;
    }
  }
  EXPECT_TRUE(cust_transferred);
}

}  // namespace
}  // namespace mdjoin
