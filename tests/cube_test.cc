#include <gtest/gtest.h>

#include "core/mdjoin.h"
#include "core/reference.h"
#include "cube/base_tables.h"
#include "cube/lattice.h"
#include "cube/partitioned_cube.h"
#include "cube/pipesort.h"
#include "expr/conjuncts.h"
#include "ra/group_by.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using testutil::I;

ExprPtr DimsTheta(const std::vector<std::string>& dims) {
  std::vector<ExprPtr> eqs;
  for (const std::string& d : dims) eqs.push_back(Eq(BCol(d), RCol(d)));
  return CombineConjuncts(std::move(eqs));
}

TEST(LatticeTest, Structure) {
  Result<CubeLattice> lat = CubeLattice::Make({"prod", "month", "state"});
  ASSERT_TRUE(lat.ok());
  EXPECT_EQ(lat->num_dims(), 3);
  EXPECT_EQ(lat->full_cuboid(), 0b111u);
  EXPECT_EQ(lat->AllCuboids().size(), 8u);
  EXPECT_EQ(lat->CuboidsAtLevel(1).size(), 3u);
  EXPECT_EQ(lat->CuboidsAtLevel(2).size(), 3u);
  EXPECT_EQ(CubeLattice::Level(0b101), 2);
}

TEST(LatticeTest, ParentChild) {
  EXPECT_TRUE(CubeLattice::IsParent(0b111, 0b110));
  EXPECT_TRUE(CubeLattice::IsParent(0b110, 0b010));
  EXPECT_FALSE(CubeLattice::IsParent(0b111, 0b001));  // two levels apart
  EXPECT_FALSE(CubeLattice::IsParent(0b110, 0b001));  // not a subset
  Result<CubeLattice> lat = CubeLattice::Make({"a", "b", "c"});
  std::vector<CuboidMask> parents = lat->ParentsOf(0b001);
  EXPECT_EQ(parents.size(), 2u);
}

TEST(LatticeTest, NamesAndAttrs) {
  Result<CubeLattice> lat = CubeLattice::Make({"prod", "month", "state"});
  EXPECT_EQ(lat->CuboidName(0b101), "(prod, ALL, state)");
  EXPECT_EQ(lat->CuboidAttrs(0b101), (std::vector<std::string>{"prod", "state"}));
  EXPECT_EQ(lat->CuboidAttrs(0), std::vector<std::string>{});
}

TEST(LatticeTest, Validation) {
  EXPECT_FALSE(CubeLattice::Make({}).ok());
  EXPECT_FALSE(CubeLattice::Make({"a", "a"}).ok());
}

TEST(BaseTablesTest, GroupByBaseIsDistinct) {
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->num_rows(), 4);
  EXPECT_EQ(base->num_columns(), 1);
}

TEST(BaseTablesTest, CubeByBaseHasAllCuboids) {
  Table sales = testutil::SmallSales();
  Result<Table> base = CubeByBase(sales, {"prod", "month"});
  ASSERT_TRUE(base.ok());
  // |cube| = |prod×month combos| + |prods| + |months| + 1.
  Result<Table> pm = DistinctOn(sales, {"prod", "month"});
  Result<Table> p = DistinctOn(sales, {"prod"});
  Result<Table> m = DistinctOn(sales, {"month"});
  EXPECT_EQ(base->num_rows(), pm->num_rows() + p->num_rows() + m->num_rows() + 1);
  // Exactly one (ALL, ALL) row.
  int all_all = 0;
  for (int64_t r = 0; r < base->num_rows(); ++r) {
    if (base->Get(r, 0).is_all() && base->Get(r, 1).is_all()) ++all_all;
  }
  EXPECT_EQ(all_all, 1);
}

TEST(BaseTablesTest, RollupBaseHasPrefixes) {
  Table sales = testutil::SmallSales();
  Result<Table> base = RollupBase(sales, {"prod", "month"});
  ASSERT_TRUE(base.ok());
  Result<Table> pm = DistinctOn(sales, {"prod", "month"});
  Result<Table> p = DistinctOn(sales, {"prod"});
  // (prod, month), (prod, ALL), (ALL, ALL) — but NOT (ALL, month).
  EXPECT_EQ(base->num_rows(), pm->num_rows() + p->num_rows() + 1);
  for (int64_t r = 0; r < base->num_rows(); ++r) {
    EXPECT_FALSE(base->Get(r, 0).is_all() && !base->Get(r, 1).is_all());
  }
}

TEST(BaseTablesTest, GroupingSetsSelectsCuboids) {
  Table sales = testutil::SmallSales();
  Result<Table> base =
      GroupingSetsBase(sales, {"prod", "month", "state"}, {{"prod"}, {"month"}, {"state"}});
  ASSERT_TRUE(base.ok());
  Result<Table> p = DistinctOn(sales, {"prod"});
  Result<Table> m = DistinctOn(sales, {"month"});
  Result<Table> s = DistinctOn(sales, {"state"});
  EXPECT_EQ(base->num_rows(), p->num_rows() + m->num_rows() + s->num_rows());
  // Unknown attribute rejected.
  EXPECT_FALSE(GroupingSetsBase(sales, {"prod"}, {{"month"}}).ok());
}

TEST(BaseTablesTest, UnpivotEqualsSingletonGroupingSets) {
  Table sales = testutil::SmallSales();
  Result<Table> unpivot = UnpivotBase(sales, {"prod", "month"});
  Result<Table> gs = GroupingSetsBase(sales, {"prod", "month"}, {{"prod"}, {"month"}});
  ASSERT_TRUE(unpivot.ok() && gs.ok());
  EXPECT_TRUE(TablesEqualUnordered(*unpivot, *gs));
}

TEST(BaseTablesTest, CuboidBaseSingleGranularity) {
  Table sales = testutil::SmallSales();
  Result<CubeLattice> lat = CubeLattice::Make({"prod", "month"});
  Result<Table> cuboid = CuboidBase(sales, *lat, 0b01);  // prod concrete, month ALL
  ASSERT_TRUE(cuboid.ok());
  EXPECT_EQ(cuboid->num_rows(), 2);  // prods 10, 20
  for (int64_t r = 0; r < cuboid->num_rows(); ++r) {
    EXPECT_FALSE(cuboid->Get(r, 0).is_all());
    EXPECT_TRUE(cuboid->Get(r, 1).is_all());
  }
}

TEST(BaseTablesTest, RowCuboidAndPartition) {
  Table sales = testutil::SmallSales();
  Result<CubeLattice> lat = CubeLattice::Make({"prod", "month"});
  Result<Table> base = CubeByBase(sales, {"prod", "month"});
  Result<std::vector<CuboidPartition>> parts = PartitionByCuboid(*base, *lat);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 4u);  // all four granularities occur
  int64_t total = 0;
  for (const CuboidPartition& p : *parts) {
    total += p.table.num_rows();
    for (int64_t r = 0; r < p.table.num_rows(); ++r) {
      EXPECT_EQ(*RowCuboid(p.table, *lat, r), p.mask);
    }
  }
  EXPECT_EQ(total, base->num_rows());
}

TEST(CubeMdJoinTest, Example21CubeViaMdJoin) {
  // Example 2.1: the full CUBE BY computed as one MD-join, validated against
  // per-cuboid GROUP BYs.
  Table sales = testutil::SmallSales();
  std::vector<std::string> dims = {"prod", "month"};
  Result<Table> base = CubeByBase(sales, dims);
  Result<Table> cube = MdJoin(*base, sales, {Sum(RCol("sale"), "total")}, DimsTheta(dims));
  ASSERT_TRUE(cube.ok());

  // Validate the (prod, ALL) cuboid against GROUP BY prod.
  Result<Table> by_prod = GroupBy(sales, {"prod"}, {Sum(Col("sale"), "total")});
  for (int64_t r = 0; r < cube->num_rows(); ++r) {
    if (!cube->Get(r, 0).is_all() && cube->Get(r, 1).is_all()) {
      bool matched = false;
      for (int64_t g = 0; g < by_prod->num_rows(); ++g) {
        if (by_prod->Get(g, 0).Equals(cube->Get(r, 0))) {
          matched = true;
          EXPECT_DOUBLE_EQ(cube->Get(r, 2).AsDouble(), by_prod->Get(g, 1).AsDouble());
        }
      }
      EXPECT_TRUE(matched);
    }
  }
}

TEST(PipesortTest, CardinalitiesAreDistinctCounts) {
  Table sales = testutil::SmallSales();
  Result<CubeLattice> lat = CubeLattice::Make({"prod", "month"});
  Result<std::map<CuboidMask, int64_t>> card = CuboidCardinalities(sales, *lat);
  ASSERT_TRUE(card.ok());
  EXPECT_EQ((*card)[0b00], 1);
  EXPECT_EQ((*card)[0b01], 2);  // prods
  EXPECT_EQ((*card)[0b10], 3);  // months
  EXPECT_EQ((*card)[0b11], DistinctOn(sales, {"prod", "month"})->num_rows());
}

TEST(PipesortTest, TwoDimPlanMatchesFigure2) {
  // Figure 2: cube over (A, B) yields the pipelined path AB -> A -> ALL and a
  // re-sort edge producing B.
  Table sales = testutil::SmallSales();
  Result<CubeLattice> lat = CubeLattice::Make({"month", "prod"});  // month: 3, prod: 2
  Result<std::map<CuboidMask, int64_t>> card = CuboidCardinalities(sales, *lat);
  Result<PipesortPlan> plan = BuildPipesortPlan(*lat, *card);
  ASSERT_TRUE(plan.ok());
  // One pipelined main path of length 3 (full -> single-dim -> grand total)
  // and one resorted path of length 1.
  ASSERT_EQ(plan->paths.size(), 2u);
  EXPECT_EQ(plan->paths[0].size(), 3u);
  EXPECT_EQ(plan->paths[0][0], lat->full_cuboid());
  EXPECT_EQ(plan->paths[1].size(), 1u);
  EXPECT_EQ(plan->num_sorts(), 2);  // initial sort + one re-sort
  // Every cuboid appears exactly once across paths.
  std::set<CuboidMask> seen;
  for (const auto& path : plan->paths) {
    for (CuboidMask m : path) EXPECT_TRUE(seen.insert(m).second);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(PipesortTest, ExecutionEqualsMdJoinCube) {
  Table sales = testutil::RandomSales(21, 200);
  std::vector<std::string> dims = {"prod", "month", "state"};
  Result<CubeLattice> lat = CubeLattice::Make(dims);
  Result<std::map<CuboidMask, int64_t>> card = CuboidCardinalities(sales, *lat);
  Result<PipesortPlan> plan = BuildPipesortPlan(*lat, *card);
  ASSERT_TRUE(plan.ok());
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total"), Count("n")};
  CubeExecStats stats;
  Result<Table> pipesort_cube = ExecutePipesortPlan(*plan, sales, aggs, &stats);
  ASSERT_TRUE(pipesort_cube.ok()) << pipesort_cube.status().ToString();

  Result<Table> base = CubeByBase(sales, dims);
  Result<Table> md_cube = MdJoin(*base, sales, aggs, DimsTheta(dims));
  ASSERT_TRUE(md_cube.ok());
  EXPECT_TRUE(TablesEqualUnordered(*pipesort_cube, *md_cube));
  EXPECT_LT(stats.sorts, 8);  // fewer sorts than cuboids: reuse happened
}

TEST(PipesortTest, RollupBeatsDetailOnlyOnWork) {
  Table sales = testutil::RandomSales(22, 400);
  std::vector<std::string> dims = {"prod", "month", "state"};
  Result<CubeLattice> lat = CubeLattice::Make(dims);
  Result<std::map<CuboidMask, int64_t>> card = CuboidCardinalities(sales, *lat);
  Result<PipesortPlan> plan = BuildPipesortPlan(*lat, *card);
  CubeExecStats pipe_stats, naive_stats;
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total")};
  Result<Table> a = ExecutePipesortPlan(*plan, sales, aggs, &pipe_stats);
  Result<Table> b = ComputeCubeFromDetailOnly(*lat, sales, aggs, &naive_stats);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(TablesEqualUnordered(*a, *b));
  // The naive strategy rescans the detail relation for all 8 cuboids.
  EXPECT_EQ(naive_stats.rows_scanned, 8 * sales.num_rows());
  EXPECT_LT(pipe_stats.rows_scanned, naive_stats.rows_scanned);
  EXPECT_LT(pipe_stats.sorts, naive_stats.sorts);
}

TEST(PipesortTest, RejectsNonDistributive) {
  Table sales = testutil::SmallSales();
  Result<CubeLattice> lat = CubeLattice::Make({"prod", "month"});
  Result<std::map<CuboidMask, int64_t>> card = CuboidCardinalities(sales, *lat);
  Result<PipesortPlan> plan = BuildPipesortPlan(*lat, *card);
  EXPECT_FALSE(ExecutePipesortPlan(*plan, sales, {Avg(RCol("sale"), "a")}).ok());
}

TEST(PartitionedCubeTest, EqualsDirectCube) {
  Table sales = testutil::RandomSales(23, 300);
  std::vector<std::string> dims = {"prod", "month"};
  PartitionedCubeStats stats;
  Result<Table> part =
      PartitionedCube(sales, dims, {Sum(RCol("sale"), "total")}, "month", &stats);
  ASSERT_TRUE(part.ok()) << part.status().ToString();
  Result<Table> base = CubeByBase(sales, dims);
  Result<Table> direct = MdJoin(*base, sales, {Sum(RCol("sale"), "total")},
                                DimsTheta(dims));
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(TablesEqualUnordered(*part, *direct));
  EXPECT_GT(stats.partitions, 1);
  EXPECT_EQ(stats.full_detail_scans, 1);  // only the Di=ALL slice
}

TEST(PartitionedCubeTest, RejectsUnknownPartitionDim) {
  Table sales = testutil::SmallSales();
  EXPECT_FALSE(PartitionedCube(sales, {"prod"}, {Count("n")}, "month").ok());
}

}  // namespace
}  // namespace mdjoin
