/// Death tests for programmer-error invariants: MDJ_CHECK aborts with a
/// diagnostic, Result::value() on an error dies, and out-of-contract Table
/// access is caught. These guard the boundary between recoverable errors
/// (Status/Result) and contract violations (abort). Also hosts the failpoint
/// matrix: every guardrail StatusCode injected via MDJOIN_FAILPOINTS must
/// surface as a recoverable Status with a message naming the failure — and a
/// task that throws inside the ThreadPool must abort with a diagnostic
/// rather than std::terminate mid-unwind.

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/query_guard.h"
#include "common/result.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "parallel/thread_pool.h"
#include "table/table_builder.h"
#include "tests/test_util.h"
#include "types/value.h"

namespace mdjoin {
namespace {

using DeathTest = ::testing::Test;

TEST(DeathTest, CheckAbortsWithMessage) {
  EXPECT_DEATH({ MDJ_CHECK(1 == 2) << "custom detail " << 42; },
               "check failed.*1 == 2.*custom detail 42");
}

TEST(DeathTest, CheckComparisonMacros) {
  EXPECT_DEATH({ MDJ_CHECK_EQ(1, 2); }, "check failed");
  EXPECT_DEATH({ MDJ_CHECK_LT(5, 3); }, "check failed");
  // Passing checks do not abort.
  MDJ_CHECK_LE(1, 1);
  MDJ_CHECK_NE(1, 2);
  MDJ_CHECK_GT(2, 1);
  MDJ_CHECK_GE(2, 2);
}

TEST(DeathTest, ResultValueOnErrorDies) {
  EXPECT_DEATH(
      {
        Result<int> r = Status::NotFound("nothing here");
        (void)r.value();
      },
      "nothing here");
}

TEST(DeathTest, ValueWrongAccessorDies) {
  EXPECT_DEATH({ (void)Value::String("x").int64(); }, "not int64");
  EXPECT_DEATH({ (void)Value::Int64(1).string(); }, "not string");
  EXPECT_DEATH({ (void)Value::Null().AsDouble(); }, "not numeric");
}

TEST(DeathTest, AppendRowOrDieOnTypeError) {
  EXPECT_DEATH(
      {
        TableBuilder b({{"k", DataType::kInt64}});
        b.AppendRowOrDie({Value::String("oops")});
      },
      "Type error");
}

// --- Failpoint matrix -------------------------------------------------------
// One row per guardrail StatusCode: inject the fault through a failpoint and
// assert the recoverable error that comes back names both the condition and
// the injection point, so operators can tell injected faults from real ones.

struct FailpointCase {
  const char* failpoint;     // what to arm
  StatusCode expected_code;  // what MdJoin must return
  const char* message_part;  // substring the status message must carry
};

class FailpointMatrixTest : public ::testing::TestWithParam<FailpointCase> {
 protected:
  void SetUp() override { FailpointRegistry::Global()->Reset(); }
  void TearDown() override { FailpointRegistry::Global()->Reset(); }
};

TEST_P(FailpointMatrixTest, InjectedFaultSurfacesAsStatus) {
  const FailpointCase& c = GetParam();
  Table sales = testutil::RandomSales(77, 200);
  Table base = *GroupByBase(sales, {"cust"});
  FailpointRegistry::Global()->Enable(c.failpoint, /*count=*/1);

  QueryGuard guard;
  MdJoinOptions options;
  options.guard = &guard;
  Result<Table> result = MdJoin(base, sales, {Count("n")},
                                dsl::Eq(dsl::RCol("cust"), dsl::BCol("cust")), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), c.expected_code) << result.status().ToString();
  EXPECT_NE(result.status().message().find(c.message_part), std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(FailpointRegistry::Global()->fire_count(c.failpoint), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Guardrails, FailpointMatrixTest,
    ::testing::Values(
        FailpointCase{"query_guard:cancel", StatusCode::kCancelled, "cancelled"},
        FailpointCase{"query_guard:deadline", StatusCode::kDeadlineExceeded,
                      "query_guard:deadline"},
        FailpointCase{"query_guard:reserve", StatusCode::kResourceExhausted,
                      "query_guard:reserve"}),
    [](const ::testing::TestParamInfo<FailpointCase>& info) {
      switch (info.param.expected_code) {
        case StatusCode::kCancelled: return "Cancelled";
        case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
        case StatusCode::kResourceExhausted: return "ResourceExhausted";
        default: return "Other";
      }
    });

TEST(DeathTest, ThreadPoolTrapsEscapingException) {
  // Library code is exception-free (Status/Result); an exception reaching the
  // worker loop is a contract violation. The pool aborts with the message
  // instead of letting std::terminate fire mid-unwind with no context.
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.Submit([] { throw std::runtime_error("task blew up"); });
        pool.Wait();
      },
      "uncaught exception.*task blew up");
}

}  // namespace
}  // namespace mdjoin
