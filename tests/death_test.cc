/// Death tests for programmer-error invariants: MDJ_CHECK aborts with a
/// diagnostic, Result::value() on an error dies, and out-of-contract Table
/// access is caught. These guard the boundary between recoverable errors
/// (Status/Result) and contract violations (abort).

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/result.h"
#include "table/table_builder.h"
#include "types/value.h"

namespace mdjoin {
namespace {

using DeathTest = ::testing::Test;

TEST(DeathTest, CheckAbortsWithMessage) {
  EXPECT_DEATH({ MDJ_CHECK(1 == 2) << "custom detail " << 42; },
               "check failed.*1 == 2.*custom detail 42");
}

TEST(DeathTest, CheckComparisonMacros) {
  EXPECT_DEATH({ MDJ_CHECK_EQ(1, 2); }, "check failed");
  EXPECT_DEATH({ MDJ_CHECK_LT(5, 3); }, "check failed");
  // Passing checks do not abort.
  MDJ_CHECK_LE(1, 1);
  MDJ_CHECK_NE(1, 2);
  MDJ_CHECK_GT(2, 1);
  MDJ_CHECK_GE(2, 2);
}

TEST(DeathTest, ResultValueOnErrorDies) {
  EXPECT_DEATH(
      {
        Result<int> r = Status::NotFound("nothing here");
        (void)r.value();
      },
      "nothing here");
}

TEST(DeathTest, ValueWrongAccessorDies) {
  EXPECT_DEATH({ (void)Value::String("x").int64(); }, "not int64");
  EXPECT_DEATH({ (void)Value::Int64(1).string(); }, "not string");
  EXPECT_DEATH({ (void)Value::Null().AsDouble(); }, "not numeric");
}

TEST(DeathTest, AppendRowOrDieOnTypeError) {
  EXPECT_DEATH(
      {
        TableBuilder b({{"k", DataType::kInt64}});
        b.AppendRowOrDie({Value::String("oops")});
      },
      "Type error");
}

}  // namespace
}  // namespace mdjoin
