/// Workload-telemetry coverage (DESIGN.md §15): AnalyzeTable statistics (HLL
/// NDV error bound, equi-depth histogram selectivity bound, θ-semantics of
/// SelectivityCmp), the plan-feedback store (EWMA folding, bounded FIFO
/// eviction, fingerprint stability), the query-history ring and its JSONL
/// round-trip, estimated-vs-actual EXPLAIN ANALYZE annotations, and the
/// feedback-convergence property: a repeated query's max Q-error strictly
/// decreases while results stay bit-identical.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "optimizer/cost.h"
#include "optimizer/executor.h"
#include "optimizer/optimize.h"
#include "optimizer/plan.h"
#include "server/query_service.h"
#include "stats/feedback.h"
#include "stats/query_log.h"
#include "stats/table_stats.h"
#include "table/table_builder.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using testutil::F;
using testutil::I;
using testutil::S;

// ---------------------------------------------------------------------------
// HLL NDV sketch

TEST(HllSketchTest, EstimateWithinErrorBound) {
  // Standard error at 1024 registers is ~3.3%; 15% is a generous property
  // bound that still catches a broken mix or register update.
  for (int64_t n : {10, 100, 1000, 20000}) {
    HllSketch sketch;
    for (int64_t i = 0; i < n; ++i) sketch.Add(Value::Int64(i * 7919 + 3));
    const double estimate = static_cast<double>(sketch.Estimate());
    EXPECT_GT(estimate, 0.85 * static_cast<double>(n)) << "n=" << n;
    EXPECT_LT(estimate, 1.15 * static_cast<double>(n)) << "n=" << n;
  }
}

TEST(HllSketchTest, SmallCardinalitiesNearExact) {
  // Linear counting makes tiny cardinalities essentially exact.
  HllSketch sketch;
  for (int64_t i = 0; i < 5; ++i) {
    sketch.Add(Value::Int64(i));
    sketch.Add(Value::Int64(i));  // duplicates must not inflate
  }
  EXPECT_GE(sketch.Estimate(), 4);
  EXPECT_LE(sketch.Estimate(), 6);
  EXPECT_GT(sketch.nonzero_registers(), 0);
}

// ---------------------------------------------------------------------------
// Equi-depth histograms + AnalyzeTable

TEST(AnalyzeTableTest, BasicsOnSmallSales) {
  Table sales = testutil::SmallSales();
  Result<TableStats> stats = AnalyzeTable(sales, "Sales");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->table_name, "Sales");
  EXPECT_EQ(stats->num_rows, 12);
  ASSERT_EQ(stats->columns.size(), 7u);

  const ColumnStats* cust = stats->FindColumn("cust");
  ASSERT_NE(cust, nullptr);
  EXPECT_EQ(cust->null_count, 0);
  EXPECT_EQ(cust->all_count, 0);
  EXPECT_EQ(cust->min.int64(), 1);
  EXPECT_EQ(cust->max.int64(), 4);
  // 4 distinct customers; HLL at tiny n is linear counting, near exact.
  EXPECT_GE(cust->ndv, 3);
  EXPECT_LE(cust->ndv, 5);
  EXPECT_TRUE(cust->histogram.valid());

  EXPECT_EQ(stats->FindColumn("no_such_column"), nullptr);
  // The summary names the table and every column.
  const std::string summary = stats->SummaryText();
  EXPECT_NE(summary.find("Sales"), std::string::npos);
  EXPECT_NE(summary.find("cust"), std::string::npos);
}

TEST(AnalyzeTableTest, EquiDepthSelectivityBound) {
  // Classic equi-depth bound: a range estimate is off by at most ~1 bucket's
  // worth of rows. We pin 2/buckets + epsilon on a skewed random column.
  const int64_t rows = 4000;
  Table sales = testutil::RandomSales(/*seed=*/42, rows);
  AnalyzeOptions options;
  options.histogram_buckets = 32;
  Result<TableStats> stats = AnalyzeTable(sales, "Sales", options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const ColumnStats* sale = stats->FindColumn("sale");
  ASSERT_NE(sale, nullptr);
  ASSERT_TRUE(sale->histogram.valid());

  const double bound = 2.0 / options.histogram_buckets + 0.02;
  for (double v : {25.0, 100.0, 250.0, 400.0, 499.0}) {
    int64_t true_count = 0;
    for (int64_t i = 0; i < rows; ++i) {
      if (sales.column(6)[i].float64() <= v) ++true_count;
    }
    const double true_frac = static_cast<double>(true_count) / rows;
    const double est_frac = sale->histogram.FractionLessOrEqual(Value::Float64(v));
    EXPECT_NEAR(est_frac, true_frac, bound) << "v=" << v;
  }
}

TEST(AnalyzeTableTest, SelectivityCmpThetaSemantics) {
  // A base-values-style column: plain values, ALL markers, and NULLs.
  TableBuilder b(Schema({{"d", DataType::kInt64}}));
  for (int64_t i = 0; i < 8; ++i) b.AppendRowOrDie({I(i % 4)});
  b.AppendRowOrDie({Value::All()});
  b.AppendRowOrDie({Value::All()});
  b.AppendRowOrDie({Value::Null()});
  Table t = std::move(b).Finish();

  Result<TableStats> stats = AnalyzeTable(t, "base_values");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const ColumnStats* d = stats->FindColumn("d");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->all_count, 2);
  EXPECT_EQ(d->null_count, 1);

  // kEq folds the ALL wildcard fraction in; ordered comparisons never match
  // ALL or NULL rows, so their selectivity cannot reach 1.
  const double eq_in_range = d->SelectivityCmp(CmpOp::kEq, Value::Int64(2));
  EXPECT_GE(eq_in_range, 2.0 / 11);  // at least the ALL rows match
  const double eq_out_of_range = d->SelectivityCmp(CmpOp::kEq, Value::Int64(99));
  EXPECT_GE(eq_out_of_range, 0);
  EXPECT_LE(eq_out_of_range, 2.0 / 11 + 1e-9);  // only the ALL rows
  const double le_max = d->SelectivityCmp(CmpOp::kLe, Value::Int64(3));
  EXPECT_LE(le_max, 8.0 / 11 + 1e-9);
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    const double s = d->SelectivityCmp(op, Value::Int64(1));
    EXPECT_GE(s, 0);
    EXPECT_LE(s, 1);
  }
}

// ---------------------------------------------------------------------------
// Feedback store

TEST(FeedbackStoreTest, EwmaFoldAndLookup) {
  FeedbackStore store;
  EXPECT_FALSE(store.Lookup(1).has_value());
  store.Record(1, /*output_rows=*/100);
  auto first = store.Lookup(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(first->output_rows, 100);  // first observation seeds
  EXPECT_EQ(first->observations, 1);
  store.Record(1, /*output_rows=*/50);
  auto second = store.Lookup(1);
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(second->output_rows, 75);  // 0.5*50 + 0.5*100
  EXPECT_EQ(second->observations, 2);
  // A negative field leaves the previous value untouched.
  store.Record(1, /*output_rows=*/-1, /*detail_rows_scanned=*/300);
  auto third = store.Lookup(1);
  ASSERT_TRUE(third.has_value());
  EXPECT_DOUBLE_EQ(third->output_rows, 75);
  EXPECT_DOUBLE_EQ(third->detail_rows_scanned, 300);
}

TEST(FeedbackStoreTest, BoundedFifoEviction) {
  FeedbackStore::Options options;
  options.max_entries = 4;
  FeedbackStore store(options);
  for (uint64_t fp = 1; fp <= 6; ++fp) store.Record(fp, 10.0 * fp);
  EXPECT_EQ(store.size(), 4);
  EXPECT_FALSE(store.Lookup(1).has_value());  // oldest two evicted
  EXPECT_FALSE(store.Lookup(2).has_value());
  EXPECT_TRUE(store.Lookup(5).has_value());
  EXPECT_TRUE(store.Lookup(6).has_value());
  store.Clear();
  EXPECT_EQ(store.size(), 0);
}

TEST(FeedbackStoreTest, PlanFingerprintIdentity) {
  // FNV-1a offset basis for the empty string, by definition.
  EXPECT_EQ(FingerprintString(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(FingerprintString("a"), FingerprintString("b"));

  Table sales = testutil::SmallSales();
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", &sales).ok());
  PlanPtr base = DistinctPlan(ProjectPlan(TableRef("Sales"), {{Col("cust"), "cust"}}));
  PlanPtr p1 = MdJoinPlan(base, TableRef("Sales"), {Count("n")},
                          Eq(RCol("cust"), BCol("cust")));
  PlanPtr p2 = MdJoinPlan(base, TableRef("Sales"), {Count("n")},
                          Eq(RCol("cust"), BCol("cust")));
  PlanPtr p3 = MdJoinPlan(base, TableRef("Sales"), {Count("n")},
                          Eq(RCol("prod"), BCol("cust")));
  EXPECT_EQ(PlanFingerprint(p1), PlanFingerprint(p2));  // structural identity
  EXPECT_NE(PlanFingerprint(p1), PlanFingerprint(p3));
}

// ---------------------------------------------------------------------------
// Query history + JSONL log

TEST(QueryLogTest, JsonlRoundTrip) {
  QueryRecord record;
  record.fingerprint = 0xdeadbeefcafef00dULL;
  record.plan_hash = 42;
  record.wall_ms = 12.5;
  record.cpu_ms = 3.25;
  record.rows = 1000;
  record.outcome = "deadline";
  record.cache = "rollup";
  record.queue_wait_ms = 7;
  record.detail_rows_scanned = 123456;
  record.blocks_read = 17;
  record.spill_bytes = 4096;
  record.guard_tripped = true;
  record.max_qerror = 2.75;
  record.slow = true;

  Result<QueryRecord> parsed = QueryRecord::FromJsonl(record.ToJsonl());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->fingerprint, record.fingerprint);
  EXPECT_EQ(parsed->plan_hash, record.plan_hash);
  EXPECT_DOUBLE_EQ(parsed->wall_ms, record.wall_ms);
  EXPECT_DOUBLE_EQ(parsed->cpu_ms, record.cpu_ms);
  EXPECT_EQ(parsed->rows, record.rows);
  EXPECT_EQ(parsed->outcome, record.outcome);
  EXPECT_EQ(parsed->cache, record.cache);
  EXPECT_EQ(parsed->queue_wait_ms, record.queue_wait_ms);
  EXPECT_EQ(parsed->detail_rows_scanned, record.detail_rows_scanned);
  EXPECT_EQ(parsed->blocks_read, record.blocks_read);
  EXPECT_EQ(parsed->spill_bytes, record.spill_bytes);
  EXPECT_EQ(parsed->guard_tripped, record.guard_tripped);
  EXPECT_DOUBLE_EQ(parsed->max_qerror, record.max_qerror);
  EXPECT_EQ(parsed->slow, record.slow);

  EXPECT_FALSE(QueryRecord::FromJsonl("{}").ok());
  EXPECT_FALSE(QueryRecord::FromJsonl("not json").ok());
}

TEST(QueryLogTest, RingEvictsOldestAndLogsJsonl) {
  const std::string path = ::testing::TempDir() + "/stats_test_qlog.jsonl";
  std::remove(path.c_str());
  {
    QueryHistory::Options options;
    options.capacity = 4;
    options.log_path = path;
    QueryHistory history(options);
    for (int i = 1; i <= 6; ++i) {
      QueryRecord record;
      record.fingerprint = static_cast<uint64_t>(i);
      record.rows = i;
      history.Record(std::move(record));
    }
    EXPECT_EQ(history.total_recorded(), 6);
    std::vector<QueryRecord> ring = history.Snapshot();
    ASSERT_EQ(ring.size(), 4u);
    // Oldest-first rotation: 3, 4, 5, 6.
    for (size_t i = 0; i < ring.size(); ++i) {
      EXPECT_EQ(ring[i].fingerprint, i + 3) << "i=" << i;
    }
    EXPECT_NE(history.SummaryText().find("6"), std::string::npos);
  }
  // The JSONL file holds all six records, each line parseable.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    Result<QueryRecord> parsed = QueryRecord::FromJsonl(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << " line: " << line;
    EXPECT_EQ(parsed->fingerprint, static_cast<uint64_t>(lines + 1));
    ++lines;
  }
  EXPECT_EQ(lines, 6);
  std::remove(path.c_str());
}

TEST(QueryLogTest, SlowQueryDetection) {
  QueryHistory::Options options;
  options.capacity = 8;
  options.slow_query_ms = 10;
  QueryHistory history(options);
  QueryRecord fast;
  fast.wall_ms = 2;
  history.Record(std::move(fast));
  QueryRecord slow;
  slow.wall_ms = 50;
  history.Record(std::move(slow));
  std::vector<QueryRecord> ring = history.Snapshot();
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_FALSE(ring[0].slow);
  EXPECT_TRUE(ring[1].slow);
}

// ---------------------------------------------------------------------------
// Catalog stats registration + cost model

TEST(StatsCostTest, RegisterStatsAndEstimate) {
  Table sales = testutil::RandomSales(/*seed=*/3, 2000);
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", &sales).ok());
  EXPECT_EQ(catalog.FindStats("Sales"), nullptr);
  Result<TableStats> stats = AnalyzeTable(sales, "Sales");
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(catalog.RegisterStats("NoSuchTable", &*stats).ok());
  ASSERT_TRUE(catalog.RegisterStats("Sales", &*stats).ok());
  EXPECT_EQ(catalog.FindStats("Sales"), &*stats);

  // Filter selectivity now comes from the histogram: a narrow predicate must
  // estimate fewer rows than the 0.3-constant fallback would.
  PlanPtr narrow = FilterPlan(TableRef("Sales"), Lt(Col("sale"), Lit(Value::Float64(10))));
  Result<PlanCost> with_stats = EstimateCost(narrow, catalog);
  ASSERT_TRUE(with_stats.ok()) << with_stats.status().ToString();
  EXPECT_LT(with_stats->output_rows, 0.3 * 2000);
}

TEST(StatsCostTest, ResultsIdenticalWithAndWithoutStats) {
  Table sales = testutil::RandomSales(/*seed=*/9, 1500);
  PlanPtr plan = MdJoinPlan(
      CubeBasePlan(TableRef("Sales"), {"prod", "month"}), TableRef("Sales"),
      {Sum(RCol("sale"), "total"), Count("n")},
      And(Eq(BCol("prod"), RCol("prod")), Eq(BCol("month"), RCol("month"))));

  Catalog plain;
  ASSERT_TRUE(plain.Register("Sales", &sales).ok());
  Result<PlanPtr> optimized_plain = OptimizePlan(plan, plain);
  ASSERT_TRUE(optimized_plain.ok());
  Result<Table> result_plain = ExecutePlanCse(*optimized_plain, plain);
  ASSERT_TRUE(result_plain.ok());

  Catalog with_stats;
  ASSERT_TRUE(with_stats.Register("Sales", &sales).ok());
  Result<TableStats> stats = AnalyzeTable(sales, "Sales");
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(with_stats.RegisterStats("Sales", &*stats).ok());
  Result<PlanPtr> optimized_stats = OptimizePlan(plan, with_stats);
  ASSERT_TRUE(optimized_stats.ok());
  Result<Table> result_stats = ExecutePlanCse(*optimized_stats, with_stats);
  ASSERT_TRUE(result_stats.ok());

  // Statistics are advisory: plan choices may differ, results may not.
  EXPECT_TRUE(TablesEqualUnordered(*result_plain, *result_stats));
}

TEST(StatsCostTest, QErrorFloorsAndSymmetry) {
  EXPECT_DOUBLE_EQ(QError(100, 100), 1.0);
  EXPECT_DOUBLE_EQ(QError(200, 100), 2.0);
  EXPECT_DOUBLE_EQ(QError(100, 200), 2.0);
  EXPECT_DOUBLE_EQ(QError(0, 0), 1.0);  // both floored to one row
  EXPECT_GE(QError(0, 50), 1.0);
}

// ---------------------------------------------------------------------------
// Estimated-vs-actual instrumentation + feedback convergence

TEST(EstimateActualTest, ExplainAnalyzeAnnotatesEstimates) {
  Table sales = testutil::RandomSales(/*seed=*/5, 1000);
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", &sales).ok());
  PlanPtr base = DistinctPlan(ProjectPlan(TableRef("Sales"), {{Col("cust"), "cust"}}));
  PlanPtr plan = MdJoinPlan(base, TableRef("Sales"), {Count("n")},
                            Eq(RCol("cust"), BCol("cust")));

  QueryProfile profile;
  Result<Table> result = ExplainAnalyze(plan, catalog, {}, &profile);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(profile.root, nullptr);
  EXPECT_GE(profile.root->est_rows, 0);
  EXPECT_GE(profile.root->qerror(), 1.0);
  EXPECT_GE(profile.max_qerror, 1.0);

  const std::string text = profile.ToText();
  EXPECT_NE(text.find("est="), std::string::npos);
  EXPECT_NE(text.find("act="), std::string::npos);
  EXPECT_NE(text.find("qerr="), std::string::npos);
  EXPECT_NE(text.find("max q-error:"), std::string::npos);
  const std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"est_rows\""), std::string::npos);
  EXPECT_NE(json.find("\"max_qerror\""), std::string::npos);
}

TEST(EstimateActualTest, FeedbackConvergenceOnRepeatedCubeQuery) {
  Table sales = testutil::RandomSales(/*seed=*/11, 3000);
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", &sales).ok());
  PlanPtr plan = MdJoinPlan(
      CubeBasePlan(TableRef("Sales"), {"prod", "month"}), TableRef("Sales"),
      {Sum(RCol("sale"), "total"), Count("n")},
      And(Eq(BCol("prod"), RCol("prod")), Eq(BCol("month"), RCol("month"))));

  FeedbackStore feedback;
  MdJoinOptions options;
  options.feedback = &feedback;

  QueryProfile run1;
  Result<Table> result1 = ExplainAnalyze(plan, catalog, options, &run1);
  ASSERT_TRUE(result1.ok()) << result1.status().ToString();
  EXPECT_GT(feedback.size(), 0);  // harvest happened

  QueryProfile run2;
  Result<Table> result2 = ExplainAnalyze(plan, catalog, options, &run2);
  ASSERT_TRUE(result2.ok()) << result2.status().ToString();

  // Run 2 estimates from run 1's measurements: strictly better, and the
  // results are bit-identical (feedback is advisory).
  EXPECT_GE(run1.max_qerror, 1.0);
  EXPECT_GE(run2.max_qerror, 1.0);
  EXPECT_LT(run2.max_qerror, run1.max_qerror);
  EXPECT_TRUE(TablesEqualUnordered(*result1, *result2));
}

TEST(EstimateActualTest, ServiceCollectsFeedbackAndHistory) {
  Table sales = testutil::RandomSales(/*seed=*/13, 1200);
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", &sales).ok());
  PlanPtr base = DistinctPlan(ProjectPlan(TableRef("Sales"), {{Col("prod"), "prod"}}));
  PlanPtr plan = MdJoinPlan(base, TableRef("Sales"), {Count("n")},
                            Eq(RCol("prod"), BCol("prod")));

  QueryServiceOptions options;
  options.collect_feedback = true;
  options.cache_capacity_bytes = 0;  // force both runs through the engine
  QueryService service(catalog, options);
  auto session = service.OpenSession();
  ASSERT_TRUE(session->Execute(plan).ok());
  ASSERT_TRUE(session->Execute(plan).ok());

  EXPECT_GT(service.feedback().size(), 0);
  ASSERT_NE(service.history(), nullptr);
  std::vector<QueryRecord> records = service.history()->Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].outcome, "ok");
  EXPECT_EQ(records[0].fingerprint, records[1].fingerprint);
  EXPECT_GE(records[0].max_qerror, 1.0);
  EXPECT_GE(records[1].max_qerror, 1.0);
  // Same convergence property through the service path.
  EXPECT_LE(records[1].max_qerror, records[0].max_qerror);
}

// ---------------------------------------------------------------------------
// Optimizer satellite: split rule record + feedback-threaded costing

TEST(OptimizerStatsTest, SplitRuleIsOptInAndRecorded) {
  Table sales = testutil::SmallSales();
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", &sales).ok());
  PlanPtr base = DistinctPlan(ProjectPlan(TableRef("Sales"), {{Col("cust"), "cust"}}));
  PlanPtr inner = MdJoinPlan(base, TableRef("Sales"), {Sum(RCol("sale"), "t1")},
                             Eq(RCol("cust"), BCol("cust")));
  PlanPtr plan = MdJoinPlan(inner, TableRef("Sales"), {Count("n2")},
                            Eq(RCol("cust"), BCol("cust")));

  // Off by default: no Theorem 4.4 records.
  std::vector<RewriteRecord> default_log;
  Result<PlanPtr> default_plan = OptimizePlan(plan, catalog, {}, nullptr, &default_log);
  ASSERT_TRUE(default_plan.ok());
  for (const RewriteRecord& r : default_log) {
    EXPECT_EQ(r.rule.find("Theorem 4.4"), std::string::npos) << r.rule;
  }

  OptimizeOptions options;
  options.enable_split = true;
  // Fusion would collapse the chain into one generalized MD-join before the
  // split pattern can match; turn it off to isolate the Theorem 4.4 site.
  options.enable_fusion = false;
  std::vector<RewriteRecord> log;
  Result<PlanPtr> optimized = OptimizePlan(plan, catalog, options, nullptr, &log);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  bool saw_split = false;
  for (const RewriteRecord& r : log) {
    if (r.rule.find("Theorem 4.4") == std::string::npos) continue;
    saw_split = true;
    EXPECT_FALSE(r.detail.empty());
  }
  EXPECT_TRUE(saw_split);
  // Whatever the cost model decided, results are unchanged.
  Result<Table> before = ExecutePlanCse(plan, catalog);
  Result<Table> after = ExecutePlanCse(*optimized, catalog);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(TablesEqualUnordered(*before, *after));
}

TEST(OptimizerStatsTest, RewriteRecordsCarryCosts) {
  Table sales = testutil::SmallSales();
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", &sales).ok());
  PlanPtr base = DistinctPlan(ProjectPlan(TableRef("Sales"), {{Col("cust"), "cust"}}));
  // A detail-only conjunct makes Theorem 4.2 pushdown fire.
  PlanPtr plan = MdJoinPlan(base, TableRef("Sales"), {Count("n")},
                            And(Eq(RCol("cust"), BCol("cust")),
                                Gt(RCol("sale"), Lit(Value::Float64(100)))));
  std::vector<RewriteRecord> log;
  Result<PlanPtr> optimized = OptimizePlan(plan, catalog, {}, nullptr, &log);
  ASSERT_TRUE(optimized.ok());
  ASSERT_FALSE(log.empty());
  for (const RewriteRecord& r : log) {
    if (!r.accepted) continue;
    EXPECT_GT(r.cost_before, 0) << r.rule;
    EXPECT_GT(r.cost_after, 0) << r.rule;
    EXPECT_LE(r.cost_after, r.cost_before) << r.rule;
  }
}

// ---------------------------------------------------------------------------
// Metrics satellites: quantiles + build info

TEST(MetricsStatsTest, HistogramQuantiles) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Histogram* h = reg.GetHistogram("stats_test_quantile_hist",
                                  {10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
                                  "quantile test");
  ASSERT_NE(h, nullptr);
  h->Reset();
  for (int64_t v = 1; v <= 100; ++v) h->Observe(v);
  for (const MetricSample& s : reg.Snapshot()) {
    if (s.name != "stats_test_quantile_hist") continue;
    // Uniform 1..100: interpolated quantiles land within one bucket width.
    EXPECT_NEAR(s.p50, 50, 10);
    EXPECT_NEAR(s.p90, 90, 10);
    EXPECT_NEAR(s.p99, 99, 10);
  }
  const std::string text = reg.RenderText();
  EXPECT_NE(text.find("stats_test_quantile_hist{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("stats_test_quantile_hist{quantile=\"0.99\"}"),
            std::string::npos);
  const std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsStatsTest, BuildInfoInBothExpositions) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const std::string text = reg.RenderText();
  EXPECT_NE(text.find("mdjoin_build_info{git_sha=\""), std::string::npos);
  EXPECT_NE(text.find("build_type=\""), std::string::npos);
  const std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"mdjoin_build_info\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(std::string(BuildInfoGitSha()), "");
  EXPECT_NE(std::string(BuildInfoBuildType()), "");
}

}  // namespace
}  // namespace mdjoin
