/// Every worked example in the paper, built twice: as MD-join plans and as
/// classical relational-algebra baselines (the multi-block SQL shape §2
/// complains about). The pairs must agree exactly.

#include <gtest/gtest.h>

#include "core/generalized.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "expr/conjuncts.h"
#include "ra/filter.h"
#include "ra/group_by.h"
#include "ra/join.h"
#include "ra/project.h"
#include "table/table_ops.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT

ExprPtr DimsTheta(const std::vector<std::string>& dims) {
  std::vector<ExprPtr> eqs;
  for (const std::string& d : dims) eqs.push_back(Eq(BCol(d), RCol(d)));
  return CombineConjuncts(std::move(eqs));
}

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override { sales_ = testutil::RandomSales(101, 300); }
  Table sales_;
};

TEST_F(PaperExamplesTest, Example21_CubeBy) {
  // "total sales broken down by all combinations of prod, month, state".
  std::vector<std::string> dims = {"prod", "month", "state"};
  Result<Table> base = CubeByBase(sales_, dims);
  Result<Table> md_cube = MdJoin(*base, sales_, {Sum(RCol("sale"), "total")},
                                 DimsTheta(dims));
  ASSERT_TRUE(md_cube.ok()) << md_cube.status().ToString();

  // Baseline: eight GROUP BYs, one per cuboid, widened with ALL and unioned.
  Result<CubeLattice> lattice = CubeLattice::Make(dims);
  std::vector<Table> pieces;
  for (CuboidMask mask : lattice->AllCuboids()) {
    std::vector<std::string> attrs = lattice->CuboidAttrs(mask);
    Table grouped = attrs.empty()
                        ? *AggregateAll(sales_, {Sum(Col("sale"), "total")})
                        : *GroupBy(sales_, attrs, {Sum(Col("sale"), "total")});
    // Widen to (prod, month, state, total) with ALL.
    Table widened{Schema({{"prod", DataType::kInt64},
                          {"month", DataType::kInt64},
                          {"state", DataType::kString},
                          {"total", DataType::kFloat64}})};
    for (int64_t r = 0; r < grouped.num_rows(); ++r) {
      std::vector<Value> row(4, Value::All());
      for (size_t a = 0; a < attrs.size(); ++a) {
        int dim_pos = attrs[a] == "prod" ? 0 : attrs[a] == "month" ? 1 : 2;
        row[static_cast<size_t>(dim_pos)] = grouped.Get(r, static_cast<int>(a));
      }
      row[3] = grouped.Get(r, static_cast<int>(attrs.size()));
      widened.AppendRowUnchecked(std::move(row));
    }
    pieces.push_back(std::move(widened));
  }
  Result<Table> baseline = ConcatAll(pieces);
  ASSERT_TRUE(baseline.ok());
  EXPECT_TRUE(TablesEqualUnordered(*md_cube, *baseline));
}

TEST_F(PaperExamplesTest, Example22_TriStatePivot) {
  // Per-customer average sale in NY, NJ, CT — a single generalized MD-join
  // vs the 4-subquery + 3-outer-join SQL plan the paper describes.
  Result<Table> base = GroupByBase(sales_, {"cust"});
  auto theta = [](const char* st) {
    return And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit(st)));
  };
  std::vector<MdJoinComponent> comps;
  comps.push_back({{Avg(RCol("sale"), "avg_ny")}, theta("NY")});
  comps.push_back({{Avg(RCol("sale"), "avg_nj")}, theta("NJ")});
  comps.push_back({{Avg(RCol("sale"), "avg_ct")}, theta("CT")});
  Result<Table> md = GeneralizedMdJoin(*base, sales_, comps);
  ASSERT_TRUE(md.ok()) << md.status().ToString();

  // Baseline: distinct customers, three per-state GROUP BY subqueries, three
  // left outer joins.
  Table result = base->Clone();
  for (const auto& [state, name] : std::vector<std::pair<const char*, const char*>>{
           {"NY", "avg_ny"}, {"NJ", "avg_nj"}, {"CT", "avg_ct"}}) {
    Result<Table> sub = Filter(sales_, Eq(Col("state"), Lit(state)));
    Result<Table> grouped = GroupBy(*sub, {"cust"}, {Avg(Col("sale"), name)});
    Result<Table> joined =
        HashJoin(result, *grouped, {"cust"}, {"cust"}, JoinType::kLeftOuter);
    ASSERT_TRUE(joined.ok());
    result = std::move(*joined);
  }
  EXPECT_TRUE(TablesEqualUnordered(*md, result));
}

TEST_F(PaperExamplesTest, Example23_CountAboveCubeAverage) {
  // "how many sales were above the average sale" per cube cell: two chained
  // MD-joins over a cube base (Example 3.2's algebra).
  std::vector<std::string> dims = {"prod", "month"};
  Result<Table> base = CubeByBase(sales_, dims);
  Result<Table> with_avg = MdJoin(*base, sales_, {Avg(RCol("sale"), "avg_sale")},
                                  DimsTheta(dims));
  ASSERT_TRUE(with_avg.ok());
  ExprPtr theta2 = And(DimsTheta(dims), Gt(RCol("sale"), BCol("avg_sale")));
  Result<Table> md = MdJoin(*with_avg, sales_, {Count("above_avg")}, theta2);
  ASSERT_TRUE(md.ok()) << md.status().ToString();
  EXPECT_EQ(md->num_rows(), base->num_rows());

  // Baseline check on the finest cuboid: per (prod, month), join sales with
  // the group average and count the above-average rows.
  Result<Table> avgs = GroupBy(sales_, dims, {Avg(Col("sale"), "avg_sale")});
  Result<Table> joined = HashJoin(sales_, *avgs, dims, dims);
  Result<Table> above = Filter(*joined, Gt(Col("sale"), Col("avg_sale")));
  Result<Table> counts = GroupBy(*above, dims, {Count("above_avg")});
  ASSERT_TRUE(counts.ok());
  // Each baseline row must match the MD-join output at the same cell.
  int64_t checked = 0;
  for (int64_t r = 0; r < md->num_rows(); ++r) {
    if (md->Get(r, 0).is_all() || md->Get(r, 1).is_all()) continue;
    for (int64_t g = 0; g < counts->num_rows(); ++g) {
      if (counts->Get(g, 0).Equals(md->Get(r, 0)) &&
          counts->Get(g, 1).Equals(md->Get(r, 1))) {
        EXPECT_EQ(md->Get(r, 3).int64(), counts->Get(g, 2).int64());
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0);
  // Grand-total cell: manual computation.
  double grand_avg = 0;
  for (int64_t r = 0; r < sales_.num_rows(); ++r) grand_avg += sales_.Get(r, 6).AsDouble();
  grand_avg /= static_cast<double>(sales_.num_rows());
  int64_t grand_above = 0;
  for (int64_t r = 0; r < sales_.num_rows(); ++r) {
    if (sales_.Get(r, 6).AsDouble() > grand_avg) ++grand_above;
  }
  for (int64_t r = 0; r < md->num_rows(); ++r) {
    if (md->Get(r, 0).is_all() && md->Get(r, 1).is_all()) {
      EXPECT_EQ(md->Get(r, 3).int64(), grand_above);
    }
  }
}

TEST_F(PaperExamplesTest, Example24_PrecomputedBasePoints) {
  // Aggregate only at caller-chosen data-cube points.
  TableBuilder points({{"prod", DataType::kInt64}, {"month", DataType::kInt64}});
  points.AppendRowOrDie({testutil::I(10), testutil::I(2)});
  points.AppendRowOrDie({testutil::I(20), testutil::ALL()});
  points.AppendRowOrDie({testutil::ALL(), testutil::ALL()});
  Table base = std::move(points).Finish();
  Result<Table> md = MdJoin(base, sales_, {Sum(RCol("sale"), "total")},
                            DimsTheta({"prod", "month"}));
  ASSERT_TRUE(md.ok()) << md.status().ToString();
  ASSERT_EQ(md->num_rows(), 3);
  // Row-by-row manual verification.
  double p10m2 = 0, p20 = 0, grand = 0;
  for (int64_t r = 0; r < sales_.num_rows(); ++r) {
    double sale = sales_.Get(r, 6).AsDouble();
    grand += sale;
    if (sales_.Get(r, 1).int64() == 20) p20 += sale;
    if (sales_.Get(r, 1).int64() == 10 && sales_.Get(r, 3).int64() == 2) p10m2 += sale;
  }
  EXPECT_DOUBLE_EQ(md->Get(0, 2).AsDouble(), p10m2);
  EXPECT_DOUBLE_EQ(md->Get(1, 2).AsDouble(), p20);
  EXPECT_DOUBLE_EQ(md->Get(2, 2).AsDouble(), grand);
}

TEST_F(PaperExamplesTest, Example25_BetweenPrevAndNextMonthAverage) {
  // For each (prod, month of 1997): count sales between the previous month's
  // and the next month's average sale. Three grouping variables X, Y, Z.
  Result<Table> filtered = Filter(sales_, Eq(Col("year"), Lit(1997)));
  const Table& sales97 = *filtered;
  Result<Table> base = GroupByBase(sales97, {"prod", "month"});
  ExprPtr prod_eq = Eq(RCol("prod"), BCol("prod"));
  // X: previous month; Y: next month; Z: this month, sale between the two.
  ExprPtr theta_x = And(prod_eq, Eq(RCol("month"), Sub(BCol("month"), Lit(1))));
  ExprPtr theta_y = And(prod_eq, Eq(RCol("month"), Add(BCol("month"), Lit(1))));
  Result<Table> step = MdJoin(*base, sales97, {Avg(RCol("sale"), "prev_avg")}, theta_x);
  ASSERT_TRUE(step.ok());
  step = MdJoin(*step, sales97, {Avg(RCol("sale"), "next_avg")}, theta_y);
  ASSERT_TRUE(step.ok());
  ExprPtr theta_z = And(prod_eq, Eq(RCol("month"), BCol("month")),
                        Gt(RCol("sale"), BCol("prev_avg")),
                        Lt(RCol("sale"), BCol("next_avg")));
  Result<Table> md = MdJoin(*step, sales97, {Count("between_count")}, theta_z);
  ASSERT_TRUE(md.ok()) << md.status().ToString();

  // Baseline: per-(prod, month) averages; for each group look up month±1 and
  // count qualifying rows by scanning.
  Result<Table> avgs = GroupBy(sales97, {"prod", "month"}, {Avg(Col("sale"), "a")});
  auto avg_of = [&](int64_t prod, int64_t month) -> Value {
    for (int64_t r = 0; r < avgs->num_rows(); ++r) {
      if (avgs->Get(r, 0).int64() == prod && avgs->Get(r, 1).int64() == month) {
        return avgs->Get(r, 2);
      }
    }
    return Value::Null();
  };
  for (int64_t r = 0; r < md->num_rows(); ++r) {
    int64_t prod = md->Get(r, 0).int64();
    int64_t month = md->Get(r, 1).int64();
    Value prev = avg_of(prod, month - 1);
    Value next = avg_of(prod, month + 1);
    int64_t expected = 0;
    if (!prev.is_null() && !next.is_null()) {
      for (int64_t s = 0; s < sales97.num_rows(); ++s) {
        if (sales97.Get(s, 1).int64() != prod || sales97.Get(s, 3).int64() != month) {
          continue;
        }
        double sale = sales97.Get(s, 6).AsDouble();
        if (sale > prev.AsDouble() && sale < next.AsDouble()) ++expected;
      }
    }
    EXPECT_EQ(md->Get(r, 4).int64(), expected) << "prod=" << prod << " month=" << month;
  }
}

TEST_F(PaperExamplesTest, Example33_SalesAndPayments) {
  // Total sales and payments per (cust, month), two detail relations.
  Table payments = GeneratePayments({.num_rows = 200, .num_customers = 6, .seed = 5});
  Result<Table> base = GroupByBase(sales_, {"cust", "month"});
  ExprPtr theta1 = And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("month"), BCol("month")));
  Result<Table> step = MdJoin(*base, sales_, {Sum(RCol("sale"), "total_sales")}, theta1);
  ASSERT_TRUE(step.ok());
  Result<Table> md =
      MdJoin(*step, payments, {Sum(RCol("amount"), "total_paid")}, theta1);
  ASSERT_TRUE(md.ok()) << md.status().ToString();

  // Baseline: two GROUP BYs left-outer-joined onto the base.
  Result<Table> s = GroupBy(sales_, {"cust", "month"}, {Sum(Col("sale"), "total_sales")});
  Result<Table> p =
      GroupBy(payments, {"cust", "month"}, {Sum(Col("amount"), "total_paid")});
  Result<Table> j1 =
      HashJoin(*base, *s, {"cust", "month"}, {"cust", "month"}, JoinType::kLeftOuter);
  Result<Table> baseline =
      HashJoin(*j1, *p, {"cust", "month"}, {"cust", "month"}, JoinType::kLeftOuter);
  ASSERT_TRUE(baseline.ok());
  EXPECT_TRUE(TablesEqualUnordered(*md, *baseline));
}

TEST_F(PaperExamplesTest, Example41_PeriodComparison) {
  // Total sales 1994–1996 vs 1999 per product; the two R-only year conjuncts
  // are exactly what Theorem 4.2 pushes down.
  Result<Table> base = GroupByBase(sales_, {"prod"});
  ExprPtr theta1 = And(Eq(RCol("prod"), BCol("prod")), Ge(RCol("year"), Lit(1994)),
                       Le(RCol("year"), Lit(1996)));
  ExprPtr theta2 = And(Eq(RCol("prod"), BCol("prod")), Eq(RCol("year"), Lit(1999)));
  std::vector<MdJoinComponent> comps;
  comps.push_back({{Sum(RCol("sale"), "total_94_96")}, theta1});
  comps.push_back({{Sum(RCol("sale"), "total_99")}, theta2});
  Result<Table> md = GeneralizedMdJoin(*base, sales_, comps);
  ASSERT_TRUE(md.ok()) << md.status().ToString();

  // Baseline via filtered GROUP BYs + outer joins.
  Result<Table> early = Filter(
      sales_, And(Ge(Col("year"), Lit(1994)), Le(Col("year"), Lit(1996))));
  Result<Table> late = Filter(sales_, Eq(Col("year"), Lit(1999)));
  Result<Table> ge = GroupBy(*early, {"prod"}, {Sum(Col("sale"), "total_94_96")});
  Result<Table> gl = GroupBy(*late, {"prod"}, {Sum(Col("sale"), "total_99")});
  Result<Table> j1 = HashJoin(*base, *ge, {"prod"}, {"prod"}, JoinType::kLeftOuter);
  Result<Table> baseline = HashJoin(*j1, *gl, {"prod"}, {"prod"}, JoinType::kLeftOuter);
  ASSERT_TRUE(baseline.ok());
  EXPECT_TRUE(TablesEqualUnordered(*md, *baseline));
}

TEST_F(PaperExamplesTest, Figure1a_OutputShape) {
  // The cube output carries the Figure 1(a) shape: concrete cells, partial
  // rollups, and the (ALL, ALL, ALL) grand total, one row per base value.
  std::vector<std::string> dims = {"prod", "month", "state"};
  Result<Table> base = CubeByBase(sales_, dims);
  Result<Table> cube = MdJoin(*base, sales_, {Sum(RCol("sale"), "total")},
                              DimsTheta(dims));
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->num_rows(), base->num_rows());
  int grand_rows = 0;
  double grand = 0;
  for (int64_t r = 0; r < sales_.num_rows(); ++r) grand += sales_.Get(r, 6).AsDouble();
  for (int64_t r = 0; r < cube->num_rows(); ++r) {
    // Every row has a non-NULL total: cube base values come from the data.
    EXPECT_FALSE(cube->Get(r, 3).is_null());
    if (cube->Get(r, 0).is_all() && cube->Get(r, 1).is_all() &&
        cube->Get(r, 2).is_all()) {
      ++grand_rows;
      EXPECT_DOUBLE_EQ(cube->Get(r, 3).AsDouble(), grand);
    }
  }
  EXPECT_EQ(grand_rows, 1);
}

}  // namespace
}  // namespace mdjoin
