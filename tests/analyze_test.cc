#include <gtest/gtest.h>

#include "analyze/binder.h"
#include "analyze/lexer.h"
#include "analyze/parser.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "optimizer/executor.h"
#include "optimizer/rules.h"
#include "ra/filter.h"
#include "ra/group_by.h"
#include "ra/project.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using analyze::BindQueryString;
using analyze::ParseQuery;
using analyze::Query;

TEST(LexerTest, TokenKinds) {
  Result<std::vector<Token>> toks =
      Tokenize("SELECT prod, sum(sale) 3 2.5 'N''Y' <> <= ;");
  ASSERT_TRUE(toks.ok()) << toks.status().ToString();
  EXPECT_TRUE((*toks)[0].IsKeyword("select"));
  EXPECT_EQ((*toks)[1].kind, TokenKind::kIdent);
  EXPECT_EQ((*toks)[1].text, "prod");
  EXPECT_TRUE((*toks)[2].IsSymbol(","));
  EXPECT_EQ((*toks)[3].text, "sum");  // not reserved
  EXPECT_TRUE((*toks)[4].IsSymbol("("));
  Token int_tok = (*toks)[7];
  EXPECT_EQ(int_tok.kind, TokenKind::kIntLiteral);
  EXPECT_EQ(int_tok.int_value, 3);
  Token float_tok = (*toks)[8];
  EXPECT_EQ(float_tok.kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ(float_tok.float_value, 2.5);
  Token str_tok = (*toks)[9];
  EXPECT_EQ(str_tok.kind, TokenKind::kStringLiteral);
  EXPECT_EQ(str_tok.text, "N'Y");  // '' unescapes
  EXPECT_TRUE((*toks)[10].IsSymbol("<>"));
  EXPECT_TRUE((*toks)[11].IsSymbol("<="));
  EXPECT_EQ((*toks).back().kind, TokenKind::kEnd);
}

TEST(LexerTest, Errors) {
  EXPECT_TRUE(Tokenize("'unterminated").status().IsParseError());
  EXPECT_TRUE(Tokenize("a ? b").status().IsParseError());
}

TEST(ParserTest, Example51CubeQuery) {
  // The paper's Example 5.1.
  Result<Query> q = ParseQuery(
      "select prod, month, state, sum(sale) from Sales "
      "analyze by cube(prod, month, state)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select.size(), 4u);
  EXPECT_EQ(q->from_table, "Sales");
  EXPECT_EQ(q->base.kind, analyze::BaseGenKind::kCube);
  EXPECT_EQ(q->base.attrs, (std::vector<std::string>{"prod", "month", "state"}));
  EXPECT_TRUE(q->bindings.empty());
}

TEST(ParserTest, Example51UnpivotAndTable) {
  Result<Query> unpivot = ParseQuery(
      "select prod, month, sum(sale) from Sales analyze by unpivot(prod, month)");
  ASSERT_TRUE(unpivot.ok());
  EXPECT_EQ(unpivot->base.kind, analyze::BaseGenKind::kUnpivot);

  // Example 2.4: table-driven base values.
  Result<Query> table = ParseQuery(
      "select prod, month, state, sum(sale) from Sales "
      "analyze by T(prod, month, state)");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->base.kind, analyze::BaseGenKind::kTable);
  EXPECT_EQ(table->base.table_name, "T");
}

TEST(ParserTest, GroupingSetsAndRollup) {
  Result<Query> gs = ParseQuery(
      "select prod, sum(sale) from Sales "
      "analyze by grouping_sets((prod), (month), ())");
  ASSERT_TRUE(gs.ok()) << gs.status().ToString();
  EXPECT_EQ(gs->base.kind, analyze::BaseGenKind::kGroupingSets);
  EXPECT_EQ(gs->base.sets.size(), 3u);
  EXPECT_TRUE(gs->base.sets[2].empty());

  Result<Query> ru = ParseQuery(
      "select prod, month, sum(sale) from Sales analyze by rollup(prod, month)");
  ASSERT_TRUE(ru.ok());
  EXPECT_EQ(ru->base.kind, analyze::BaseGenKind::kRollup);
}

TEST(ParserTest, SuchThatBindings) {
  Result<Query> q = ParseQuery(
      "select cust, avg(X.sale) as avg_ny from Sales "
      "analyze by group(cust) "
      "such that X: X.cust = cust and X.state = 'NY', "
      "          Y: Y.cust = cust and Y.sale > avg(X.sale)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->bindings.size(), 2u);
  EXPECT_EQ(q->bindings[0].var, "X");
  EXPECT_EQ(q->bindings[1].var, "Y");
  EXPECT_EQ(q->select[1].alias.value(), "avg_ny");
}

TEST(ParserTest, WhereInBetween) {
  Result<Query> q = ParseQuery(
      "select prod, count(*) from Sales "
      "where year between 1994 and 1996 and state in ('NY','NJ') and sale is not null "
      "analyze by group(prod)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_NE(q->where, nullptr);
}

TEST(ParserTest, Errors) {
  EXPECT_TRUE(ParseQuery("select from Sales analyze by group(a)").status().IsParseError());
  EXPECT_TRUE(ParseQuery("select a from Sales").status().IsParseError());  // no analyze
  EXPECT_TRUE(
      ParseQuery("select a from Sales analyze by bogus").status().IsParseError());
  EXPECT_TRUE(ParseQuery("select a from Sales analyze by group(a) trailing")
                  .status()
                  .IsParseError());
}

/// Binder fixture with Sales registered.
class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sales_ = testutil::SmallSales();
    ASSERT_TRUE(catalog_.Register("Sales", &sales_).ok());
  }

  Result<Table> Run(const std::string& sql) {
    Result<analyze::BoundQuery> bound = BindQueryString(sql, catalog_);
    if (!bound.ok()) return bound.status();
    return ExecutePlanCse(bound->plan, catalog_);
  }

  Table sales_;
  Catalog catalog_;
};

TEST_F(BinderTest, GroupQueryEqualsGroupBy) {
  Result<Table> got = Run(
      "select cust, sum(sale) as total, count(*) as n "
      "from Sales analyze by group(cust)");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  Result<Table> want = GroupBy(sales_, {"cust"},
                               {Sum(Col("sale"), "total"), Count("n")});
  EXPECT_TRUE(TablesEqualUnordered(*got, *want));
}

TEST_F(BinderTest, CubeQueryEqualsMdJoinCube) {
  Result<Table> got = Run(
      "select prod, month, sum(sale) as total from Sales "
      "analyze by cube(prod, month)");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  Result<Table> base = CubeByBase(sales_, {"prod", "month"});
  Result<Table> want = MdJoin(
      *base, sales_, {Sum(RCol("sale"), "total")},
      And(Eq(BCol("prod"), RCol("prod")), Eq(BCol("month"), RCol("month"))));
  EXPECT_TRUE(TablesEqualUnordered(*got, *want));
}

TEST_F(BinderTest, WhereFiltersDetailAndBase) {
  Result<Table> got = Run(
      "select cust, count(*) as n from Sales where year = 1999 "
      "analyze by group(cust)");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // Only customers with 1999 sales appear, with 1999-only counts.
  Result<Table> f = Filter(sales_, Eq(Col("year"), Lit(1999)));
  Result<Table> want = GroupBy(*f, {"cust"}, {Count("n")});
  EXPECT_TRUE(TablesEqualUnordered(*got, *want));
}

TEST_F(BinderTest, TriStatePivotExample22) {
  // Example 2.2 in the §5 language: per-customer averages in three states.
  Result<Table> got = Run(
      "select cust, avg(X.sale) as avg_ny, avg(Y.sale) as avg_nj, "
      "avg(Z.sale) as avg_ct from Sales analyze by group(cust) "
      "such that X: X.cust = cust and X.state = 'NY', "
      "          Y: Y.cust = cust and Y.state = 'NJ', "
      "          Z: Z.cust = cust and Z.state = 'CT'");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->num_rows(), 4);  // every customer, outer semantics
  // Build the same thing directly.
  Result<Table> base = GroupByBase(sales_, {"cust"});
  auto theta = [](const char* st) {
    return And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit(st)));
  };
  Result<Table> step = MdJoin(*base, sales_, {Avg(RCol("sale"), "avg_ny")}, theta("NY"));
  step = MdJoin(*step, sales_, {Avg(RCol("sale"), "avg_nj")}, theta("NJ"));
  step = MdJoin(*step, sales_, {Avg(RCol("sale"), "avg_ct")}, theta("CT"));
  ASSERT_TRUE(step.ok());
  EXPECT_TRUE(TablesEqualUnordered(*got, *step));
}

TEST_F(BinderTest, DependentAggregateExample25Shape) {
  // count sales above the per-customer average: Y depends on avg(X.sale).
  Result<Table> got = Run(
      "select cust, count(Y.sale) as above from Sales analyze by group(cust) "
      "such that X: X.cust = cust, "
      "          Y: Y.cust = cust and Y.sale > avg(X.sale)");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  Result<Table> base = GroupByBase(sales_, {"cust"});
  Result<Table> with_avg =
      MdJoin(*base, sales_, {Avg(RCol("sale"), "avg_sale")}, Eq(RCol("cust"), BCol("cust")));
  Result<Table> want =
      MdJoin(*with_avg, sales_, {Count(RCol("sale"), "above")},
             And(Eq(RCol("cust"), BCol("cust")), Gt(RCol("sale"), BCol("avg_sale"))));
  ASSERT_TRUE(want.ok());
  Result<Table> want_proj = ProjectColumns(*want, {"cust", "above"});
  EXPECT_TRUE(TablesEqualUnordered(*got, *want_proj));
}

TEST_F(BinderTest, TableDrivenBaseValuesExample24) {
  // A user-provided base table restricts which points get aggregated.
  TableBuilder points({{"prod", DataType::kInt64}, {"month", DataType::kInt64}});
  points.AppendRowOrDie({testutil::I(10), testutil::I(1)});
  points.AppendRowOrDie({testutil::I(20), testutil::ALL()});
  points.AppendRowOrDie({testutil::I(99), testutil::I(9)});  // no matching sales
  Table t = std::move(points).Finish();
  ASSERT_TRUE(catalog_.Register("T", &t).ok());
  Result<Table> got = Run(
      "select prod, month, sum(sale) as total from Sales "
      "analyze by T(prod, month)");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->num_rows(), 3);
  // Row (20, ALL) aggregates all product-20 sales (ALL wildcard).
  double prod20 = 0;
  for (int64_t r = 0; r < sales_.num_rows(); ++r) {
    if (sales_.Get(r, 1).int64() == 20) prod20 += sales_.Get(r, 6).AsDouble();
  }
  EXPECT_DOUBLE_EQ(got->Get(1, 2).AsDouble(), prod20);
  // The unmatched point stays with NULL sum (outer semantics).
  EXPECT_TRUE(got->Get(2, 2).is_null());
}

TEST_F(BinderTest, UnpivotQuery) {
  Result<Table> got = Run(
      "select prod, month, count(*) as n from Sales analyze by unpivot(prod, month)");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  Result<Table> base = UnpivotBase(sales_, {"prod", "month"});
  EXPECT_EQ(got->num_rows(), base->num_rows());
}

TEST_F(BinderTest, FusionAppliesToBoundPlan) {
  Result<analyze::BoundQuery> bound = BindQueryString(
      "select cust, avg(X.sale) as a, avg(Y.sale) as b from Sales "
      "analyze by group(cust) "
      "such that X: X.cust = cust and X.state = 'NY', "
      "          Y: Y.cust = cust and Y.state = 'NJ'",
      catalog_);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  // The chain under the final Project fuses into one generalized MD-join.
  ASSERT_EQ(bound->plan->kind(), PlanKind::kProject);
  Result<PlanPtr> fused = FuseMdJoinSeries(bound->plan->child(0));
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_EQ((*fused)->kind(), PlanKind::kGeneralizedMdJoin);
  Result<Table> a = ExecutePlan(bound->plan->child(0), catalog_);
  Result<Table> b = ExecutePlan(*fused, catalog_);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(TablesEqualUnordered(*a, *b));
}

TEST_F(BinderTest, CasePivotIdiomMatchesGroupingVariable) {
  // The SQL-textbook pivot: sum(case when state='NY' then sale end) —
  // one scan, same answer as the grouping-variable formulation. (This is
  // the strongest per-scan baseline SQL can field against the MD-join.)
  Result<Table> case_based = Run(
      "select cust, sum(case when state = 'NY' then sale end) as ny_total "
      "from Sales analyze by group(cust) order by cust");
  Result<Table> var_based = Run(
      "select cust, sum(X.sale) as ny_total from Sales analyze by group(cust) "
      "such that X: X.cust = cust and X.state = 'NY' order by cust");
  ASSERT_TRUE(case_based.ok()) << case_based.status().ToString();
  ASSERT_TRUE(var_based.ok()) << var_based.status().ToString();
  EXPECT_TRUE(TablesEqualOrdered(*case_based, *var_based));
}

TEST_F(BinderTest, CaseInWhereAndConditions) {
  Result<Table> got = Run(
      "select cust, count(*) as n from Sales "
      "where case when state = 'NY' then 1 else 0 end = 1 "
      "analyze by group(cust)");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  Result<Table> ny = Filter(sales_, Eq(Col("state"), Lit("NY")));
  Result<Table> want = GroupBy(*ny, {"cust"}, {Count("n")});
  EXPECT_TRUE(TablesEqualUnordered(*got, *want));
}

TEST_F(BinderTest, EmfSqlDialectParses) {
  // The paper's §5 EMF-SQL listing, verbatim shape.
  Result<analyze::Query> q = analyze::ParseEmfQuery(
      "select prod, month, count(Z.*) from Sales where year = 1997 "
      "group by prod, month ; X, Y, Z "
      "such that X.prod = prod and X.month = month - 1, "
      "          Y.prod = prod and Y.month = month + 1, "
      "          Z.prod = prod and Z.month = month and "
      "          Z.sale > avg(X.sale) and Z.sale < avg(Y.sale)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->base.kind, analyze::BaseGenKind::kGroup);
  EXPECT_EQ(q->base.attrs, (std::vector<std::string>{"prod", "month"}));
  ASSERT_EQ(q->bindings.size(), 3u);
  EXPECT_EQ(q->bindings[0].var, "X");
  EXPECT_EQ(q->bindings[2].var, "Z");
  // count(Z.*): qualified star.
  ASSERT_EQ(q->select.size(), 3u);
  EXPECT_TRUE(q->select[2].expr->agg_star);
  EXPECT_EQ(q->select[2].expr->star_qualifier, "Z");
}

TEST_F(BinderTest, EmfSqlMatchesAnalyzeByDialect) {
  // Both dialects must produce identical results for Example 2.5.
  const char* emf =
      "select prod, month, count(Z.*) as between_count from Sales "
      "where year = 1997 group by prod, month ; X, Y, Z "
      "such that X.prod = prod and X.month = month - 1, "
      "          Y.prod = prod and Y.month = month + 1, "
      "          Z.prod = prod and Z.month = month and "
      "          Z.sale > avg(X.sale) and Z.sale < avg(Y.sale) "
      "order by prod, month";
  const char* analyze_by =
      "select prod, month, count(Z.sale) as between_count from Sales "
      "where year = 1997 analyze by group(prod, month) "
      "such that X: X.prod = prod and X.month = month - 1, "
      "          Y: Y.prod = prod and Y.month = month + 1, "
      "          Z: Z.prod = prod and Z.month = month and "
      "          Z.sale > avg(X.sale) and Z.sale < avg(Y.sale) "
      "order by prod, month";
  Result<analyze::BoundQuery> b1 = analyze::BindEmfQueryString(emf, catalog_);
  Result<analyze::BoundQuery> b2 = BindQueryString(analyze_by, catalog_);
  ASSERT_TRUE(b1.ok()) << b1.status().ToString();
  ASSERT_TRUE(b2.ok()) << b2.status().ToString();
  Result<Table> r1 = ExecutePlanCse(b1->plan, catalog_);
  Result<Table> r2 = ExecutePlanCse(b2->plan, catalog_);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(TablesEqualOrdered(*r1, *r2));
}

TEST_F(BinderTest, EmfSqlVariableConditionCountMismatch) {
  // Two variables declared, one condition: parse error.
  EXPECT_FALSE(analyze::ParseEmfQuery(
                   "select cust, count(X.*) from Sales group by cust ; X, Y "
                   "such that X.cust = cust")
                   .ok());
}

TEST_F(BinderTest, QualifiedStarInAnalyzeByDialect) {
  Result<Table> got = Run(
      "select cust, count(X.*) as ny_rows from Sales analyze by group(cust) "
      "such that X: X.cust = cust and X.state = 'NY'");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  Result<Table> ny = Filter(sales_, Eq(Col("state"), Lit("NY")));
  Result<Table> counts = GroupBy(*ny, {"cust"}, {Count("n")});
  // Customers with NY sales must agree; others are 0.
  for (int64_t r = 0; r < got->num_rows(); ++r) {
    int64_t expected = 0;
    for (int64_t g = 0; g < counts->num_rows(); ++g) {
      if (counts->Get(g, 0).Equals(got->Get(r, 0))) expected = counts->Get(g, 1).int64();
    }
    EXPECT_EQ(got->Get(r, 1).int64(), expected);
  }
}

TEST_F(BinderTest, BindErrors) {
  // Unknown table.
  EXPECT_FALSE(Run("select a from Nope analyze by group(a)").ok());
  // Unknown attribute.
  EXPECT_FALSE(Run("select bogus from Sales analyze by group(bogus)").ok());
  // SELECT column not among analyze attributes.
  EXPECT_FALSE(Run("select month from Sales analyze by group(cust)").ok());
  // Unknown grouping variable in an aggregate.
  EXPECT_FALSE(
      Run("select cust, avg(Q.sale) from Sales analyze by group(cust)").ok());
  // Forward reference between variables.
  EXPECT_FALSE(Run(
      "select cust, count(Y.sale) as n from Sales analyze by group(cust) "
      "such that Y: Y.cust = cust and Y.sale > avg(X.sale), "
      "          X: X.cust = cust").ok());
  // Cross-variable tuple reference.
  EXPECT_FALSE(Run(
      "select cust, count(Y.sale) as n from Sales analyze by group(cust) "
      "such that X: X.cust = cust, Y: Y.sale > X.sale").ok());
  // Duplicate variable.
  EXPECT_FALSE(Run(
      "select cust, count(X.sale) as n from Sales analyze by group(cust) "
      "such that X: X.cust = cust, X: X.cust = cust").ok());
}

}  // namespace
}  // namespace mdjoin
