#include <gtest/gtest.h>

#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "ra/filter.h"
#include "table/clustered_index.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using testutil::I;

TEST(ClusteredIndexTest, BuildSortsOnKey) {
  Table sales = testutil::RandomSales(5, 200);
  Result<ClusteredIndex> index = ClusteredIndex::Build(sales, "year");
  ASSERT_TRUE(index.ok());
  const Table& t = index->table();
  EXPECT_EQ(t.num_rows(), sales.num_rows());
  for (int64_t r = 1; r < t.num_rows(); ++r) {
    EXPECT_LE(t.Get(r - 1, 4).int64(), t.Get(r, 4).int64());
  }
  EXPECT_FALSE(ClusteredIndex::Build(sales, "bogus").ok());
}

TEST(ClusteredIndexTest, BoundsAndRangeScan) {
  TableBuilder b({{"k", DataType::kInt64}});
  for (int64_t v : {1, 3, 3, 5, 7}) b.AppendRowOrDie({I(v)});
  Result<ClusteredIndex> index = ClusteredIndex::Build(std::move(b).Finish(), "k");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->LowerBound(I(3)), 1);
  EXPECT_EQ(index->UpperBound(I(3)), 3);
  EXPECT_EQ(index->LowerBound(I(0)), 0);
  EXPECT_EQ(index->UpperBound(I(9)), 5);
  EXPECT_EQ(index->LowerBound(I(4)), 3);

  EXPECT_EQ(index->RangeScan(I(3), I(5)).num_rows(), 3);
  EXPECT_EQ(index->PointScan(I(3)).num_rows(), 2);
  EXPECT_EQ(index->RangeScan(I(4), I(4)).num_rows(), 0);
  EXPECT_EQ(index->RangeScan(I(-5), I(100)).num_rows(), 5);
}

TEST(ClusteredIndexTest, RangeScanEqualsFilter) {
  Table sales = testutil::RandomSales(9, 300);
  Result<ClusteredIndex> index = ClusteredIndex::Build(sales, "year");
  ASSERT_TRUE(index.ok());
  Table ranged = index->RangeScan(I(1997), I(1998));
  Result<Table> filtered = Filter(
      sales, And(Ge(Col("year"), Lit(1997)), Le(Col("year"), Lit(1998))));
  ASSERT_TRUE(filtered.ok());
  EXPECT_TRUE(TablesEqualUnordered(ranged, *filtered));
}

TEST(ClusteredIndexTest, Example41IndexedScans) {
  // Example 4.1 end-to-end: the two period totals read only their year
  // ranges through the clustered index; results equal the full-scan θ form.
  Table sales = testutil::RandomSales(13, 400);
  Result<Table> base = GroupByBase(sales, {"prod"});
  Result<ClusteredIndex> index = ClusteredIndex::Build(sales, "year");
  ASSERT_TRUE(index.ok());

  ExprPtr prod_eq = Eq(RCol("prod"), BCol("prod"));
  // Full-scan form: year conjuncts inside θ.
  Result<Table> full1 =
      MdJoin(*base, sales, {Sum(RCol("sale"), "total_94_96")},
             And(prod_eq, Ge(RCol("year"), Lit(1996)), Le(RCol("year"), Lit(1997))));
  Result<Table> full2 = MdJoin(*full1, sales, {Sum(RCol("sale"), "total_99")},
                               And(prod_eq, Eq(RCol("year"), Lit(1999))));
  ASSERT_TRUE(full2.ok());

  // Indexed form: range scans as the detail relations (Theorem 4.2 made the
  // year conjuncts detail-only, so they can become access paths).
  Table r1 = index->RangeScan(I(1996), I(1997));
  Table r2 = index->PointScan(I(1999));
  MdJoinStats stats1, stats2;
  Result<Table> idx1 = MdJoin(*base, r1, {Sum(RCol("sale"), "total_94_96")}, prod_eq,
                              {}, &stats1);
  Result<Table> idx2 = MdJoin(*idx1, r2, {Sum(RCol("sale"), "total_99")}, prod_eq, {},
                              &stats2);
  ASSERT_TRUE(idx2.ok());
  EXPECT_TRUE(TablesEqualUnordered(*full2, *idx2));
  // The indexed form never scanned rows outside the ranges.
  EXPECT_EQ(stats1.detail_rows_scanned, r1.num_rows());
  EXPECT_EQ(stats2.detail_rows_scanned, r2.num_rows());
  EXPECT_LT(r1.num_rows() + r2.num_rows(), sales.num_rows());
}

TEST(ClusteredIndexTest, NullsClusterFirst) {
  TableBuilder b({{"k", DataType::kInt64}});
  b.AppendRowOrDie({I(2)});
  b.AppendRowOrDie({testutil::NUL()});
  b.AppendRowOrDie({I(1)});
  Result<ClusteredIndex> index = ClusteredIndex::Build(std::move(b).Finish(), "k");
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->table().Get(0, 0).is_null());
  // A numeric range scan skips the NULL region.
  EXPECT_EQ(index->RangeScan(I(1), I(2)).num_rows(), 2);
}

}  // namespace
}  // namespace mdjoin
