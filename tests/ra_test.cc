#include <gtest/gtest.h>

#include "ra/filter.h"
#include "ra/group_by.h"
#include "ra/join.h"
#include "ra/project.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using testutil::I;
using testutil::S;

TEST(FilterTest, SelectsMatchingRows) {
  Table sales = testutil::SmallSales();
  Result<Table> ny = Filter(sales, Eq(Col("state"), Lit("NY")));
  ASSERT_TRUE(ny.ok());
  EXPECT_EQ(ny->num_rows(), 4);
  for (int64_t r = 0; r < ny->num_rows(); ++r) {
    EXPECT_EQ(ny->Get(r, 5).string(), "NY");
  }
}

TEST(FilterTest, CompoundPredicate) {
  Table sales = testutil::SmallSales();
  Result<Table> t = Filter(sales, And(Eq(Col("year"), Lit(1997)), Gt(Col("sale"), Lit(100))));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 3);  // 200/NY, 400/NJ, 150/CA
}

TEST(FilterTest, UnknownColumnFails) {
  Table sales = testutil::SmallSales();
  EXPECT_FALSE(Filter(sales, Eq(Col("nope"), Lit(1))).ok());
}

TEST(ProjectTest, ComputedColumns) {
  Table sales = testutil::SmallSales();
  Result<Table> p = Project(sales, {{Col("cust"), "cust"},
                                    {Mul(Col("sale"), Lit(2)), "double_sale"}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_columns(), 2);
  EXPECT_EQ(p->schema().field(1).name, "double_sale");
  EXPECT_DOUBLE_EQ(p->Get(0, 1).AsDouble(), 200.0);
}

TEST(ProjectTest, ColumnsOnly) {
  Table sales = testutil::SmallSales();
  Result<Table> p = ProjectColumns(sales, {"state", "sale"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_columns(), 2);
  EXPECT_EQ(p->num_rows(), sales.num_rows());
  EXPECT_EQ(p->Get(0, 0).string(), "NY");
}

TEST(GroupByTest, SumPerCustomer) {
  Table sales = testutil::SmallSales();
  Result<Table> g = GroupBy(sales, {"cust"}, {Sum(Col("sale"), "total"), Count("n")});
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_rows(), 4);
  // cust 1: 100+200+50+70 = 420, 4 rows.
  EXPECT_EQ(g->Get(0, 0).int64(), 1);
  EXPECT_DOUBLE_EQ(g->Get(0, 1).AsDouble(), 420.0);
  EXPECT_EQ(g->Get(0, 2).int64(), 4);
}

TEST(GroupByTest, MultiKeyGrouping) {
  Table sales = testutil::SmallSales();
  Result<Table> g = GroupBy(sales, {"prod", "month"}, {Count("n")});
  ASSERT_TRUE(g.ok());
  // Distinct (prod, month) combos in SmallSales: (10,1)x3? rows:
  // (10,1),(10,1),(20,2),(20,3),(10,1),(20,2),(20,2),(10,3),(20,3),(10,1)... count combos.
  Result<Table> distinct = DistinctOn(sales, {"prod", "month"});
  EXPECT_EQ(g->num_rows(), distinct->num_rows());
}

TEST(GroupByTest, OnlyOccurringGroupsAppear) {
  // The key contrast with the MD-join: a GROUP BY output has no row for a
  // group with no tuples.
  Table sales = testutil::SmallSales();
  Result<Table> ny = Filter(sales, Eq(Col("state"), Lit("NY")));
  Result<Table> g = GroupBy(*ny, {"cust"}, {Count("n")});
  ASSERT_TRUE(g.ok());
  EXPECT_LT(g->num_rows(), 4);  // customer 4 never bought in NY
}

TEST(SortedGroupByTest, MatchesHashGroupByOnSortedInput) {
  Table sales = testutil::RandomSales(61, 200);
  Result<Table> sorted = SortTableBy(sales, {"cust", "month"});
  ASSERT_TRUE(sorted.ok());
  std::vector<AggSpec> aggs = {Count("n"), Sum(Col("sale"), "total"),
                               Min(Col("sale"), "lo")};
  Result<Table> streaming = SortedGroupBy(*sorted, {"cust", "month"}, aggs);
  Result<Table> hashed = GroupBy(*sorted, {"cust", "month"}, aggs);
  ASSERT_TRUE(streaming.ok() && hashed.ok());
  // Hash GroupBy emits in first-occurrence order of the sorted input, which
  // is sorted order — the two agree exactly.
  EXPECT_TRUE(TablesEqualOrdered(*streaming, *hashed));
}

TEST(SortedGroupByTest, RejectsUngroupedInput) {
  TableBuilder b({{"k", DataType::kInt64}, {"v", DataType::kFloat64}});
  for (int64_t k : {1, 1, 2, 1}) {  // key 1 re-appears after closing
    b.AppendRowOrDie({I(k), testutil::F(1)});
  }
  Result<Table> r = SortedGroupBy(std::move(b).Finish(), {"k"}, {Count("n")});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SortedGroupByTest, EmptyInputYieldsNoGroups) {
  Table empty{testutil::SalesSchema()};
  Result<Table> r = SortedGroupBy(empty, {"cust"}, {Count("n")});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 0);
}

TEST(GroupByTest, AggregateAllAlwaysOneRow) {
  Table sales = testutil::SmallSales();
  Result<Table> g = AggregateAll(sales, {Sum(Col("sale"), "total"), Count("n")});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_rows(), 1);
  EXPECT_EQ(g->Get(0, 1).int64(), sales.num_rows());
}

TEST(HashJoinTest, InnerJoin) {
  TableBuilder left({{"k", DataType::kInt64}, {"lv", DataType::kString}});
  left.AppendRowOrDie({I(1), S("a")});
  left.AppendRowOrDie({I(2), S("b")});
  left.AppendRowOrDie({I(3), S("c")});
  TableBuilder right({{"k", DataType::kInt64}, {"rv", DataType::kString}});
  right.AppendRowOrDie({I(1), S("x")});
  right.AppendRowOrDie({I(1), S("y")});
  right.AppendRowOrDie({I(3), S("z")});
  Result<Table> j = HashJoin(std::move(left).Finish(), std::move(right).Finish(), {"k"},
                             {"k"}, JoinType::kInner);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->num_rows(), 3);  // 1-x, 1-y, 3-z
  EXPECT_EQ(j->num_columns(), 3);  // k, lv, rv (key deduplicated)
}

TEST(HashJoinTest, LeftOuterPadsWithNull) {
  TableBuilder left({{"k", DataType::kInt64}});
  left.AppendRowOrDie({I(1)});
  left.AppendRowOrDie({I(2)});
  TableBuilder right({{"k", DataType::kInt64}, {"rv", DataType::kString}});
  right.AppendRowOrDie({I(1), S("x")});
  Result<Table> j = HashJoin(std::move(left).Finish(), std::move(right).Finish(), {"k"},
                             {"k"}, JoinType::kLeftOuter);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->num_rows(), 2);
  EXPECT_TRUE(j->Get(1, 1).is_null());
}

TEST(HashJoinTest, DuplicateRightNamesSuffixed) {
  TableBuilder left({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
  left.AppendRowOrDie({I(1), I(10)});
  TableBuilder right({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
  right.AppendRowOrDie({I(1), I(20)});
  Result<Table> j = HashJoin(std::move(left).Finish(), std::move(right).Finish(), {"k"},
                             {"k"});
  ASSERT_TRUE(j.ok());
  EXPECT_TRUE(j->schema().FindField("v_r").has_value());
}

TEST(NestedLoopJoinTest, ThetaJoin) {
  TableBuilder left({{"x", DataType::kInt64}});
  left.AppendRowOrDie({I(1)});
  left.AppendRowOrDie({I(5)});
  TableBuilder right({{"y", DataType::kInt64}});
  right.AppendRowOrDie({I(3)});
  right.AppendRowOrDie({I(7)});
  // left.x < right.y (left via kBase, right via kDetail).
  Result<Table> j = NestedLoopJoin(std::move(left).Finish(), std::move(right).Finish(),
                                   Lt(BCol("x"), RCol("y")));
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->num_rows(), 3);  // (1,3), (1,7), (5,7)
}

TEST(NestedLoopJoinTest, LeftOuter) {
  TableBuilder left({{"x", DataType::kInt64}});
  left.AppendRowOrDie({I(10)});
  TableBuilder right({{"y", DataType::kInt64}});
  right.AppendRowOrDie({I(3)});
  Result<Table> j = NestedLoopJoin(std::move(left).Finish(), std::move(right).Finish(),
                                   Lt(BCol("x"), RCol("y")), JoinType::kLeftOuter);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->num_rows(), 1);
  EXPECT_TRUE(j->Get(0, 1).is_null());
}

TEST(CrossProductTest, Sizes) {
  TableBuilder a({{"x", DataType::kInt64}});
  a.AppendRowOrDie({I(1)});
  a.AppendRowOrDie({I(2)});
  TableBuilder b({{"y", DataType::kInt64}});
  b.AppendRowOrDie({I(3)});
  b.AppendRowOrDie({I(4)});
  b.AppendRowOrDie({I(5)});
  Result<Table> cp = CrossProduct(std::move(a).Finish(), std::move(b).Finish());
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp->num_rows(), 6);
}

}  // namespace
}  // namespace mdjoin
