/// Moderate-scale smoke tests (~20k detail rows): catch quadratic
/// regressions and verify the headline paths agree with each other at a
/// size where accidental O(|B|·|R|) behavior would visibly drag. Each test
/// should stay well under a second on a laptop core.
///
/// Strategy comparisons use the approximate table equality: with thousands
/// of float64 rows per group, plans that add in different orders legally
/// differ in the last ulps (IEEE addition is not associative). The exact
/// comparisons remain in the small-input suites, where sums stay exact.

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "cube/partitioned_cube.h"
#include "cube/pipesort.h"
#include "expr/conjuncts.h"
#include "table/table_ops.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT

Table BigSales() {
  SalesConfig config;
  config.num_rows = 20000;
  config.num_customers = 500;
  config.num_products = 30;
  config.num_months = 12;
  config.num_states = 8;
  config.seed = 1234;
  return GenerateSales(config);
}

TEST(ScaleTest, IndexedMdJoinAtTwentyThousandRows) {
  Table sales = BigSales();
  Result<Table> base = GroupByBase(sales, {"cust", "month"});
  ASSERT_TRUE(base.ok());
  EXPECT_GT(base->num_rows(), 4000);
  MdJoinStats stats;
  Result<Table> md = MdJoin(
      *base, sales,
      {Count("n"), Sum(RCol("sale"), "total"), Avg(RCol("sale"), "mean")},
      And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("month"), BCol("month"))), {},
      &stats);
  ASSERT_TRUE(md.ok());
  // The index keeps pair work linear in |R|, independent of |B|.
  EXPECT_EQ(stats.candidate_pairs, sales.num_rows());
  EXPECT_EQ(stats.matched_pairs, sales.num_rows());
  // Row-count conservation: the counts across the output sum to |R|.
  int64_t total_n = 0;
  int agg_col = md->num_columns() - 3;
  for (int64_t r = 0; r < md->num_rows(); ++r) total_n += md->Get(r, agg_col).int64();
  EXPECT_EQ(total_n, sales.num_rows());
}

TEST(ScaleTest, ThreeDimCubeStrategiesAgree) {
  Table sales = BigSales();
  std::vector<std::string> dims = {"prod", "month", "state"};
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total"), Count("n")};
  std::vector<ExprPtr> eqs;
  for (const std::string& d : dims) eqs.push_back(Eq(BCol(d), RCol(d)));
  ExprPtr theta = CombineConjuncts(std::move(eqs));

  Result<Table> base = CubeByBase(sales, dims);
  Result<Table> direct = MdJoin(*base, sales, aggs, theta);
  ASSERT_TRUE(direct.ok());

  Result<CubeLattice> lattice = CubeLattice::Make(dims);
  auto cardinality = *CuboidCardinalities(sales, *lattice);
  Result<PipesortPlan> plan = BuildPipesortPlan(*lattice, cardinality);
  Result<Table> pipesort = ExecutePipesortPlan(*plan, sales, aggs);
  ASSERT_TRUE(pipesort.ok());
  EXPECT_TRUE(TablesApproxEqualUnordered(*direct, *pipesort));

  Result<Table> partitioned = PartitionedCube(sales, {"prod", "month"}, aggs, "month");
  ASSERT_TRUE(partitioned.ok());
  Result<Table> base2 = CubeByBase(sales, {"prod", "month"});
  Result<Table> direct2 =
      MdJoin(*base2, sales, aggs,
             And(Eq(BCol("prod"), RCol("prod")), Eq(BCol("month"), RCol("month"))));
  EXPECT_TRUE(TablesApproxEqualUnordered(*partitioned, *direct2));
}

TEST(ScaleTest, IncrementalBatchesConvergeAtScale) {
  Table sales = BigSales();
  std::vector<Table> batches = PartitionIntoN(sales, 5);
  ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};
  Result<Table> base = GroupByBase(sales, {"cust"});
  Table current = *MdJoin(*base, batches[0], aggs, theta);
  for (size_t i = 1; i < batches.size(); ++i) {
    current = *MdJoinApplyDelta(current, batches[i], aggs, theta);
  }
  Result<Table> full = MdJoin(*base, sales, aggs, theta);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(TablesApproxEqualOrdered(current, *full));
}

TEST(ScaleTest, ConstantFoldingOnGeneratedTheta) {
  // Machine-generated θs often carry literal scaffolding; folding must not
  // change results and must simplify trivially-true parts away.
  Table sales = BigSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  ExprPtr theta = And(And(True(), Eq(RCol("cust"), BCol("cust"))),
                      Or(False(), Gt(RCol("sale"), Add(Lit(50), Mul(Lit(10), Lit(5))))));
  ExprPtr folded = FoldConstants(theta);
  // The folded tree contains the computed literal 100 and no and-true shims.
  EXPECT_EQ(folded->ToString(),
            "((R.cust = B.cust) and (R.sale > 100))");
  Result<Table> a = MdJoin(*base, sales, {Count("n")}, theta);
  Result<Table> b = MdJoin(*base, sales, {Count("n")}, folded);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(TablesEqualOrdered(*a, *b));
}

TEST(ScaleTest, FoldConstantsIdentities) {
  ExprPtr col = Gt(RCol("sale"), Lit(10));
  EXPECT_EQ(FoldConstants(And(col, True()))->ToString(), col->ToString());
  EXPECT_EQ(FoldConstants(And(True(), col))->ToString(), col->ToString());
  EXPECT_EQ(FoldConstants(And(col, False()))->ToString(), "0");
  EXPECT_EQ(FoldConstants(Or(col, False()))->ToString(), col->ToString());
  EXPECT_EQ(FoldConstants(Or(col, True()))->ToString(), "1");
  EXPECT_EQ(FoldConstants(Add(Lit(2), Lit(3)))->ToString(), "5");
  // Column-bearing subtrees stay intact.
  EXPECT_EQ(FoldConstants(col)->ToString(), col->ToString());
  // CASE arms fold recursively.
  ExprPtr folded_case =
      FoldConstants(dsl::CaseWhen({{col, Add(Lit(1), Lit(1))}}, Lit(0)));
  EXPECT_EQ(folded_case->ToString(), "(case when (R.sale > 10) then 2 else 0 end)");
}

}  // namespace
}  // namespace mdjoin
