#include "analyze/plan_analyzer.h"

#include <gtest/gtest.h>

#include "analyze/plan_invariants.h"
#include "expr/conjuncts.h"
#include "optimizer/executor.h"
#include "optimizer/optimize.h"
#include "optimizer/plan.h"
#include "optimizer/rules.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT

ExprPtr CustTheta() { return Eq(RCol("cust"), BCol("cust")); }

ExprPtr DimsTheta(const std::vector<std::string>& dims) {
  std::vector<ExprPtr> eqs;
  for (const std::string& d : dims) eqs.push_back(Eq(BCol(d), RCol(d)));
  return CombineConjuncts(std::move(eqs));
}

class PlanAnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sales_ = testutil::SmallSales();
    ASSERT_TRUE(catalog_.Register("sales", &sales_).ok());
  }

  PlanPtr DistinctCustBase() {
    return DistinctPlan(ProjectPlan(TableRef("sales"), {{Col("cust"), "cust"}}));
  }

  /// A base with the right schema but no structural distinctness evidence.
  PlanPtr UndocumentedCustBase() {
    return ProjectPlan(TableRef("sales"), {{Col("cust"), "cust"}});
  }

  PlanAnalysis Analyze(const PlanPtr& plan) {
    Result<PlanAnalysis> analysis = AnalyzePlan(plan, catalog_);
    EXPECT_TRUE(analysis.ok()) << analysis.status().ToString();
    return *analysis;
  }

  Table sales_;
  Catalog catalog_;
};

// ---------------------------------------------------------------------------
// Whole-plan analysis: schema, provenance, distinctness
// ---------------------------------------------------------------------------

TEST_F(PlanAnalyzerTest, ResolvesSchemaAndProvenance) {
  PlanPtr plan = MdJoinPlan(DistinctCustBase(), TableRef("sales"),
                            {Count("n"), Sum(RCol("sale"), "total")}, CustTheta());
  PlanAnalysis analysis = Analyze(plan);
  EXPECT_TRUE(analysis.ok()) << analysis.DiagnosticsToString();
  // Post-order: the root is last and addresses the whole plan.
  const NodeAnalysis& root = analysis.root();
  EXPECT_EQ(root.node, plan.get());
  EXPECT_EQ(root.path, "root");
  ASSERT_TRUE(root.schema.has_value());
  EXPECT_EQ(root.schema->ToString(), "cust:int64, n:int64, total:float64");
  // Provenance: cust traces to the sales TableRef, the aggregates to the
  // MD-join that generated them.
  const AttrProvenance* cust = root.FindProvenance("cust");
  ASSERT_NE(cust, nullptr);
  EXPECT_EQ(cust->origin, AttrOrigin::kBaseColumn);
  const AttrProvenance* total = root.FindProvenance("total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->origin, AttrOrigin::kAggregate);
  EXPECT_EQ(total->producer, plan.get());
  // The MD-join extends a Distinct base one row per base row, so the output
  // inherits distinctness.
  EXPECT_TRUE(root.rows_distinct) << root.distinct_evidence;
}

TEST_F(PlanAnalyzerTest, ReportsUnboundThetaAttribute) {
  // Satellite: the "unbound attribute" negative — θ references B.nope, which
  // no node produces. The diagnostic is structured: error severity, a path
  // addressing the offending node, and a message naming the attribute.
  PlanPtr plan = MdJoinPlan(DistinctCustBase(), TableRef("sales"), {Count("n")},
                            Eq(RCol("cust"), BCol("nope")));
  PlanAnalysis analysis = Analyze(plan);
  EXPECT_FALSE(analysis.ok());
  ASSERT_FALSE(analysis.diagnostics.empty());
  const AnalyzerDiagnostic& diag = analysis.diagnostics.front();
  EXPECT_EQ(diag.severity, DiagSeverity::kError);
  EXPECT_EQ(diag.path, "root");
  EXPECT_NE(diag.message.find("nope"), std::string::npos) << diag.ToString();
  EXPECT_NE(diag.ToString().find("[error]"), std::string::npos);
  EXPECT_FALSE(analysis.ToStatus("test").ok());
}

TEST_F(PlanAnalyzerTest, InnerFailureDoesNotCascade) {
  // A broken subtree yields exactly one diagnostic at its own node; parents
  // whose children lack schemas stay silent instead of piling on.
  PlanPtr bad_base = FilterPlan(DistinctCustBase(), Gt(Col("no_such"), Lit(1)));
  PlanPtr plan = MdJoinPlan(bad_base, TableRef("sales"), {Count("n")}, CustTheta());
  PlanAnalysis analysis = Analyze(plan);
  EXPECT_FALSE(analysis.ok());
  EXPECT_EQ(analysis.diagnostics.size(), 1u) << analysis.DiagnosticsToString();
  EXPECT_EQ(analysis.diagnostics.front().path, "root/0");
}

TEST_F(PlanAnalyzerTest, ClassifiesThetaConjuncts) {
  ExprPtr theta = And(Eq(BCol("cust"), RCol("cust")),   // equi-bound
                      Gt(RCol("sale"), Lit(10)),        // detail-only
                      Gt(BCol("cust"), Lit(1)),         // base-only
                      Lt(BCol("cust"), RCol("prod")));  // mixed residual
  ThetaClassification cls = ClassifyTheta(theta);
  ASSERT_EQ(cls.conjuncts.size(), 4u);
  std::multiset<ConjunctClass> seen;
  for (const ClassifiedConjunct& c : cls.conjuncts) seen.insert(c.cls);
  EXPECT_EQ(seen.count(ConjunctClass::kEquiBound), 1u);
  EXPECT_EQ(seen.count(ConjunctClass::kDetailOnly), 1u);
  EXPECT_EQ(seen.count(ConjunctClass::kBaseOnly), 1u);
  EXPECT_EQ(seen.count(ConjunctClass::kResidual), 1u);
  EXPECT_TRUE(cls.HasEquiBinding("cust"));
  EXPECT_FALSE(cls.HasEquiBinding("prod"));
  EXPECT_EQ(cls.base_columns, (std::set<std::string>{"cust"}));
  EXPECT_EQ(cls.detail_columns, (std::set<std::string>{"cust", "prod", "sale"}));
}

TEST_F(PlanAnalyzerTest, DistinctnessEvidence) {
  // Positive: Distinct under a Filter still counts (Filter preserves).
  PlanPtr filtered = FilterPlan(DistinctCustBase(), Gt(Col("cust"), Lit(0)));
  Result<DistinctnessCertificate> cert = CertifyBaseDistinct(filtered);
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  EXPECT_NE(cert->evidence.find("Distinct"), std::string::npos);
  // Cuboid base-values generators are distinct by construction.
  EXPECT_TRUE(
      CertifyBaseDistinct(CuboidBasePlan(TableRef("sales"), {"prod"}, 0b1)).ok());
  // Negative: a bare projection proves nothing; the error names the blocker.
  Result<DistinctnessCertificate> none = CertifyBaseDistinct(UndocumentedCustBase());
  ASSERT_FALSE(none.ok());
  EXPECT_NE(none.status().ToString().find("no distinctness evidence"),
            std::string::npos)
      << none.status().ToString();
}

// ---------------------------------------------------------------------------
// Negative preconditions, one illegal plan per rule
// ---------------------------------------------------------------------------

TEST_F(PlanAnalyzerTest, PushdownRejectsMixedOnlyTheta) {
  // Theorem 4.2 negative: every conjunct involves B, so nothing is pushable.
  ExprPtr theta = And(CustTheta(), Lt(BCol("cust"), RCol("prod")));
  PlanPtr plan = MdJoinPlan(DistinctCustBase(), TableRef("sales"), {Count("n")}, theta);
  Result<PushdownCertificate> cert = CertifyDetailPushdown(plan);
  ASSERT_FALSE(cert.ok());
  EXPECT_NE(cert.status().ToString().find("no R-only conjuncts"), std::string::npos)
      << cert.status().ToString();
  EXPECT_FALSE(ApplySelectionPushdown(plan).ok());
}

TEST_F(PlanAnalyzerTest, TransferRejectsUnboundSelectionAttribute) {
  // Observation 4.1 negative: the base σ references cust, but θ binds it with
  // an inequality, not a plain-column equi conjunct — no substitution exists.
  PlanPtr base = FilterPlan(DistinctCustBase(), Gt(Col("cust"), Lit(1)));
  PlanPtr plan = MdJoinPlan(base, TableRef("sales"), {Count("n")},
                            Gt(RCol("cust"), BCol("cust")));
  Result<TransferCertificate> cert = CertifyEquiTransfer(plan);
  ASSERT_FALSE(cert.ok());
  EXPECT_NE(cert.status().ToString().find("'cust'"), std::string::npos)
      << cert.status().ToString();
  EXPECT_NE(cert.status().ToString().find("equi conjunct"), std::string::npos);
  EXPECT_FALSE(ApplyBaseSelectionTransfer(plan).ok());
}

TEST_F(PlanAnalyzerTest, FusionDetectsDependentThetas) {
  // Theorem 4.3 negative: the outer θ reads the inner MD-join's output "t",
  // so the components are serially dependent — different generations, no
  // fusion.
  PlanPtr inner = MdJoinPlan(DistinctCustBase(), TableRef("sales"),
                             {Sum(RCol("sale"), "t")}, CustTheta());
  PlanPtr outer = MdJoinPlan(inner, TableRef("sales"), {Count("n")},
                             And(CustTheta(), Gt(BCol("t"), RCol("sale"))));
  ChainDependencyCertificate cert = CertifyChainDependencies({inner, outer});
  ASSERT_EQ(cert.generation.size(), 2u);
  EXPECT_EQ(cert.generation[0], 0);
  EXPECT_EQ(cert.generation[1], 1);
  EXPECT_FALSE(FuseMdJoinSeries(outer).ok());

  // Control: independent components over the same detail fuse.
  PlanPtr indep = MdJoinPlan(inner, TableRef("sales"),
                             {Count(RCol("prod"), "m")}, CustTheta());
  ChainDependencyCertificate ok_cert = CertifyChainDependencies({inner, indep});
  EXPECT_EQ(ok_cert.generation[0], 0);
  EXPECT_EQ(ok_cert.generation[1], 0);
  Result<PlanPtr> fused = FuseMdJoinSeries(indep);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_EQ((*fused)->kind(), PlanKind::kGeneralizedMdJoin);
}

TEST_F(PlanAnalyzerTest, CommuteRejectsDependentOuterTheta) {
  // Theorem 4.3 (commute) negative: the outer θ references the inner
  // aggregate output, so provenance resolves it to an aggregate, not a base
  // column.
  PlanPtr inner = MdJoinPlan(DistinctCustBase(), TableRef("sales"),
                             {Sum(RCol("sale"), "t")}, CustTheta());
  PlanPtr outer = MdJoinPlan(inner, TableRef("sales"), {Count("n")},
                             And(CustTheta(), Gt(BCol("t"), RCol("sale"))));
  Status s = CertifyOuterIndependence(outer, catalog_, "Theorem 4.3 (commute)");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("'t'"), std::string::npos) << s.ToString();
  EXPECT_NE(s.ToString().find("not an attribute of the inner base"),
            std::string::npos);
  EXPECT_FALSE(CommuteMdJoins(outer, catalog_).ok());
}

TEST_F(PlanAnalyzerTest, SplitRequiresDistinctnessEvidence) {
  // Theorem 4.4 negative: same legal θ shape, but the base carries no
  // structural distinctness evidence, so the split (which would multiply
  // duplicate base rows through the equijoin) is refused with a precise
  // diagnostic instead of silently trusted.
  PlanPtr inner = MdJoinPlan(UndocumentedCustBase(), TableRef("sales"),
                             {Sum(RCol("sale"), "t")}, CustTheta());
  PlanPtr outer = MdJoinPlan(inner, TableRef("sales"), {Count("n")}, CustTheta());
  Result<PlanPtr> split = SplitToEquiJoin(outer, catalog_);
  ASSERT_FALSE(split.ok());
  EXPECT_NE(split.status().ToString().find("no distinctness evidence"),
            std::string::npos)
      << split.status().ToString();
  EXPECT_NE(split.status().ToString().find("Theorem 4.4"), std::string::npos);

  // The same plan with a Distinct base splits fine.
  PlanPtr good_inner = MdJoinPlan(DistinctCustBase(), TableRef("sales"),
                                  {Sum(RCol("sale"), "t")}, CustTheta());
  PlanPtr good_outer =
      MdJoinPlan(good_inner, TableRef("sales"), {Count("n")}, CustTheta());
  EXPECT_TRUE(SplitToEquiJoin(good_outer, catalog_).ok());
}

TEST_F(PlanAnalyzerTest, RollupRejectsNonDistributiveAggregate) {
  // Theorem 4.5 negative: avg is algebraic, not distributive; re-aggregating
  // finalized averages would be wrong, and the certificate says so.
  std::vector<std::string> dims = {"prod", "month"};
  PlanPtr plan = MdJoinPlan(CuboidBasePlan(TableRef("sales"), dims, 0b01),
                            TableRef("sales"), {Avg(RCol("sale"), "a")},
                            DimsTheta(dims));
  Result<RollupCertificate> cert = CertifyRollup(plan);
  ASSERT_FALSE(cert.ok());
  EXPECT_NE(cert.status().ToString().find("not distributive"), std::string::npos)
      << cert.status().ToString();
  EXPECT_FALSE(ApplyRollup(plan, 0b11).ok());
}

// ---------------------------------------------------------------------------
// Invariant checking and verify_plans mode
// ---------------------------------------------------------------------------

TEST_F(PlanAnalyzerTest, CheckPlanInvariants) {
  PlanPtr good = MdJoinPlan(DistinctCustBase(), TableRef("sales"), {Count("n")},
                            CustTheta());
  EXPECT_TRUE(CheckPlanInvariants(good, catalog_).empty());
  EXPECT_TRUE(VerifyPlan(good, catalog_, "test").ok());

  PlanPtr bad = MdJoinPlan(DistinctCustBase(), TableRef("sales"), {Count("n")},
                           Eq(RCol("cust"), BCol("nope")));
  EXPECT_FALSE(CheckPlanInvariants(bad, catalog_).empty());
  Status s = VerifyPlan(bad, catalog_, "unit-test-context");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("unit-test-context"), std::string::npos)
      << s.ToString();
}

TEST_F(PlanAnalyzerTest, ExecutorVerifyPlansFailsFast) {
  PlanPtr bad = MdJoinPlan(DistinctCustBase(), TableRef("sales"), {Count("n")},
                           Eq(RCol("cust"), BCol("nope")));
  MdJoinOptions options;
  options.verify_plans = true;
  Result<Table> r = ExecutePlan(bad, catalog_, options);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("ExecutePlan"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().ToString().find("[error]"), std::string::npos);
}

TEST_F(PlanAnalyzerTest, OptimizerVerifyPlansAcceptsLegalRewrites) {
  // A representative plan that fires pushdown; with verification on, every
  // accepted rewrite is re-analyzed and the optimization still succeeds.
  ExprPtr theta = And(CustTheta(), Eq(RCol("year"), Lit(1999)));
  PlanPtr plan = MdJoinPlan(DistinctCustBase(), TableRef("sales"), {Count("n")}, theta);
  OptimizeOptions options;
  options.verify_plans = true;
  OptimizeReport report;
  Result<PlanPtr> optimized = OptimizePlan(plan, catalog_, options, &report);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_FALSE(report.applied.empty());
}

}  // namespace
}  // namespace mdjoin
