#include <gtest/gtest.h>

#include "types/schema.h"
#include "types/value.h"

namespace mdjoin {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_all());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, Payloads) {
  EXPECT_EQ(Value::Int64(42).int64(), 42);
  EXPECT_DOUBLE_EQ(Value::Float64(2.5).float64(), 2.5);
  EXPECT_EQ(Value::String("NY").string(), "NY");
  EXPECT_TRUE(Value::All().is_all());
}

TEST(ValueTest, AsDoubleWidensInt) {
  EXPECT_DOUBLE_EQ(Value::Int64(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Float64(3.5).AsDouble(), 3.5);
}

TEST(ValueTest, StructuralEquality) {
  EXPECT_TRUE(Value::Int64(3).Equals(Value::Int64(3)));
  EXPECT_FALSE(Value::Int64(3).Equals(Value::Int64(4)));
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_TRUE(Value::All().Equals(Value::All()));
  EXPECT_FALSE(Value::All().Equals(Value::Null()));
  // ALL is NOT structurally equal to a concrete value.
  EXPECT_FALSE(Value::All().Equals(Value::Int64(3)));
  EXPECT_TRUE(Value::String("x").Equals(Value::String("x")));
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value::Int64(3).Equals(Value::Float64(3.0)));
  EXPECT_FALSE(Value::Int64(3).Equals(Value::Float64(3.5)));
  // Hash must agree with Equals across numeric types.
  EXPECT_EQ(Value::Int64(3).Hash(), Value::Float64(3.0).Hash());
}

TEST(ValueTest, ThetaEqualityTreatsAllAsWildcard) {
  EXPECT_TRUE(Value::All().MatchesEq(Value::Int64(7)));
  EXPECT_TRUE(Value::Int64(7).MatchesEq(Value::All()));
  EXPECT_TRUE(Value::All().MatchesEq(Value::String("NY")));
  EXPECT_TRUE(Value::All().MatchesEq(Value::All()));
  // NULL matches nothing, not even NULL or ALL.
  EXPECT_FALSE(Value::Null().MatchesEq(Value::Null()));
  EXPECT_FALSE(Value::Null().MatchesEq(Value::All()));
  EXPECT_FALSE(Value::All().MatchesEq(Value::Null()));
  EXPECT_FALSE(Value::Null().MatchesEq(Value::Int64(1)));
  // Concrete values: same as structural.
  EXPECT_TRUE(Value::Int64(7).MatchesEq(Value::Int64(7)));
  EXPECT_FALSE(Value::Int64(7).MatchesEq(Value::Int64(8)));
}

TEST(ValueTest, TotalOrder) {
  // NULL < ALL < numeric < string.
  EXPECT_LT(Value::Null().Compare(Value::All()), 0);
  EXPECT_LT(Value::All().Compare(Value::Int64(-100)), 0);
  EXPECT_LT(Value::Int64(5).Compare(Value::String("")), 0);
  EXPECT_LT(Value::Int64(2).Compare(Value::Int64(3)), 0);
  EXPECT_GT(Value::Int64(4).Compare(Value::Float64(3.5)), 0);
  EXPECT_EQ(Value::Int64(3).Compare(Value::Float64(3.0)), 0);
  EXPECT_LT(Value::String("CT").Compare(Value::String("NY")), 0);
  EXPECT_EQ(Value::All().Compare(Value::All()), 0);
}

TEST(ValueTest, IsTruthy) {
  EXPECT_TRUE(Value::Int64(1).IsTruthy());
  EXPECT_TRUE(Value::Int64(-3).IsTruthy());
  EXPECT_FALSE(Value::Int64(0).IsTruthy());
  EXPECT_FALSE(Value::Null().IsTruthy());
  EXPECT_FALSE(Value::All().IsTruthy());
  EXPECT_FALSE(Value::Float64(1.0).IsTruthy());  // booleans are Int64 by convention
}

TEST(ValueTest, TypeOfPayloads) {
  EXPECT_EQ(*Value::Int64(1).Type(), DataType::kInt64);
  EXPECT_EQ(*Value::Float64(1).Type(), DataType::kFloat64);
  EXPECT_EQ(*Value::String("a").Type(), DataType::kString);
  EXPECT_FALSE(Value::Null().Type().ok());
  EXPECT_FALSE(Value::All().Type().ok());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::All().ToString(), "ALL");
  EXPECT_EQ(Value::Int64(-7).ToString(), "-7");
  EXPECT_EQ(Value::Float64(2.0).ToString(), "2");
  EXPECT_EQ(Value::String("CA").ToString(), "CA");
}

TEST(DataTypeTest, Helpers) {
  EXPECT_TRUE(IsNumeric(DataType::kInt64));
  EXPECT_TRUE(IsNumeric(DataType::kFloat64));
  EXPECT_FALSE(IsNumeric(DataType::kString));
  EXPECT_EQ(CommonNumericType(DataType::kInt64, DataType::kInt64), DataType::kInt64);
  EXPECT_EQ(CommonNumericType(DataType::kInt64, DataType::kFloat64), DataType::kFloat64);
  EXPECT_STREQ(DataTypeToString(DataType::kString), "string");
}

TEST(SchemaTest, FieldLookup) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(s.num_fields(), 2);
  EXPECT_EQ(*s.FindField("b"), 1);
  EXPECT_FALSE(s.FindField("c").has_value());
  EXPECT_EQ(*s.GetFieldIndex("a"), 0);
  EXPECT_TRUE(s.GetFieldIndex("zzz").status().IsNotFound());
}

TEST(SchemaTest, AddFieldRejectsDuplicates) {
  Schema s({{"a", DataType::kInt64}});
  EXPECT_TRUE(s.AddField({"b", DataType::kFloat64}).ok());
  EXPECT_EQ(s.num_fields(), 2);
  Status dup = s.AddField({"a", DataType::kString});
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, SelectSubset) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}, {"c", DataType::kFloat64}});
  Result<Schema> sub = s.Select({"c", "a"});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_fields(), 2);
  EXPECT_EQ(sub->field(0).name, "c");
  EXPECT_EQ(sub->field(1).name, "a");
  EXPECT_FALSE(s.Select({"nope"}).ok());
}

TEST(SchemaTest, ToString) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(s.ToString(), "a:int64, b:string");
}

}  // namespace
}  // namespace mdjoin
