#include <gtest/gtest.h>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace mdjoin {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad count: ", 42);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad count: 42");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad count: 42");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::NotFound("x");
  Status copy = s;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_TRUE(s.IsNotFound());
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsNotFound());
}

TEST(StatusTest, EveryFactoryProducesMatchingCode) {
  EXPECT_EQ(Status::InvalidArgument("m").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("m").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("m").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("m").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::TypeError("m").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::ParseError("m").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::BindError("m").code(), StatusCode::kBindError);
  EXPECT_EQ(Status::ExecutionError("m").code(), StatusCode::kExecutionError);
  EXPECT_EQ(Status::Internal("m").code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::TypeError("inner"); };
  auto outer = [&]() -> Status {
    MDJ_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsTypeError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool ok) -> Result<int> {
    if (ok) return 5;
    return Status::InvalidArgument("no");
  };
  auto chain = [&](bool ok) -> Result<int> {
    MDJ_ASSIGN_OR_RETURN(int v, produce(ok));
    return v * 2;
  };
  ASSERT_TRUE(chain(true).ok());
  EXPECT_EQ(*chain(true), 10);
  EXPECT_TRUE(chain(false).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(3);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 3);
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(SplitString("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinRoundTrips) {
  EXPECT_EQ(JoinStrings({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("CUBE", "cube"));
  EXPECT_FALSE(EqualsIgnoreCase("cube", "cub"));
  EXPECT_TRUE(StartsWith("analyze by", "analyze"));
  EXPECT_FALSE(StartsWith("an", "analyze"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(-12.0), "-12");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RandomTest, UniformInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, ThetaZeroIsRoughlyUniform) {
  Random rng(1);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next(&rng)];
  for (int c : counts) {
    EXPECT_GT(c, 1500);
    EXPECT_LT(c, 2500);
  }
}

TEST(ZipfTest, HighThetaSkewsToRankZero) {
  Random rng(2);
  ZipfGenerator zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next(&rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
}

}  // namespace
}  // namespace mdjoin
