/// Static verifier coverage (expr/verifier.h): every program the emitter
/// produces — including the degenerate shapes that stress the AND/OR jump
/// patching — must verify and evaluate correctly; hand-mutated programs with
/// broken invariants must be rejected with the structured diagnostic naming
/// the violation, never a crash or a wild read.

#include <gtest/gtest.h>

#include "expr/compile.h"
#include "expr/verifier.h"
#include "table/table_builder.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT

using Instr = BytecodeExpr::Instr;
using Op = BytecodeExpr::OpCode;

Schema BaseSchema() {
  return Schema({{"b_int", DataType::kInt64}, {"b_str", DataType::kString}});
}
Schema DetailSchema() {
  return Schema({{"d_int", DataType::kInt64}, {"d_flt", DataType::kFloat64}});
}

/// Compiles `expr`, asserts the program verifies, and returns it.
BytecodeExpr CompileVerified(const ExprPtr& expr, const Schema& base,
                             const Schema& detail) {
  Result<BytecodeExpr> bc = BytecodeExpr::Compile(expr, &base, &detail);
  EXPECT_TRUE(bc.ok()) << expr->ToString();
  VerifierReport report = VerifyBytecode(*bc, &base, &detail);
  EXPECT_TRUE(report.ok()) << expr->ToString() << "\n" << report.ToString();
  EXPECT_EQ(report.verified_instrs, bc->num_instrs());
  EXPECT_GE(report.max_stack_depth, 1);
  return *std::move(bc);
}

/// One-row tables for direct Eval checks.
struct Fixture {
  Table base;
  Table detail;
  Fixture(int64_t b_int, int64_t d_int)
      : base(MakeBase(b_int)), detail(MakeDetail(d_int)) {}
  static Table MakeBase(int64_t v) {
    TableBuilder b(BaseSchema());
    b.AppendRowOrDie({Value::Int64(v), Value::String("NY")});
    return std::move(b).Finish();
  }
  static Table MakeDetail(int64_t v) {
    TableBuilder b(DetailSchema());
    b.AppendRowOrDie({Value::Int64(v), Value::Float64(1.5)});
    return std::move(b).Finish();
  }
  RowCtx Ctx() const {
    RowCtx ctx;
    ctx.base = &base;
    ctx.detail = &detail;
    ctx.base_row = 0;
    ctx.detail_row = 0;
    return ctx;
  }
};

// ---------------------------------------------------------------------------
// Degenerate emitter shapes (satellite b: AND/OR jump-patching audit)
// ---------------------------------------------------------------------------

TEST(BytecodeVerifier, SingleConjunct) {
  Schema bs = BaseSchema(), ds = DetailSchema();
  BytecodeExpr bc = CompileVerified(Lt(RCol("d_int"), Lit(5)), bs, ds);
  EXPECT_TRUE(Fixture(0, 3).Ctx().base != nullptr);
  EXPECT_TRUE(bc.Eval(Fixture(0, 3).Ctx()).IsTruthy());
  EXPECT_FALSE(bc.Eval(Fixture(0, 7).Ctx()).IsTruthy());
}

TEST(BytecodeVerifier, ConstantOnlyTheta) {
  Schema bs = BaseSchema(), ds = DetailSchema();
  BytecodeExpr t = CompileVerified(Eq(Lit(1), Lit(1)), bs, ds);
  EXPECT_TRUE(t.Eval(Fixture(0, 0).Ctx()).IsTruthy());
  BytecodeExpr f = CompileVerified(Eq(Lit(1), Lit(2)), bs, ds);
  EXPECT_FALSE(f.Eval(Fixture(0, 0).Ctx()).IsTruthy());
  // A bare literal is the smallest possible program.
  BytecodeExpr lit = CompileVerified(Lit(1), bs, ds);
  EXPECT_TRUE(lit.Eval(Fixture(0, 0).Ctx()).IsTruthy());
}

TEST(BytecodeVerifier, DeeplyNestedOr64Terms) {
  Schema bs = BaseSchema(), ds = DetailSchema();
  // Left-leaning OR chain of 64 equality terms: every kOrJump must patch to
  // the same final merge point; the verifier proves all merge depths agree.
  ExprPtr e = Eq(RCol("d_int"), Lit(0));
  for (int i = 1; i < 64; ++i) e = Or(e, Eq(RCol("d_int"), Lit(i)));
  BytecodeExpr bc = CompileVerified(e, bs, ds);
  EXPECT_TRUE(bc.Eval(Fixture(0, 63).Ctx()).IsTruthy());
  EXPECT_TRUE(bc.Eval(Fixture(0, 0).Ctx()).IsTruthy());
  EXPECT_FALSE(bc.Eval(Fixture(0, 64).Ctx()).IsTruthy());
  EXPECT_FALSE(bc.Eval(Fixture(0, -1).Ctx()).IsTruthy());
}

TEST(BytecodeVerifier, DeeplyNestedAnd64Terms) {
  Schema bs = BaseSchema(), ds = DetailSchema();
  ExprPtr e = Ge(RCol("d_int"), Lit(-1000));
  for (int i = 1; i < 64; ++i) e = And(e, Ge(RCol("d_int"), Lit(-1000 + i)));
  BytecodeExpr bc = CompileVerified(e, bs, ds);
  EXPECT_TRUE(bc.Eval(Fixture(0, 0).Ctx()).IsTruthy());
  EXPECT_FALSE(bc.Eval(Fixture(0, -999).Ctx()).IsTruthy());
}

TEST(BytecodeVerifier, RightLeaningMixedAndOr) {
  Schema bs = BaseSchema(), ds = DetailSchema();
  // Right-leaning nesting exercises jump targets that skip whole subprograms.
  ExprPtr e = Eq(RCol("d_int"), Lit(99));
  for (int i = 0; i < 32; ++i) {
    e = (i % 2 == 0) ? Or(Eq(RCol("d_int"), Lit(i)), e)
                     : And(Ge(RCol("d_int"), Lit(-100)), e);
  }
  BytecodeExpr bc = CompileVerified(e, bs, ds);
  EXPECT_TRUE(bc.Eval(Fixture(0, 99).Ctx()).IsTruthy());
  EXPECT_FALSE(bc.Eval(Fixture(0, 55).Ctx()).IsTruthy());
}

TEST(BytecodeVerifier, CaseWithAndWithoutElse) {
  Schema bs = BaseSchema(), ds = DetailSchema();
  ExprPtr with_else = Expr::Case(
      {{Lt(RCol("d_int"), Lit(0)), Lit(-1)}, {Gt(RCol("d_int"), Lit(0)), Lit(1)}},
      Lit(0));
  BytecodeExpr bc = CompileVerified(with_else, bs, ds);
  EXPECT_EQ(bc.Eval(Fixture(0, -5).Ctx()).int64(), -1);
  EXPECT_EQ(bc.Eval(Fixture(0, 5).Ctx()).int64(), 1);
  EXPECT_EQ(bc.Eval(Fixture(0, 0).Ctx()).int64(), 0);

  ExprPtr no_else = Expr::Case({{Lt(RCol("d_int"), Lit(0)), Lit(-1)}}, nullptr);
  BytecodeExpr bc2 = CompileVerified(no_else, bs, ds);
  EXPECT_EQ(bc2.Eval(Fixture(0, -5).Ctx()).int64(), -1);
  EXPECT_TRUE(bc2.Eval(Fixture(0, 5).Ctx()).is_null());
}

TEST(BytecodeVerifier, InListAndUnaries) {
  Schema bs = BaseSchema(), ds = DetailSchema();
  ExprPtr e = And(In(RCol("d_int"), {Value::Int64(1), Value::Int64(2)}),
                  Not(IsNull(BCol("b_int"))));
  BytecodeExpr bc = CompileVerified(e, bs, ds);
  EXPECT_TRUE(bc.Eval(Fixture(7, 2).Ctx()).IsTruthy());
  EXPECT_FALSE(bc.Eval(Fixture(7, 3).Ctx()).IsTruthy());
}

// ---------------------------------------------------------------------------
// Mutated-bytecode rejection corpus
// ---------------------------------------------------------------------------

/// Asserts the program is rejected and the FIRST error carries `expect`.
void ExpectRejected(const std::vector<Instr>& code, int num_literals,
                    int num_in_lists, int num_base, int num_detail,
                    VerifyErrorCode expect) {
  VerifierReport report =
      VerifyBytecodeProgram(code, num_literals, num_in_lists, num_base, num_detail);
  ASSERT_FALSE(report.ok()) << report.ToString();
  const VerifierDiagnostic* first = nullptr;
  for (const VerifierDiagnostic& d : report.diagnostics) {
    if (d.is_error) {
      first = &d;
      break;
    }
  }
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->code, expect)
      << "want " << VerifyErrorCodeName(expect) << ", got:\n"
      << report.ToString();
  // Structured rejection, not a crash: the report converts to a Status whose
  // message carries the stable code.
  Status s = report.ToStatus();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find(VerifyErrorCodeName(expect)), std::string::npos)
      << s.ToString();
}

TEST(VerifierRejects, EmptyProgram) {
  ExpectRejected({}, 0, 0, 2, 2, VerifyErrorCode::kEmptyProgram);
}

TEST(VerifierRejects, BadOpcode) {
  ExpectRejected({{static_cast<Op>(250), 0, 0}}, 0, 0, 2, 2,
                 VerifyErrorCode::kBadOpcode);
}

TEST(VerifierRejects, BadOperandClass) {
  // kCompare whose u8 names an arithmetic op (kAdd == 0) — type confusion
  // between the operand classes.
  ExpectRejected({{Op::kLoadBase, 0, 0},
                  {Op::kLoadBase, 0, 0},
                  {Op::kCompare, static_cast<uint8_t>(BinaryOp::kAdd), 0}},
                 0, 0, 2, 2, VerifyErrorCode::kBadOperandOp);
  // And the mirror image: kArith with a comparison op.
  ExpectRejected({{Op::kLoadBase, 0, 0},
                  {Op::kLoadBase, 0, 0},
                  {Op::kArith, static_cast<uint8_t>(BinaryOp::kLt), 0}},
                 0, 0, 2, 2, VerifyErrorCode::kBadOperandOp);
}

TEST(VerifierRejects, BadLiteralIndex) {
  ExpectRejected({{Op::kPushLit, 0, 3}}, 1, 0, 2, 2,
                 VerifyErrorCode::kBadLiteralIndex);
}

TEST(VerifierRejects, BadInListIndex) {
  ExpectRejected({{Op::kPushLit, 0, 0}, {Op::kIn, 0, 1}}, 1, 1, 2, 2,
                 VerifyErrorCode::kBadInListIndex);
}

TEST(VerifierRejects, BadColumnIndex) {
  ExpectRejected({{Op::kLoadDetail, 0, 9}}, 0, 0, 2, 2,
                 VerifyErrorCode::kBadColumnIndex);
  ExpectRejected({{Op::kLoadBase, 0, -1}}, 0, 0, 2, 2,
                 VerifyErrorCode::kBadColumnIndex);
}

TEST(VerifierRejects, MissingSide) {
  // Detail side absent from the evaluation context (negative column count).
  ExpectRejected({{Op::kLoadDetail, 0, 0}}, 0, 0, 2, -1,
                 VerifyErrorCode::kMissingSide);
}

TEST(VerifierRejects, WildJumpTarget) {
  ExpectRejected({{Op::kPushLit, 0, 0}, {Op::kJumpIfNotTruthy, 0, 77},
                  {Op::kPushLit, 0, 0}},
                 1, 0, 2, 2, VerifyErrorCode::kBadJumpTarget);
}

TEST(VerifierRejects, BackwardJump) {
  // A backward jump breaks the termination certificate.
  ExpectRejected({{Op::kPushLit, 0, 0}, {Op::kJumpIfNotTruthy, 0, 0},
                  {Op::kPushLit, 0, 0}},
                 1, 0, 2, 2, VerifyErrorCode::kBackwardJump);
}

TEST(VerifierRejects, StackUnderflow) {
  // kCompare pops two; only one value was pushed.
  ExpectRejected({{Op::kPushLit, 0, 0},
                  {Op::kCompare, static_cast<uint8_t>(BinaryOp::kEq), 0}},
                 1, 0, 2, 2, VerifyErrorCode::kStackUnderflow);
  // kNot on an empty stack.
  ExpectRejected({{Op::kNot, 0, 0}}, 0, 0, 2, 2, VerifyErrorCode::kStackUnderflow);
}

TEST(VerifierRejects, MergeDepthMismatch) {
  // pc3 is reached with depth 0 via the jump at pc1 but depth 1 by falling
  // through pc2 — inconsistent stack shape at a merge point.
  ExpectRejected({{Op::kPushLit, 0, 0},
                  {Op::kJumpIfNotTruthy, 0, 3},
                  {Op::kPushLit, 0, 0},
                  {Op::kPushLit, 0, 0}},
                 1, 0, 2, 2, VerifyErrorCode::kStackDepthMismatch);
}

TEST(VerifierRejects, BadResultArity) {
  // Halts with two values on the stack.
  ExpectRejected({{Op::kPushLit, 0, 0}, {Op::kPushLit, 0, 0}}, 1, 0, 2, 2,
                 VerifyErrorCode::kBadResultArity);
  // Halts with zero values.
  ExpectRejected({{Op::kPushLit, 0, 0}, {Op::kJumpIfNotTruthy, 0, 2}}, 1, 0, 2, 2,
                 VerifyErrorCode::kBadResultArity);
}

TEST(VerifierWarns, UnreachableCode) {
  // pc2 is skipped by the unconditional jump; the program is still valid.
  VerifierReport report = VerifyBytecodeProgram(
      {{Op::kPushLit, 0, 0}, {Op::kJump, 0, 3}, {Op::kPushLit, 0, 0}}, 1, 0, 2, 2);
  EXPECT_TRUE(report.ok()) << report.ToString();
  bool warned = false;
  for (const VerifierDiagnostic& d : report.diagnostics) {
    if (d.code == VerifyErrorCode::kUnreachableCode) {
      EXPECT_FALSE(d.is_error);
      EXPECT_EQ(d.pc, 2);
      warned = true;
    }
  }
  EXPECT_TRUE(warned) << report.ToString();
}

TEST(VerifierIntegration, MutatedCompiledProgramIsRejected) {
  // Take a real emitter program, then corrupt one jump target: rejection must
  // be structured, and the pristine program must still verify.
  Schema bs = BaseSchema(), ds = DetailSchema();
  ExprPtr e = And(Lt(RCol("d_int"), Lit(5)), Gt(BCol("b_int"), Lit(0)));
  Result<BytecodeExpr> bc = BytecodeExpr::Compile(e, &bs, &ds);
  ASSERT_TRUE(bc.ok());
  ASSERT_TRUE(VerifyBytecode(*bc, &bs, &ds).ok());

  std::vector<Instr> mutated = bc->code();
  bool found_jump = false;
  for (Instr& in : mutated) {
    if (in.op == Op::kAndJump || in.op == Op::kOrJump) {
      in.a = 1 << 20;  // wild forward target
      found_jump = true;
      break;
    }
  }
  ASSERT_TRUE(found_jump);
  VerifierReport report = VerifyBytecodeProgram(
      mutated, static_cast<int>(bc->literals().size()),
      static_cast<int>(bc->in_lists().size()), bs.num_fields(), ds.num_fields());
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.ToStatus().ok());
}

TEST(VerifierIntegration, HardGateRejectsAtCompileTime) {
  // Under MDJOIN_VERIFY_PLANS=1, CompileExpr itself runs the verifier; a
  // passing θ must still compile (the gate is transparent for valid
  // programs). The failing direction requires injecting a broken emitter and
  // is covered by the raw-parts corpus above.
  Schema bs = BaseSchema(), ds = DetailSchema();
  Result<CompiledExpr> compiled =
      CompileExpr(And(Lt(RCol("d_int"), Lit(5)), Eq(BCol("b_int"), RCol("d_int"))),
                  &bs, &ds);
  ASSERT_TRUE(compiled.ok());
}

}  // namespace
}  // namespace mdjoin
