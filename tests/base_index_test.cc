/// Direct tests of the multi-granularity base index (§4.5), including the
/// rare wildcard probe path where the *detail* side holds ALL (a cuboid
/// feeding another MD-join, as in Theorem 4.5 chains).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/base_index.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using testutil::ALL;
using testutil::I;
using testutil::NUL;
using testutil::S;

Table MakeBase(std::vector<std::vector<Value>> rows) {
  TableBuilder b({{"prod", DataType::kInt64}, {"month", DataType::kInt64}});
  for (auto& row : rows) b.AppendRowOrDie(std::move(row));
  return std::move(b).Finish();
}

Table MakeDetail(std::vector<std::vector<Value>> rows) {
  TableBuilder b({{"prod", DataType::kInt64},
                  {"month", DataType::kInt64},
                  {"sale", DataType::kFloat64}});
  for (auto& row : rows) b.AppendRowOrDie(std::move(row));
  return std::move(b).Finish();
}

std::vector<EquiPair> DimEqui() {
  return {{BCol("prod"), RCol("prod")}, {BCol("month"), RCol("month")}};
}

std::vector<int64_t> AllRows(const Table& t) {
  std::vector<int64_t> rows(static_cast<size_t>(t.num_rows()));
  for (int64_t i = 0; i < t.num_rows(); ++i) rows[static_cast<size_t>(i)] = i;
  return rows;
}

std::vector<int64_t> Probe(const BaseIndex& index, const Table& detail, int64_t row) {
  RowCtx ctx;
  ctx.detail = &detail;
  ctx.detail_row = row;
  std::vector<int64_t> out;
  index.Probe(ctx, &out);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(BaseIndexTest, FlatBaseSingleBucket) {
  Table base = MakeBase({{I(1), I(1)}, {I(1), I(2)}, {I(2), I(1)}});
  Table detail = MakeDetail({{I(1), I(2), testutil::F(5)}});
  Result<BaseIndex> index = BaseIndex::Build(base, AllRows(base), DimEqui(),
                                             detail.schema());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->num_masks(), 1);
  EXPECT_EQ(Probe(*index, detail, 0), (std::vector<int64_t>{1}));
}

TEST(BaseIndexTest, CubeBaseProbesEveryMask) {
  // Four granularities: (p,m), (p,ALL), (ALL,m), (ALL,ALL).
  Table base = MakeBase({{I(1), I(2)},     // row 0
                         {I(1), ALL()},    // row 1
                         {ALL(), I(2)},    // row 2
                         {ALL(), ALL()},   // row 3
                         {I(9), I(9)}});   // row 4: never matches
  Table detail = MakeDetail({{I(1), I(2), testutil::F(5)}});
  Result<BaseIndex> index = BaseIndex::Build(base, AllRows(base), DimEqui(),
                                             detail.schema());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_masks(), 4);
  EXPECT_EQ(Probe(*index, detail, 0), (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST(BaseIndexTest, NullBaseKeysExcluded) {
  Table base = MakeBase({{NUL(), I(2)}, {I(1), I(2)}});
  Table detail = MakeDetail({{I(1), I(2), testutil::F(5)}});
  Result<BaseIndex> index = BaseIndex::Build(base, AllRows(base), DimEqui(),
                                             detail.schema());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(Probe(*index, detail, 0), (std::vector<int64_t>{1}));
}

TEST(BaseIndexTest, NullDetailKeyMatchesNothing) {
  Table base = MakeBase({{I(1), I(2)}, {ALL(), ALL()}});
  Table detail = MakeDetail({{NUL(), I(2), testutil::F(5)}});
  Result<BaseIndex> index = BaseIndex::Build(base, AllRows(base), DimEqui(),
                                             detail.schema());
  ASSERT_TRUE(index.ok());
  // The (1,2) row needs prod which is NULL -> no match. The (ALL,ALL) bucket
  // has no probe positions at all -> matches (NULL never reaches a
  // comparison there).
  EXPECT_EQ(Probe(*index, detail, 0), (std::vector<int64_t>{1}));
}

TEST(BaseIndexTest, DetailSideAllTriggersWildcardWalk) {
  // Detail tuples carrying ALL happen when a finer cuboid's output feeds a
  // coarser MD-join. (ALL, 2) in the detail must match base rows at every
  // prod with month 2 (and coarser).
  Table base = MakeBase({{I(1), I(2)},    // row 0: matches (prod wildcarded)
                         {I(1), I(3)},    // row 1: month mismatch
                         {ALL(), I(2)},   // row 2: matches
                         {I(5), ALL()},   // row 3: matches (both wildcards)
                         {ALL(), ALL()}}); // row 4: matches
  Table detail = MakeDetail({{ALL(), I(2), testutil::F(1)}});
  Result<BaseIndex> index = BaseIndex::Build(base, AllRows(base), DimEqui(),
                                             detail.schema());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(Probe(*index, detail, 0), (std::vector<int64_t>{0, 2, 3, 4}));
}

TEST(BaseIndexTest, RestrictedRowSubset) {
  Table base = MakeBase({{I(1), I(2)}, {I(1), I(2)}, {I(1), I(2)}});
  Table detail = MakeDetail({{I(1), I(2), testutil::F(5)}});
  // Only rows 0 and 2 are indexed (a Theorem 4.1 fragment / B-only filter).
  Result<BaseIndex> index =
      BaseIndex::Build(base, {0, 2}, DimEqui(), detail.schema());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(Probe(*index, detail, 0), (std::vector<int64_t>{0, 2}));
}

TEST(BaseIndexTest, ComputedKeysOnBothSides) {
  // B.month + 1 = R.month - 1 (i.e., detail two months later).
  Table base = MakeBase({{I(1), I(2)}, {I(1), I(5)}});
  Table detail = MakeDetail({{I(1), I(4), testutil::F(5)}});
  std::vector<EquiPair> equi = {{BCol("prod"), RCol("prod")},
                                {Add(BCol("month"), Lit(1)), Sub(RCol("month"), Lit(1))}};
  Result<BaseIndex> index = BaseIndex::Build(base, AllRows(base), equi,
                                             detail.schema());
  ASSERT_TRUE(index.ok());
  // base row 0: 2+1=3 == 4-1=3 -> match. base row 1: 5+1=6 != 3.
  EXPECT_EQ(Probe(*index, detail, 0), (std::vector<int64_t>{0}));
}

TEST(BaseIndexTest, CrossTypeNumericKeysAgree) {
  // Int64 base key vs Float64 detail key with equal numeric value must
  // collide (Value::Hash is numeric-widening).
  TableBuilder bb({{"k", DataType::kInt64}});
  bb.AppendRowOrDie({I(3)});
  Table base = std::move(bb).Finish();
  TableBuilder db({{"k", DataType::kFloat64}});
  db.AppendRowOrDie({testutil::F(3.0)});
  Table detail = std::move(db).Finish();
  std::vector<EquiPair> equi = {{BCol("k"), RCol("k")}};
  Result<BaseIndex> index =
      BaseIndex::Build(base, {0}, equi, detail.schema());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(Probe(*index, detail, 0), (std::vector<int64_t>{0}));
}

TEST(BaseIndexTest, EmptyBase) {
  Table base = MakeBase({});
  Table detail = MakeDetail({{I(1), I(2), testutil::F(5)}});
  Result<BaseIndex> index = BaseIndex::Build(base, {}, DimEqui(), detail.schema());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_masks(), 0);
  EXPECT_TRUE(Probe(*index, detail, 0).empty());
}

TEST(BaseIndexTest, BuildRejectsUnboundColumns) {
  Table base = MakeBase({{I(1), I(2)}});
  Table detail = MakeDetail({{I(1), I(2), testutil::F(5)}});
  std::vector<EquiPair> equi = {{BCol("nope"), RCol("prod")}};
  EXPECT_FALSE(BaseIndex::Build(base, {0}, equi, detail.schema()).ok());
}

}  // namespace
}  // namespace mdjoin
