/// Morsel-driven parallel MD-join coverage: scheduler unit behavior
/// (complete, disjoint coverage of the unit space under concurrent pulls),
/// bit-identical results across thread counts, morsel sizes, and θ shapes
/// for both public entry points, executor routing via
/// MdJoinOptions::num_threads, failpoint-driven cancellation landing
/// mid-morsel, and the guard short-circuit inside the partial-state merge.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/query_guard.h"
#include "core/detail_scan.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "optimizer/executor.h"
#include "optimizer/plan.h"
#include "parallel/morsel_scheduler.h"
#include "parallel/parallel_mdjoin.h"
#include "ra/group_by.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT

class MorselTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Global()->Reset(); }
  void TearDown() override { FailpointRegistry::Global()->Reset(); }
};

TEST_F(MorselTest, SchedulerCoversUnitSpaceExactlyOnce) {
  MorselScheduler sched(/*num_jobs=*/3, /*rows_per_job=*/10, /*morsel_size=*/4);
  // 10 rows at morsel 4 → 3 morsels per job, 9 units total.
  EXPECT_EQ(sched.total_morsels(), 9);
  std::set<std::pair<int64_t, int64_t>> seen;  // (job, lo)
  MorselScheduler::Morsel m;
  while (sched.Next(&m)) {
    EXPECT_GE(m.job, 0);
    EXPECT_LT(m.job, 3);
    EXPECT_LT(m.lo, m.hi);
    EXPECT_LE(m.hi, 10);
    EXPECT_LE(m.hi - m.lo, 4);
    EXPECT_TRUE(seen.emplace(m.job, m.lo).second) << "unit dispatched twice";
  }
  EXPECT_EQ(seen.size(), 9u);
  EXPECT_EQ(sched.dispatched(), 9);
  // One drained poll: the while-loop's terminating Next().
  EXPECT_EQ(sched.steal_waits(), 1);
  // Each job's morsels tile [0, 10) with no gaps.
  for (int64_t job = 0; job < 3; ++job) {
    EXPECT_TRUE(seen.count({job, 0}) && seen.count({job, 4}) && seen.count({job, 8}));
  }
}

TEST_F(MorselTest, SchedulerDegenerateInputs) {
  MorselScheduler empty(/*num_jobs=*/4, /*rows_per_job=*/0, /*morsel_size=*/16);
  MorselScheduler::Morsel m;
  EXPECT_EQ(empty.total_morsels(), 0);
  EXPECT_FALSE(empty.Next(&m));
  EXPECT_EQ(empty.dispatched(), 0);

  // morsel_size < 1 is treated as 1 row per unit.
  MorselScheduler tiny(/*num_jobs=*/1, /*rows_per_job=*/3, /*morsel_size=*/0);
  EXPECT_EQ(tiny.total_morsels(), 3);
  EXPECT_EQ(tiny.morsel_size(), 1);

  // Oversized morsel: one unit spanning the whole relation (the legacy
  // static-split degenerate case).
  MorselScheduler one(/*num_jobs=*/2, /*rows_per_job=*/5, /*morsel_size=*/1000);
  EXPECT_EQ(one.total_morsels(), 2);
  ASSERT_TRUE(one.Next(&m));
  EXPECT_EQ(m.lo, 0);
  EXPECT_EQ(m.hi, 5);
}

TEST_F(MorselTest, SchedulerConcurrentPullsAreDisjointAndComplete) {
  const int64_t jobs = 5, rows = 1000, morsel = 7;
  MorselScheduler sched(jobs, rows, morsel);
  const int64_t per_job = (rows + morsel - 1) / morsel;
  constexpr int kThreads = 8;
  std::vector<std::vector<MorselScheduler::Morsel>> pulled(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      MorselScheduler::Morsel m;
      while (sched.Next(&m)) pulled[static_cast<size_t>(t)].push_back(m);
    });
  }
  for (std::thread& th : threads) th.join();

  std::set<std::pair<int64_t, int64_t>> seen;
  int64_t covered_rows = 0;
  for (const auto& list : pulled) {
    for (const MorselScheduler::Morsel& m : list) {
      EXPECT_TRUE(seen.emplace(m.job, m.lo).second) << "unit dispatched twice";
      covered_rows += m.hi - m.lo;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), jobs * per_job);
  EXPECT_EQ(covered_rows, jobs * rows);
  EXPECT_EQ(sched.dispatched(), sched.total_morsels());
  // Every worker's pull loop ends on a failed poll.
  EXPECT_GE(sched.steal_waits(), kThreads);
}

/// The determinism matrix of the acceptance criteria: for every θ shape,
/// thread count, and morsel size — including morsel 1 (maximum interleaving)
/// and morsel |R| (the legacy static split) — both entry points must produce
/// exactly the sequential evaluator's table. TablesEqualOrdered compares
/// cells with Value::Equals, i.e. doubles bit-for-bit; the sales amounts are
/// integer-valued so float sums are exact under any merge order.
TEST_F(MorselTest, BitIdenticalAcrossThreadsMorselsAndThetaShapes) {
  Table sales = testutil::RandomSales(71, 400);
  Table flat_base = *GroupByBase(sales, {"cust", "month"});
  Table cube_base = *CubeByBase(sales, {"prod", "month"});

  struct Shape {
    const char* name;
    const Table* base;
    ExprPtr theta;
  };
  std::vector<Shape> shapes = {
      {"equi", &flat_base,
       And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("month"), BCol("month")))},
      {"equi+residual", &flat_base,
       And(Eq(RCol("cust"), BCol("cust")), Ge(RCol("month"), BCol("month")))},
      {"cube", &cube_base,
       And(Eq(RCol("prod"), BCol("prod")), Eq(RCol("month"), BCol("month")),
           Gt(RCol("sale"), Lit(30.0)))},
  };
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total"),
                               Min(RCol("sale"), "lo"), Avg(RCol("sale"), "a"),
                               CountDistinct(RCol("prod"), "dp")};

  for (const Shape& shape : shapes) {
    Result<Table> sequential = MdJoin(*shape.base, sales, aggs, shape.theta);
    ASSERT_TRUE(sequential.ok()) << shape.name;
    for (int threads : {1, 2, 8}) {
      for (int64_t morsel : {int64_t{1}, int64_t{1024}, sales.num_rows()}) {
        MdJoinOptions options;
        options.morsel_size = morsel;
        ParallelMdJoinStats stats;
        Result<Table> split = ParallelMdJoin(*shape.base, sales, aggs, shape.theta,
                                             /*num_partitions=*/4, threads, options,
                                             &stats);
        ASSERT_TRUE(split.ok()) << shape.name << " threads=" << threads
                                << " morsel=" << morsel << ": "
                                << split.status().ToString();
        EXPECT_TRUE(TablesEqualOrdered(*sequential, *split))
            << "base split: " << shape.name << " threads=" << threads
            << " morsel=" << morsel;
        EXPECT_EQ(stats.total_detail_rows_scanned, 4 * sales.num_rows());

        Result<Table> detail = ParallelMdJoinDetailSplit(
            *shape.base, sales, aggs, shape.theta, /*num_partitions=*/threads, threads,
            options, &stats);
        ASSERT_TRUE(detail.ok()) << shape.name << " threads=" << threads
                                 << " morsel=" << morsel << ": "
                                 << detail.status().ToString();
        EXPECT_TRUE(TablesEqualOrdered(*sequential, *detail))
            << "detail split: " << shape.name << " threads=" << threads
            << " morsel=" << morsel;
        EXPECT_EQ(stats.total_detail_rows_scanned, sales.num_rows());
      }
    }
  }
}

/// Same matrix, row execution mode: covers the heap-state scan path and the
/// per-cell virtual Merge inside MergeWorkerPartials.
TEST_F(MorselTest, RowModeMatchesSequentialUnderMorsels) {
  Table sales = testutil::RandomSales(73, 300);
  Table base = *GroupByBase(sales, {"cust"});
  ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total"),
                               CountDistinct(RCol("prod"), "dp")};
  MdJoinOptions options;
  options.execution_mode = ExecutionMode::kRow;
  Result<Table> sequential = MdJoin(base, sales, aggs, theta, options);
  ASSERT_TRUE(sequential.ok());
  for (int64_t morsel : {int64_t{1}, int64_t{37}, sales.num_rows()}) {
    options.morsel_size = morsel;
    Result<Table> parallel =
        ParallelMdJoinDetailSplit(base, sales, aggs, theta, 8, 8, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_TRUE(TablesEqualOrdered(*sequential, *parallel)) << "morsel=" << morsel;
  }
}

TEST_F(MorselTest, ExecutorRoutesThroughMorselEngine) {
  Table sales = testutil::RandomSales(79, 350);
  Table base = *GroupByBase(sales, {"cust"});
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", &sales).ok());
  ASSERT_TRUE(catalog.Register("Base", &base).ok());
  PlanPtr plan = MdJoinPlan(TableRef("Base"), TableRef("Sales"),
                            {Count("n"), Sum(RCol("sale"), "total")},
                            Eq(RCol("cust"), BCol("cust")));

  ExecStats seq_stats;
  Result<Table> sequential = ExecutePlan(plan, catalog, {}, &seq_stats);
  ASSERT_TRUE(sequential.ok());

  MdJoinOptions options;
  options.num_threads = 4;
  ExecStats par_stats;
  Result<Table> parallel = ExecutePlan(plan, catalog, options, &par_stats);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_TRUE(TablesEqualOrdered(*sequential, *parallel));
  // Detail split: one logical scan of R either way.
  EXPECT_EQ(par_stats.detail_rows_scanned, seq_stats.detail_rows_scanned);
  EXPECT_EQ(par_stats.matched_pairs, seq_stats.matched_pairs);
}

TEST_F(MorselTest, CancelLandsMidMorselWithinStride) {
  Table sales = testutil::RandomSales(83, 2000);
  Table base = *GroupByBase(sales, {"cust"});
  std::vector<AggSpec> aggs = {Count("n")};
  ExprPtr theta = Eq(RCol("cust"), BCol("cust"));

  for (int variant = 0; variant < 2; ++variant) {
    FailpointRegistry::Global()->Reset();
    // Skip the entry check and a few worker strides so the cancel fires
    // while morsels are in flight, then verify cooperative shutdown.
    FailpointRegistry::Global()->Enable("query_guard:cancel", /*count=*/1, /*skip=*/4);
    QueryGuardOptions guard_options;
    guard_options.check_stride = 64;
    QueryGuard guard(guard_options);
    MdJoinOptions options;
    options.guard = &guard;
    options.morsel_size = 64;  // many small morsels in flight
    ParallelMdJoinStats stats;
    Result<Table> result =
        variant == 0
            ? ParallelMdJoin(base, sales, aggs, theta, 4, 4, options, &stats)
            : ParallelMdJoinDetailSplit(base, sales, aggs, theta, 4, 4, options,
                                        &stats);
    ASSERT_FALSE(result.ok()) << "variant=" << variant;
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled) << "variant=" << variant;
    // The cursor stopped being drained once the trip propagated.
    EXPECT_LT(stats.total_detail_rows_scanned,
              (variant == 0 ? 4 : 1) * sales.num_rows())
        << "variant=" << variant;
  }
}

TEST_F(MorselTest, WorkerFailpointPropagatesFirstError) {
  Table sales = testutil::RandomSales(89, 500);
  Table base = *GroupByBase(sales, {"cust"});
  FailpointRegistry::Global()->Enable("parallel:fragment_error", /*count=*/1);
  MdJoinOptions options;
  options.morsel_size = 32;
  Result<Table> result = ParallelMdJoin(base, sales, {Count("n")},
                                        Eq(RCol("cust"), BCol("cust")), 4, 4, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("parallel:fragment_error"),
            std::string::npos);
}

/// Regression for the merge-tail guard gap: cancellation must be honored
/// inside the per-cell Merge loop (heap states) and the column MergeRange
/// chunks, not only during scans. A pre-cancelled stride-1 guard has to stop
/// the merge at its first tick.
TEST_F(MorselTest, MergeShortCircuitsOnCancelledGuard) {
  Table sales = testutil::RandomSales(97, 50);
  Table base = *GroupByBase(sales, {"cust"});
  Result<std::vector<BoundAgg>> bound =
      BindAggs({Count("n"), CountDistinct(RCol("prod"), "dp")}, &base.schema(),
               &sales.schema());
  ASSERT_TRUE(bound.ok());

  for (bool vectorized : {false, true}) {
    QueryGuardOptions guard_options;
    guard_options.check_stride = 1;
    QueryGuard guard(guard_options);
    DetailScanWorker into(base, *bound, vectorized, &guard);
    DetailScanWorker from(base, *bound, vectorized, &guard);
    guard.Cancel();
    Status st = MergeWorkerPartials(&into, from, &guard);
    ASSERT_FALSE(st.ok()) << "vectorized=" << vectorized;
    EXPECT_EQ(st.code(), StatusCode::kCancelled) << "vectorized=" << vectorized;
  }
}

}  // namespace
}  // namespace mdjoin
