/// Randomized plan-level rule sweep: build random MD-join plans, apply every
/// rule that fires, and check result equivalence by execution. Complements
/// the targeted rule tests with breadth across random θ shapes, aggregate
/// mixes and base generators.

#include <gtest/gtest.h>

#include "analyze/plan_invariants.h"
#include "common/random.h"
#include "expr/conjuncts.h"
#include "optimizer/executor.h"
#include "optimizer/optimize.h"
#include "optimizer/rules.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT

/// Random θ over (cust, month) base keys, mixing every conjunct class.
ExprPtr RandomTheta(Random* rng) {
  std::vector<ExprPtr> cs;
  cs.push_back(Eq(RCol("cust"), BCol("cust")));
  if (rng->Bernoulli(0.5)) cs.push_back(Eq(RCol("month"), BCol("month")));
  if (rng->Bernoulli(0.5)) {
    const char* states[] = {"NY", "NJ", "CT", "CA"};
    cs.push_back(Eq(RCol("state"), Lit(states[rng->Uniform(4)])));
  }
  if (rng->Bernoulli(0.4)) {
    cs.push_back(Gt(RCol("sale"), Lit(static_cast<double>(rng->UniformInt(50, 400)))));
  }
  if (rng->Bernoulli(0.3)) cs.push_back(Le(BCol("cust"), Lit(rng->UniformInt(2, 5))));
  if (rng->Bernoulli(0.25)) {
    cs.push_back(Gt(RCol("sale"), Mul(BCol("cust"), Lit(40))));
  }
  return CombineConjuncts(std::move(cs));
}

std::vector<AggSpec> RandomAggs(Random* rng, const std::string& suffix) {
  std::vector<AggSpec> aggs;
  aggs.push_back(Count("n" + suffix));
  if (rng->Bernoulli(0.7)) aggs.push_back(Sum(RCol("sale"), "s" + suffix));
  if (rng->Bernoulli(0.4)) aggs.push_back(Min(RCol("sale"), "lo" + suffix));
  if (rng->Bernoulli(0.4)) aggs.push_back(Avg(RCol("sale"), "a" + suffix));
  return aggs;
}

class RuleFuzz : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Random>(GetParam());
    sales_ = testutil::RandomSales(GetParam() + 7000, 160);
    ASSERT_TRUE(catalog_.Register("sales", &sales_).ok());
  }

  PlanPtr Base() {
    return DistinctPlan(ProjectPlan(
        TableRef("sales"), {{Col("cust"), "cust"}, {Col("month"), "month"}}));
  }

  /// The analyzer hook of the fuzz sweep: a rewrite the certificates accepted
  /// must (a) still satisfy every static plan invariant and (b) produce the
  /// same table as the original. Execution runs with verify_plans on, so the
  /// analyzer also re-checks the plans the executor actually receives.
  void ExpectEquivalent(const PlanPtr& a, const PlanPtr& b, const char* what) {
    Status verified = VerifyPlan(b, catalog_, what);
    ASSERT_TRUE(verified.ok())
        << "analyzer-accepted rewrite failed static verification: "
        << verified.ToString() << "\nrewritten:\n" << ExplainPlan(b);
    MdJoinOptions options;
    options.verify_plans = true;
    Result<Table> ra = ExecutePlanCse(a, catalog_, options);
    Result<Table> rb = ExecutePlanCse(b, catalog_, options);
    ASSERT_TRUE(ra.ok()) << what << ": " << ra.status().ToString();
    ASSERT_TRUE(rb.ok()) << what << ": " << rb.status().ToString();
    EXPECT_TRUE(TablesEqualUnordered(*ra, *rb))
        << what << "\noriginal:\n" << ExplainPlan(a) << "rewritten:\n"
        << ExplainPlan(b);
  }

  std::unique_ptr<Random> rng_;
  Table sales_;
  Catalog catalog_;
};

TEST_P(RuleFuzz, EveryFiringRulePreservesResults) {
  for (int round = 0; round < 6; ++round) {
    // Random chain of 1–3 MD-joins over the same detail relation.
    PlanPtr plan = Base();
    int depth = static_cast<int>(rng_->UniformInt(1, 3));
    for (int i = 0; i < depth; ++i) {
      plan = MdJoinPlan(plan, TableRef("sales"),
                        RandomAggs(rng_.get(), "_" + std::to_string(round) + "_" +
                                                   std::to_string(i)),
                        RandomTheta(rng_.get()));
    }
    // Rules that take only the plan.
    if (Result<PlanPtr> r = ApplySelectionPushdown(plan); r.ok()) {
      ExpectEquivalent(plan, *r, "Theorem 4.2");
    }
    if (Result<PlanPtr> r = FuseMdJoinSeries(plan); r.ok()) {
      ExpectEquivalent(plan, *r, "Theorem 4.3 fusion");
    }
    for (int m : {2, 5}) {
      if (Result<PlanPtr> r = ApplyBasePartitioning(plan, m); r.ok()) {
        ExpectEquivalent(plan, *r, "Theorem 4.1");
      }
    }
    // Catalog-aware rules.
    if (Result<PlanPtr> r = CommuteMdJoins(plan, catalog_); r.ok()) {
      // Column order changes; compare on the sorted projection of shared
      // columns — simplest is to compare against re-commuting back.
      Result<PlanPtr> back = CommuteMdJoins(*r, catalog_);
      ASSERT_TRUE(back.ok());
      ExpectEquivalent(plan, *back, "Theorem 4.3 commute round-trip");
    }
    if (Result<PlanPtr> r = SplitToEquiJoin(plan, catalog_); r.ok()) {
      ExpectEquivalent(plan, *r, "Theorem 4.4");
    }
    // The driver composes them; must also be safe, with the analyzer
    // re-checking the plan after every accepted rewrite.
    OptimizeOptions opt_options;
    opt_options.verify_plans = true;
    Result<PlanPtr> optimized = OptimizePlan(plan, catalog_, opt_options);
    ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
    ExpectEquivalent(plan, *optimized, "OptimizePlan");
  }
}

TEST_P(RuleFuzz, FilteredBaseTransferFuzz) {
  for (int round = 0; round < 4; ++round) {
    PlanPtr filtered = FilterPlan(Base(), Le(Col("cust"), Lit(rng_->UniformInt(1, 5))));
    PlanPtr plan = MdJoinPlan(filtered, TableRef("sales"),
                              RandomAggs(rng_.get(), "_" + std::to_string(round)),
                              RandomTheta(rng_.get()));
    if (Result<PlanPtr> r = ApplyBaseSelectionTransfer(plan); r.ok()) {
      ExpectEquivalent(plan, *r, "Observation 4.1");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleFuzz, ::testing::Values(11, 22, 33, 44),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mdjoin
