/// Exhaustive evaluator-configuration sweep: every combination of
/// MdJoinOptions (index on/off × pushdown on/off × memory budget) must
/// produce bit-identical results for every θ-condition class, across seeds.
/// One parameterized suite covering the evaluator's whole option space.

#include <gtest/gtest.h>

#include <tuple>

#include "core/mdjoin.h"
#include "core/reference.h"
#include "cube/base_tables.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT

struct ThetaCase {
  const char* name;
  ExprPtr theta;
  bool cube_base;  // use a cube base table instead of distinct keys
};

std::vector<ThetaCase> ThetaCases() {
  std::vector<ThetaCase> cases;
  cases.push_back({"plain_equi", Eq(RCol("cust"), BCol("cust")), false});
  cases.push_back({"multi_equi",
                   And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("month"), BCol("month"))),
                   false});
  cases.push_back({"computed_key",
                   And(Eq(RCol("cust"), BCol("cust")),
                       Eq(RCol("month"), Sub(BCol("month"), Lit(1)))),
                   false});
  cases.push_back({"detail_only",
                   And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit("NY")),
                       Gt(RCol("sale"), Lit(100))),
                   false});
  cases.push_back({"base_only",
                   And(Eq(RCol("cust"), BCol("cust")), Le(BCol("cust"), Lit(3))),
                   false});
  cases.push_back({"residual_mixed",
                   And(Eq(RCol("cust"), BCol("cust")),
                       Gt(RCol("sale"), Mul(BCol("month"), Lit(30)))),
                   false});
  cases.push_back({"no_equi_at_all", Gt(RCol("sale"), Mul(BCol("cust"), Lit(50))),
                   false});
  cases.push_back({"cube_wildcards",
                   And(Eq(BCol("prod"), RCol("prod")), Eq(BCol("month"), RCol("month"))),
                   true});
  return cases;
}

/// Param: (seed, theta case index).
class OptionsMatrix : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(OptionsMatrix, AllConfigurationsAgreeWithReference) {
  auto [seed, case_index] = GetParam();
  ThetaCase theta_case = ThetaCases()[static_cast<size_t>(case_index)];
  Table sales = testutil::RandomSales(seed, 150);
  Table base = theta_case.cube_base
                   ? *CubeByBase(sales, {"prod", "month"})
                   : *GroupByBase(sales, {"cust", "month"});
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total"),
                               Min(RCol("sale"), "lo"), Avg(RCol("sale"), "mean")};

  Result<Table> oracle = MdJoinReference(base, sales, aggs, theta_case.theta);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  for (bool use_index : {true, false}) {
    for (bool pushdown : {true, false}) {
      for (int64_t budget : {int64_t{0}, int64_t{1}, int64_t{7}}) {
        MdJoinOptions options;
        options.use_index = use_index;
        options.push_detail_selection = pushdown;
        options.base_rows_per_pass = budget;
        Result<Table> got = MdJoin(base, sales, aggs, theta_case.theta, options);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_TRUE(TablesEqualOrdered(*oracle, *got))
            << theta_case.name << " index=" << use_index << " pushdown=" << pushdown
            << " budget=" << budget;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThetas, OptionsMatrix,
    ::testing::Combine(::testing::Values(3, 17, 29),
                       ::testing::Range(0, static_cast<int>(ThetaCases().size()))),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, int>>& info) {
      return "seed_" + std::to_string(std::get<0>(info.param)) + "_" +
             ThetaCases()[static_cast<size_t>(std::get<1>(info.param))].name;
    });

}  // namespace
}  // namespace mdjoin
