/// Whole-system integration: CSV in → ANALYZE BY query → optimizer →
/// executor → CSV out, cross-checked against hand-built relational plans.
/// This is the path a downstream user of the library actually takes.

#include <gtest/gtest.h>

#include "analyze/binder.h"
#include "optimizer/executor.h"
#include "optimizer/optimize.h"
#include "ra/filter.h"
#include "ra/group_by.h"
#include "ra/join.h"
#include "table/csv.h"
#include "table/table_ops.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Round-trip the data through CSV so the serialization path is part of
    // the pipeline under test.
    SalesConfig config;
    config.num_rows = 2000;
    config.num_customers = 40;
    config.num_products = 5;
    config.num_months = 6;
    config.num_states = 4;
    Table generated = GenerateSales(config);
    std::string csv = TableToCsv(generated);
    Result<Table> parsed = TableFromCsv(csv, generated.schema());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    sales_ = std::move(*parsed);
    ASSERT_TRUE(TablesEqualOrdered(generated, sales_));
    ASSERT_TRUE(catalog_.Register("Sales", &sales_).ok());
  }

  /// Parses, binds, optimizes, executes.
  Result<Table> RunOptimized(const std::string& sql) {
    Result<analyze::BoundQuery> bound = analyze::BindQueryString(sql, catalog_);
    if (!bound.ok()) return bound.status();
    MDJ_ASSIGN_OR_RETURN(PlanPtr optimized, OptimizePlan(bound->plan, catalog_));
    return ExecutePlanCse(optimized, catalog_);
  }

  Table sales_;
  Catalog catalog_;
};

TEST_F(EndToEndTest, OptimizedQueryMatchesUnoptimized) {
  const std::string sql =
      "select cust, sum(sale) as total, avg(X.sale) as avg_ny, "
      "count(Y.sale) as big_sales from Sales where year >= 1995 "
      "analyze by group(cust) "
      "such that X: X.cust = cust and X.state = 'NY', "
      "          Y: Y.cust = cust and Y.sale > 800 "
      "order by cust";
  Result<analyze::BoundQuery> bound = analyze::BindQueryString(sql, catalog_);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  OptimizeReport report;
  Result<PlanPtr> optimized = OptimizePlan(bound->plan, catalog_, {}, &report);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_FALSE(report.applied.empty()) << "expected at least one rule firing";
  Result<Table> plain = ExecutePlanCse(bound->plan, catalog_);
  Result<Table> opt = ExecutePlanCse(*optimized, catalog_);
  ASSERT_TRUE(plain.ok() && opt.ok());
  EXPECT_TRUE(TablesEqualOrdered(*plain, *opt));
}

TEST_F(EndToEndTest, CubeQueryAgainstPerCuboidGroupBys) {
  Result<Table> got = RunOptimized(
      "select prod, month, sum(sale) as total, count(*) as n from Sales "
      "analyze by cube(prod, month)");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // Spot-check three granularities against plain GROUP BYs.
  Result<Table> fine = GroupBy(sales_, {"prod", "month"},
                               {Sum(Col("sale"), "total"), Count("n")});
  Result<Table> coarse = GroupBy(sales_, {"prod"},
                                 {Sum(Col("sale"), "total"), Count("n")});
  Result<Table> total = AggregateAll(sales_, {Sum(Col("sale"), "total"), Count("n")});
  int matched_fine = 0, matched_coarse = 0, matched_total = 0;
  for (int64_t r = 0; r < got->num_rows(); ++r) {
    const Value& p = got->Get(r, 0);
    const Value& m = got->Get(r, 1);
    if (!p.is_all() && !m.is_all()) {
      for (int64_t g = 0; g < fine->num_rows(); ++g) {
        if (fine->Get(g, 0).Equals(p) && fine->Get(g, 1).Equals(m)) {
          EXPECT_DOUBLE_EQ(got->Get(r, 2).AsDouble(), fine->Get(g, 2).AsDouble());
          EXPECT_EQ(got->Get(r, 3).int64(), fine->Get(g, 3).int64());
          ++matched_fine;
        }
      }
    } else if (!p.is_all() && m.is_all()) {
      for (int64_t g = 0; g < coarse->num_rows(); ++g) {
        if (coarse->Get(g, 0).Equals(p)) {
          EXPECT_DOUBLE_EQ(got->Get(r, 2).AsDouble(), coarse->Get(g, 1).AsDouble());
          ++matched_coarse;
        }
      }
    } else if (p.is_all() && m.is_all()) {
      EXPECT_DOUBLE_EQ(got->Get(r, 2).AsDouble(), total->Get(0, 0).AsDouble());
      ++matched_total;
    }
  }
  EXPECT_EQ(matched_fine, fine->num_rows());
  EXPECT_EQ(matched_coarse, coarse->num_rows());
  EXPECT_EQ(matched_total, 1);
}

TEST_F(EndToEndTest, ResultsSurviveCsvRoundTrip) {
  Result<Table> got = RunOptimized(
      "select prod, month, sum(sale) as total from Sales "
      "analyze by rollup(prod, month)");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // ALL markers and floats survive serialization.
  std::string csv = TableToCsv(*got);
  Result<Table> back = TableFromCsv(csv, got->schema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(TablesEqualOrdered(*got, *back));
}

TEST_F(EndToEndTest, HavingOrderAndVariablesCombined) {
  Result<Table> got = RunOptimized(
      "select cust, count(*) as n, avg(X.sale) as avg_ny from Sales "
      "analyze by group(cust) "
      "such that X: X.cust = cust and X.state = 'NY' "
      "having n >= 10 order by n desc, cust asc");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  for (int64_t r = 0; r < got->num_rows(); ++r) {
    EXPECT_GE(got->Get(r, 1).int64(), 10);
    if (r > 0) {
      int64_t prev = got->Get(r - 1, 1).int64(), cur = got->Get(r, 1).int64();
      EXPECT_TRUE(prev > cur ||
                  (prev == cur && got->Get(r - 1, 0).int64() < got->Get(r, 0).int64()));
    }
  }
  // Cross-check the counts against a GROUP BY + filter.
  Result<Table> counts = GroupBy(sales_, {"cust"}, {Count("n")});
  Result<Table> filtered = Filter(*counts, Ge(Col("n"), Lit(10)));
  EXPECT_EQ(got->num_rows(), filtered->num_rows());
}

TEST_F(EndToEndTest, TwoFactTablesThroughPlans) {
  PaymentsConfig pconfig;
  pconfig.num_rows = 800;
  pconfig.num_customers = 40;
  Table payments = GeneratePayments(pconfig);
  ASSERT_TRUE(catalog_.Register("Payments", &payments).ok());
  // Example 3.3 assembled as plans, optimized, and checked against the
  // outer-join baseline.
  ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("month"), BCol("month")));
  PlanPtr base = DistinctPlan(ProjectPlan(
      TableRef("Sales"), {{Col("cust"), "cust"}, {Col("month"), "month"}}));
  PlanPtr plan = MdJoinPlan(
      MdJoinPlan(base, TableRef("Sales"), {Sum(RCol("sale"), "total_sales")}, theta),
      TableRef("Payments"), {Sum(RCol("amount"), "total_paid")}, theta);
  Result<PlanPtr> optimized = OptimizePlan(plan, catalog_);
  ASSERT_TRUE(optimized.ok());
  Result<Table> got = ExecutePlanCse(*optimized, catalog_);
  ASSERT_TRUE(got.ok());

  Result<Table> base_t = DistinctOn(sales_, {"cust", "month"});
  Result<Table> s = GroupBy(sales_, {"cust", "month"}, {Sum(Col("sale"), "total_sales")});
  Result<Table> p =
      GroupBy(payments, {"cust", "month"}, {Sum(Col("amount"), "total_paid")});
  Result<Table> j1 =
      HashJoin(*base_t, *s, {"cust", "month"}, {"cust", "month"}, JoinType::kLeftOuter);
  Result<Table> baseline =
      HashJoin(*j1, *p, {"cust", "month"}, {"cust", "month"}, JoinType::kLeftOuter);
  ASSERT_TRUE(baseline.ok());
  EXPECT_TRUE(TablesEqualUnordered(*got, *baseline));
}

}  // namespace
}  // namespace mdjoin
