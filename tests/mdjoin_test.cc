#include <gtest/gtest.h>

#include "core/generalized.h"
#include "core/mdjoin.h"
#include "core/reference.h"
#include "cube/base_tables.h"
#include "ra/filter.h"
#include "ra/group_by.h"
#include "table/table_ops.h"
#include "tests/test_util.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using testutil::I;
using testutil::S;

/// θ for per-customer aggregation: R.cust = B.cust.
ExprPtr CustTheta() { return Eq(RCol("cust"), BCol("cust")); }

TEST(MdJoinTest, MatchesGroupByWhenBaseIsDistinctKeys) {
  // When B = select distinct cust and θ is the key equality, the MD-join
  // computes exactly the GROUP BY (note 3.1 in the paper).
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  ASSERT_TRUE(base.ok());
  Result<Table> md = MdJoin(*base, sales, {Sum(RCol("sale"), "total"), Count("n")},
                            CustTheta());
  ASSERT_TRUE(md.ok()) << md.status().ToString();
  Result<Table> gb = GroupBy(sales, {"cust"}, {Sum(Col("sale"), "total"), Count("n")});
  ASSERT_TRUE(gb.ok());
  EXPECT_TRUE(TablesEqualUnordered(*md, *gb));
}

TEST(MdJoinTest, OuterSemanticsKeepEveryBaseRow) {
  // Base rows with no matching detail tuples still appear (count 0, sum NULL).
  Table sales = testutil::SmallSales();
  TableBuilder extra({{"cust", DataType::kInt64}});
  for (int64_t c : {1, 2, 3, 4, 99}) extra.AppendRowOrDie({I(c)});
  Table base = std::move(extra).Finish();
  Result<Table> md =
      MdJoin(base, sales, {Count("n"), Sum(RCol("sale"), "total")}, CustTheta());
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md->num_rows(), 5);
  // Customer 99 never bought anything.
  EXPECT_EQ(md->Get(4, 0).int64(), 99);
  EXPECT_EQ(md->Get(4, 1).int64(), 0);
  EXPECT_TRUE(md->Get(4, 2).is_null());
}

TEST(MdJoinTest, OutputOrderFollowsBase) {
  Table sales = testutil::SmallSales();
  TableBuilder b({{"cust", DataType::kInt64}});
  for (int64_t c : {3, 1, 4}) b.AppendRowOrDie({I(c)});
  Result<Table> md = MdJoin(std::move(b).Finish(), sales, {Count("n")}, CustTheta());
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md->Get(0, 0).int64(), 3);
  EXPECT_EQ(md->Get(1, 0).int64(), 1);
  EXPECT_EQ(md->Get(2, 0).int64(), 4);
}

TEST(MdJoinTest, DetailOnlyConjunctRestricts) {
  // Example 2.2 shape: per-customer average sale in NY only.
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  ExprPtr theta = And(CustTheta(), Eq(RCol("state"), Lit("NY")));
  Result<Table> md = MdJoin(*base, sales, {Avg(RCol("sale"), "avg_ny")}, theta);
  ASSERT_TRUE(md.ok());
  // cust 1: NY sales 100, 200 -> avg 150. cust 4: none -> NULL.
  EXPECT_DOUBLE_EQ(md->Get(0, 1).float64(), 150.0);
  EXPECT_TRUE(md->Get(3, 1).is_null());
}

TEST(MdJoinTest, ComputedKeyTheta) {
  // Example 2.5 shape: aggregate the *previous* month per (prod, month).
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"prod", "month"});
  ExprPtr theta = And(Eq(RCol("prod"), BCol("prod")),
                      Eq(RCol("month"), Sub(BCol("month"), Lit(1))));
  Result<Table> md = MdJoin(*base, sales, {Avg(RCol("sale"), "prev_avg")}, theta);
  ASSERT_TRUE(md.ok()) << md.status().ToString();
  Result<Table> ref = MdJoinReference(*base, sales, {Avg(RCol("sale"), "prev_avg")}, theta);
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(TablesEqualUnordered(*md, *ref));
}

TEST(MdJoinTest, ResidualNonEquiConjunct) {
  // θ with an inequality against a base column (Example 2.3's second pass).
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  Result<Table> with_avg = MdJoin(*base, sales, {Avg(RCol("sale"), "avg_sale")},
                                  CustTheta());
  ASSERT_TRUE(with_avg.ok());
  ExprPtr theta2 = And(CustTheta(), Gt(RCol("sale"), BCol("avg_sale")));
  Result<Table> md = MdJoin(*with_avg, sales, {Count("above")}, theta2);
  ASSERT_TRUE(md.ok());
  Result<Table> ref = MdJoinReference(*with_avg, sales, {Count("above")}, theta2);
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(TablesEqualUnordered(*md, *ref));
}

TEST(MdJoinTest, CubeBaseWithAllWildcards) {
  // MD over a cube base: the ALL rows aggregate at coarser granularity.
  Table sales = testutil::SmallSales();
  Result<Table> base = CubeByBase(sales, {"prod", "month"});
  ASSERT_TRUE(base.ok());
  ExprPtr theta =
      And(Eq(BCol("prod"), RCol("prod")), Eq(BCol("month"), RCol("month")));
  Result<Table> md = MdJoin(*base, sales, {Sum(RCol("sale"), "total")}, theta);
  ASSERT_TRUE(md.ok());
  Result<Table> ref = MdJoinReference(*base, sales, {Sum(RCol("sale"), "total")}, theta);
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(TablesEqualUnordered(*md, *ref));
  // The (ALL, ALL) row holds the grand total.
  double grand = 0;
  for (int64_t r = 0; r < sales.num_rows(); ++r) grand += sales.Get(r, 6).AsDouble();
  bool found = false;
  for (int64_t r = 0; r < md->num_rows(); ++r) {
    if (md->Get(r, 0).is_all() && md->Get(r, 1).is_all()) {
      found = true;
      EXPECT_DOUBLE_EQ(md->Get(r, 2).AsDouble(), grand);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MdJoinTest, IndexAndNoIndexAgree) {
  Table sales = testutil::RandomSales(11, 300);
  Result<Table> base = GroupByBase(sales, {"cust", "month"});
  ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("month"), BCol("month")),
                      Gt(RCol("sale"), Lit(100)));
  MdJoinOptions indexed;
  MdJoinOptions plain;
  plain.use_index = false;
  plain.push_detail_selection = false;
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total"),
                               Min(RCol("sale"), "lo"), Max(RCol("sale"), "hi")};
  Result<Table> a = MdJoin(*base, sales, aggs, theta, indexed);
  Result<Table> b = MdJoin(*base, sales, aggs, theta, plain);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(TablesEqualOrdered(*a, *b));
}

TEST(MdJoinTest, IndexPrunesCandidatePairs) {
  Table sales = testutil::RandomSales(13, 500);
  Result<Table> base = GroupByBase(sales, {"cust"});
  MdJoinStats with_index, without_index;
  MdJoinOptions no_index;
  no_index.use_index = false;
  ASSERT_TRUE(MdJoin(*base, sales, {Count("n")}, CustTheta(), {}, &with_index).ok());
  ASSERT_TRUE(
      MdJoin(*base, sales, {Count("n")}, CustTheta(), no_index, &without_index).ok());
  // Nested loop tests |B| pairs per tuple; the index tests only Rel(t).
  EXPECT_EQ(without_index.candidate_pairs, base->num_rows() * sales.num_rows());
  EXPECT_EQ(with_index.candidate_pairs, sales.num_rows());  // unique cust key
  EXPECT_EQ(with_index.matched_pairs, without_index.matched_pairs);
}

TEST(MdJoinTest, PushdownSkipsDetailRows) {
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  ExprPtr theta = And(CustTheta(), Eq(RCol("year"), Lit(1999)));
  MdJoinStats pushed, unpushed;
  MdJoinOptions no_push;
  no_push.push_detail_selection = false;
  ASSERT_TRUE(MdJoin(*base, sales, {Count("n")}, theta, {}, &pushed).ok());
  ASSERT_TRUE(MdJoin(*base, sales, {Count("n")}, theta, no_push, &unpushed).ok());
  EXPECT_EQ(pushed.detail_rows_qualified, 3);  // three 1999 rows
  EXPECT_EQ(unpushed.detail_rows_qualified, sales.num_rows());
  EXPECT_EQ(pushed.matched_pairs, unpushed.matched_pairs);
}

TEST(MdJoinTest, MemoryBudgetMultiPass) {
  // §4.1.1: base larger than the budget => several scans of R, same result.
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});  // 4 rows
  MdJoinOptions budget;
  budget.base_rows_per_pass = 1;
  MdJoinStats stats;
  Result<Table> md = MdJoin(*base, sales, {Count("n")}, CustTheta(), budget, &stats);
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(stats.passes_over_detail, 4);
  EXPECT_EQ(stats.detail_rows_scanned, 4 * sales.num_rows());
  Result<Table> single = MdJoin(*base, sales, {Count("n")}, CustTheta());
  EXPECT_TRUE(TablesEqualOrdered(*md, *single));
}

TEST(MdJoinTest, EmptyBaseAndEmptyDetail) {
  Table sales = testutil::SmallSales();
  Table empty_base{Schema({{"cust", DataType::kInt64}})};
  Result<Table> md = MdJoin(empty_base, sales, {Count("n")}, CustTheta());
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md->num_rows(), 0);
  EXPECT_EQ(md->num_columns(), 2);

  Table empty_detail{testutil::SalesSchema()};
  Result<Table> base = GroupByBase(sales, {"cust"});
  Result<Table> md2 =
      MdJoin(*base, empty_detail, {Count("n"), Sum(RCol("sale"), "t")}, CustTheta());
  ASSERT_TRUE(md2.ok());
  EXPECT_EQ(md2->num_rows(), base->num_rows());
  for (int64_t r = 0; r < md2->num_rows(); ++r) {
    EXPECT_EQ(md2->Get(r, 1).int64(), 0);
    EXPECT_TRUE(md2->Get(r, 2).is_null());
  }
}

TEST(MdJoinTest, NullThetaRejected) {
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  EXPECT_FALSE(MdJoin(*base, sales, {Count("n")}, nullptr).ok());
}

TEST(MdJoinTest, ThetaReferencingUnknownColumnFails) {
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  EXPECT_FALSE(MdJoin(*base, sales, {Count("n")}, Eq(RCol("cust"), BCol("nope"))).ok());
}

TEST(MdJoinTest, TrueThetaAggregatesEverything) {
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  Result<Table> md = MdJoin(*base, sales, {Count("n")}, True());
  ASSERT_TRUE(md.ok());
  for (int64_t r = 0; r < md->num_rows(); ++r) {
    EXPECT_EQ(md->Get(r, 1).int64(), sales.num_rows());
  }
}

TEST(MdJoinTest, NullKeysNeverMatch) {
  TableBuilder bb({{"cust", DataType::kInt64}});
  bb.AppendRowOrDie({testutil::NUL()});
  bb.AppendRowOrDie({I(1)});
  Table base = std::move(bb).Finish();
  TableBuilder db({{"cust", DataType::kInt64}, {"sale", DataType::kFloat64}});
  db.AppendRowOrDie({testutil::NUL(), testutil::F(5)});
  db.AppendRowOrDie({I(1), testutil::F(7)});
  Table detail = std::move(db).Finish();
  for (bool use_index : {true, false}) {
    MdJoinOptions opts;
    opts.use_index = use_index;
    Result<Table> md = MdJoin(base, detail, {Count("n")}, CustTheta(), opts);
    ASSERT_TRUE(md.ok());
    EXPECT_EQ(md->Get(0, 1).int64(), 0);  // NULL base key matches nothing
    EXPECT_EQ(md->Get(1, 1).int64(), 1);  // NULL detail key matches nothing
  }
}

TEST(GeneralizedMdJoinTest, MatchesSeriesOfMdJoins) {
  // Example 2.2 / 3.1 fused: three independent θs in one scan.
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  auto state_theta = [](const char* st) {
    return And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit(st)));
  };
  std::vector<MdJoinComponent> comps;
  comps.push_back({{Avg(RCol("sale"), "avg_ny")}, state_theta("NY")});
  comps.push_back({{Avg(RCol("sale"), "avg_nj")}, state_theta("NJ")});
  comps.push_back({{Avg(RCol("sale"), "avg_ct")}, state_theta("CT")});
  MdJoinStats stats;
  Result<Table> fused = GeneralizedMdJoin(*base, sales, comps, {}, &stats);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_EQ(stats.detail_rows_scanned, sales.num_rows());  // ONE scan

  // Series evaluation: three separate MD-joins, three scans.
  Result<Table> step = MdJoin(*base, sales, {Avg(RCol("sale"), "avg_ny")},
                              state_theta("NY"));
  ASSERT_TRUE(step.ok());
  step = MdJoin(*step, sales, {Avg(RCol("sale"), "avg_nj")}, state_theta("NJ"));
  ASSERT_TRUE(step.ok());
  step = MdJoin(*step, sales, {Avg(RCol("sale"), "avg_ct")}, state_theta("CT"));
  ASSERT_TRUE(step.ok());
  EXPECT_TRUE(TablesEqualOrdered(*fused, *step));
}

TEST(GeneralizedMdJoinTest, RejectsDuplicateOutputs) {
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  std::vector<MdJoinComponent> comps;
  comps.push_back({{Count("n")}, CustTheta()});
  comps.push_back({{Count("n")}, CustTheta()});
  EXPECT_FALSE(GeneralizedMdJoin(*base, sales, comps).ok());
}

TEST(GeneralizedMdJoinTest, RejectsDependentTheta) {
  // A θ that references the first component's output cannot bind: fusion
  // preconditions (Theorem 4.3) are enforced by construction.
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  std::vector<MdJoinComponent> comps;
  comps.push_back({{Avg(RCol("sale"), "avg_sale")}, CustTheta()});
  comps.push_back({{Count("n")}, And(CustTheta(), Gt(RCol("sale"), BCol("avg_sale")))});
  EXPECT_FALSE(GeneralizedMdJoin(*base, sales, comps).ok());
}

TEST(GeneralizedMdJoinTest, EmptyComponentsRejected) {
  Table sales = testutil::SmallSales();
  Result<Table> base = GroupByBase(sales, {"cust"});
  EXPECT_FALSE(GeneralizedMdJoin(*base, sales, {}).ok());
}

TEST(ReferenceTest, AgreesWithOptimizedOnRandomInputs) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Table sales = testutil::RandomSales(seed, 120);
    Result<Table> base = GroupByBase(sales, {"prod", "month"});
    ExprPtr theta = And(Eq(RCol("prod"), BCol("prod")),
                        Eq(RCol("month"), BCol("month")), Gt(RCol("sale"), Lit(50)));
    std::vector<AggSpec> aggs = {Count("n"), Avg(RCol("sale"), "a")};
    Result<Table> fast = MdJoin(*base, sales, aggs, theta);
    Result<Table> ref = MdJoinReference(*base, sales, aggs, theta);
    ASSERT_TRUE(fast.ok() && ref.ok());
    EXPECT_TRUE(TablesEqualOrdered(*fast, *ref)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mdjoin
