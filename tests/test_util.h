#ifndef MDJOIN_TESTS_TEST_UTIL_H_
#define MDJOIN_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "table/table_builder.h"

namespace mdjoin {
namespace testutil {

inline Value I(int64_t v) { return Value::Int64(v); }
inline Value F(double v) { return Value::Float64(v); }
inline Value S(std::string v) { return Value::String(std::move(v)); }
inline Value ALL() { return Value::All(); }
inline Value NUL() { return Value::Null(); }

/// The paper's running-example Sales table:
/// (cust, prod, day, month, year, state, sale).
inline Schema SalesSchema() {
  return Schema({{"cust", DataType::kInt64},
                 {"prod", DataType::kInt64},
                 {"day", DataType::kInt64},
                 {"month", DataType::kInt64},
                 {"year", DataType::kInt64},
                 {"state", DataType::kString},
                 {"sale", DataType::kFloat64}});
}

/// A small deterministic Sales instance exercised by most integration tests:
/// customers 1..4, products 10/20, months 1..3, years 1997/1999, states
/// NY/NJ/CT/CA.
inline Table SmallSales() {
  TableBuilder b(SalesSchema());
  auto add = [&b](int64_t cust, int64_t prod, int64_t day, int64_t month, int64_t year,
                  const char* state, double sale) {
    b.AppendRowOrDie({I(cust), I(prod), I(day), I(month), I(year), S(state), F(sale)});
  };
  add(1, 10, 1, 1, 1997, "NY", 100);
  add(1, 10, 2, 1, 1997, "NY", 200);
  add(1, 20, 3, 2, 1997, "NJ", 50);
  add(1, 20, 4, 3, 1997, "CT", 70);
  add(2, 10, 5, 1, 1997, "NJ", 400);
  add(2, 20, 6, 2, 1997, "CA", 150);
  add(2, 20, 7, 2, 1997, "NY", 60);
  add(3, 10, 8, 3, 1997, "CT", 90);
  add(3, 20, 9, 3, 1999, "NY", 300);
  add(4, 10, 10, 1, 1999, "CA", 500);
  add(4, 20, 11, 2, 1999, "CA", 20);
  add(4, 10, 12, 3, 1997, "NJ", 80);
  return std::move(b).Finish();
}

/// Random Sales-like table for property tests. Seeded: reproducible.
inline Table RandomSales(uint64_t seed, int64_t rows, int64_t num_cust = 6,
                         int64_t num_prod = 4, int64_t num_month = 4) {
  Random rng(seed);
  const char* states[] = {"NY", "NJ", "CT", "CA", "IL"};
  TableBuilder b(SalesSchema());
  for (int64_t i = 0; i < rows; ++i) {
    b.AppendRowOrDie({I(rng.UniformInt(1, num_cust)), I(rng.UniformInt(1, num_prod) * 10),
                      I(rng.UniformInt(1, 28)), I(rng.UniformInt(1, num_month)),
                      I(rng.UniformInt(1996, 1999)),
                      S(states[rng.Uniform(5)]),
                      F(static_cast<double>(rng.UniformInt(1, 500)))});
  }
  return std::move(b).Finish();
}

}  // namespace testutil
}  // namespace mdjoin

#endif  // MDJOIN_TESTS_TEST_UTIL_H_
