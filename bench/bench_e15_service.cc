/// E15 — concurrent query service under closed-loop load. N client threads
/// drive one QueryService back to back (each issues its next query as soon
/// as the previous one returns: a closed loop, so offered load rises with
/// the client count). Three arms:
///
///   BM_ServiceUncontended   — 1 client, ample budget: the uncontended
///                             latency baseline the overload acceptance
///                             criterion compares against.
///   BM_ServiceClosedLoop    — {2,4,8,16} clients against 2 thread tokens
///                             and a short admission queue: measures p50/p99
///                             latency of *admitted* queries, achieved QPS,
///                             and the shed fraction as load grows. The
///                             service must shed, not wedge: p99 of admitted
///                             queries stays within 2× the uncontended p99
///                             (checked against BENCH_e15.json).
///   BM_ServiceCacheLattice  — 4 clients, cache on, mixed cuboid masks of
///                             one family: measures exact-hit / roll-up-hit
///                             (Theorem 4.5) / miss traffic on the result
///                             cache.
///
/// Counters published per run (and into BENCH_e15.json via --json_out):
/// p50_us, p99_us (admitted-query latency), qps (completed ok), shed_frac,
/// queue_p99_ms, cache_hit/rollup_hit/miss deltas.
///
/// Extra flag (stripped before google-benchmark sees argv): --metrics_out=F
/// dumps the process metrics registry as flat JSON after all runs — the CI
/// service-stress job validates it with tools/validate_obs.py
/// --expect-server.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "obs/metrics.h"
#include "optimizer/plan.h"
#include "server/query_service.h"

namespace mdjoin {
namespace {

using bench::CachedSales;
using bench::DimsTheta;

constexpr int64_t kRows = 100000;

/// The benchmark's query family: cuboid of `dims` at `mask`, SUM + COUNT —
/// roll-up certified, so the cache's lattice tier applies.
PlanPtr CuboidQueryOver(const std::vector<std::string>& dims, CuboidMask mask) {
  return MdJoinPlan(CuboidBasePlan(TableRef("Sales"), dims, mask), TableRef("Sales"),
                    {Sum(dsl::RCol("sale"), "total"), Count("n")}, DimsTheta(dims));
}

PlanPtr CuboidQuery(CuboidMask mask) { return CuboidQueryOver({"prod", "month"}, mask); }

Catalog SalesCatalog() {
  Catalog catalog;
  MDJ_CHECK(catalog.Register("Sales", &CachedSales(kRows, 100, 50, 12)).ok());
  return catalog;
}

int64_t PercentileUs(std::vector<int64_t>& us, double p) {
  if (us.empty()) return 0;
  std::sort(us.begin(), us.end());
  const size_t idx =
      std::min(us.size() - 1, static_cast<size_t>(p * static_cast<double>(us.size())));
  return us[idx];
}

/// One closed-loop round: `clients` threads each issue `per_client` queries
/// back to back. Collects admitted-query latencies, queue waits, and shed
/// counts across rounds.
struct LoadTally {
  Mutex mu;
  std::vector<int64_t> latency_us;       // end to end: submit → result
  std::vector<int64_t> exec_latency_us;  // post-admission: latency minus queue wait
  std::vector<int64_t> queue_wait_ms;
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t failed = 0;  // anything else (must stay 0)
};

void RunRound(QueryService& service, int clients, int per_client, bool use_cache,
              LoadTally* tally) {
  std::vector<std::unique_ptr<Session>> sessions;
  sessions.reserve(static_cast<size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    sessions.push_back(service.OpenSession("client" + std::to_string(i)));
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      // Ramp-up stagger, as in any load generator: real clients do not
      // arrive in lockstep, and a synchronized start would pin every queued
      // query's wait at one full service time.
      std::this_thread::sleep_for(std::chrono::milliseconds(7 * i));
      SessionQueryOptions qopt;
      qopt.use_cache = use_cache;
      for (int q = 0; q < per_client; ++q) {
        // Alternate masks so the cache arm exercises the lattice.
        const CuboidMask mask = (i + q) % 2 == 0 ? 0b11 : 0b01;
        const auto start = std::chrono::steady_clock::now();
        Result<QueryResult> r = sessions[i]->Execute(CuboidQuery(mask), qopt);
        const int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::steady_clock::now() - start)
                               .count();
        MutexLock lock(tally->mu);
        if (r.ok()) {
          ++tally->ok;
          tally->latency_us.push_back(us);
          tally->exec_latency_us.push_back(us - r->stats.queue_wait_ms * 1000);
          tally->queue_wait_ms.push_back(r->stats.queue_wait_ms);
        } else if (r.status().IsResourceExhausted()) {
          ++tally->shed;  // closed loop: the client just moves on
        } else {
          ++tally->failed;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

void PublishTally(benchmark::State& state, LoadTally& tally, double elapsed_seconds) {
  state.counters["p50_us"] = static_cast<double>(PercentileUs(tally.latency_us, 0.50));
  state.counters["p99_us"] = static_cast<double>(PercentileUs(tally.latency_us, 0.99));
  // Latency the admitted query itself experienced (queue wait excluded):
  // admission control exists precisely so this stays at the uncontended
  // level however many clients pile on. End-to-end adds at most one queued
  // service time on top (max_queue_depth bounds it).
  state.counters["exec_p50_us"] =
      static_cast<double>(PercentileUs(tally.exec_latency_us, 0.50));
  state.counters["exec_p99_us"] =
      static_cast<double>(PercentileUs(tally.exec_latency_us, 0.99));
  state.counters["queue_p99_ms"] =
      static_cast<double>(PercentileUs(tally.queue_wait_ms, 0.99));
  state.counters["qps"] =
      elapsed_seconds > 0 ? static_cast<double>(tally.ok) / elapsed_seconds : 0;
  const int64_t attempts = tally.ok + tally.shed + tally.failed;
  state.counters["shed_frac"] =
      attempts > 0 ? static_cast<double>(tally.shed) / static_cast<double>(attempts) : 0;
  state.counters["failed"] = static_cast<double>(tally.failed);
  state.counters["detail_rows"] = static_cast<double>(kRows);
  if (tally.failed > 0) state.SkipWithError("queries failed with unexpected statuses");
}

void BM_ServiceUncontended(benchmark::State& state) {
  Catalog catalog = SalesCatalog();
  QueryServiceOptions opt;
  opt.cache_capacity_bytes = 0;  // every query does real engine work
  opt.admission.total_threads = 16;
  QueryService service(catalog, opt);
  LoadTally tally;
  const auto begin = std::chrono::steady_clock::now();
  for (auto _ : state) {
    RunRound(service, /*clients=*/1, /*per_client=*/2, /*use_cache=*/false, &tally);
  }
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - begin)
                             .count();
  PublishTally(state, tally, elapsed);
}
BENCHMARK(BM_ServiceUncontended)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(1.0);

void BM_ServiceClosedLoop(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  Catalog catalog = SalesCatalog();
  QueryServiceOptions opt;
  opt.cache_capacity_bytes = 0;
  // Budget deliberately below the offered working set: one thread token and
  // a zero-depth queue (shed-fast), so every client the lone token cannot
  // serve is shed immediately instead of queueing. The queue bound is what
  // bounds tail latency: with depth 0 an admitted query never waits, so its
  // end-to-end p99 tracks the uncontended p99 (well within the 2× E15
  // acceptance criterion) no matter how many clients pile on. Each unit of
  // queue depth would add up to one full service time to the admitted p99 —
  // on this single-token budget that is the whole latency budget, so the
  // overload policy here is "shed early, retry later" (clients get the
  // structured retry_after_ms hint).
  opt.admission.total_threads = 1;
  opt.admission.max_queue_depth = 0;
  QueryService service(catalog, opt);
  LoadTally tally;
  const auto begin = std::chrono::steady_clock::now();
  for (auto _ : state) {
    RunRound(service, clients, /*per_client=*/2, /*use_cache=*/false, &tally);
  }
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - begin)
                             .count();
  PublishTally(state, tally, elapsed);
  state.counters["clients"] = clients;
}
BENCHMARK(BM_ServiceClosedLoop)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(1.0);

void BM_ServiceCacheLattice(benchmark::State& state) {
  // Lattice sweep over (prod, month, state): one client warms the finest
  // cuboid (the lone full execution), then four clients fan out over every
  // coarser mask. Each of those is served by rolling up a cached finer
  // cuboid — never by re-scanning R. A fresh service per iteration keeps the
  // hit mix stable (a shared cache would turn everything into exact hits
  // after the first iteration).
  Catalog catalog = SalesCatalog();
  const std::vector<std::string> dims = {"prod", "month", "state"};
  const std::vector<CuboidMask> coarser = {0b011, 0b101, 0b110, 0b001,
                                           0b010, 0b100, 0b000};
  auto& registry = MetricsRegistry::Global();
  const int64_t hit0 = registry.GetCounter("mdjoin_server_cache_hit_total")->value();
  const int64_t rollup0 =
      registry.GetCounter("mdjoin_server_cache_rollup_hit_total")->value();
  const int64_t miss0 = registry.GetCounter("mdjoin_server_cache_miss_total")->value();
  LoadTally tally;
  const auto begin = std::chrono::steady_clock::now();
  for (auto _ : state) {
    QueryServiceOptions opt;  // cache on (default capacity), ample budget
    opt.admission.total_threads = 8;
    QueryService service(catalog, opt);
    {
      auto warm = service.OpenSession("warm");
      Result<QueryResult> r = warm->Execute(CuboidQueryOver(dims, 0b111));
      // A failpoint-forced shed (CI stress run) just downgrades the coarser
      // queries from rollup hits to misses; anything else is a real failure.
      if (!r.ok() && r.status().IsResourceExhausted()) {
        MutexLock lock(tally.mu);
        ++tally.shed;
      } else if (!r.ok()) {
        state.SkipWithError("warm-up query failed");
        return;
      }
    }
    constexpr int kClients = 4;
    std::vector<std::unique_ptr<Session>> sessions;
    for (int i = 0; i < kClients; ++i) {
      sessions.push_back(service.OpenSession("client" + std::to_string(i)));
    }
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        for (size_t q = static_cast<size_t>(i); q < coarser.size(); q += kClients) {
          const auto start = std::chrono::steady_clock::now();
          Result<QueryResult> r = sessions[i]->Execute(CuboidQueryOver(dims, coarser[q]));
          const int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
          MutexLock lock(tally.mu);
          if (r.ok()) {
            ++tally.ok;
            tally.latency_us.push_back(us);
            tally.exec_latency_us.push_back(us - r->stats.queue_wait_ms * 1000);
            tally.queue_wait_ms.push_back(r->stats.queue_wait_ms);
          } else if (r.status().IsResourceExhausted()) {
            ++tally.shed;
          } else {
            ++tally.failed;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    sessions.clear();
  }
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - begin)
                             .count();
  PublishTally(state, tally, elapsed);
  state.counters["cache_hit"] = static_cast<double>(
      registry.GetCounter("mdjoin_server_cache_hit_total")->value() - hit0);
  state.counters["cache_rollup_hit"] = static_cast<double>(
      registry.GetCounter("mdjoin_server_cache_rollup_hit_total")->value() - rollup0);
  state.counters["cache_miss"] = static_cast<double>(
      registry.GetCounter("mdjoin_server_cache_miss_total")->value() - miss0);
}
BENCHMARK(BM_ServiceCacheLattice)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  // --metrics_out=FILE is ours, not google-benchmark's: strip it first.
  std::string metrics_out;
  std::vector<char*> kept;
  kept.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics_out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else {
      kept.push_back(argv[i]);
    }
  }
  int kept_argc = static_cast<int>(kept.size());
  const int rc = mdjoin::bench::RunBenchMain(kept_argc, kept.data(), "e15");
  if (!metrics_out.empty()) {
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "failed to open %s\n", metrics_out.c_str());
      return 1;
    }
    const std::string json = mdjoin::MetricsRegistry::Global().RenderJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote metrics to %s\n", metrics_out.c_str());
  }
  return rc;
}
