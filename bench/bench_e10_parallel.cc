/// E10 — §4.1.2 intra-operator parallelism. Two decompositions:
///   (a) Theorem 4.1 base split: m fragments of B, each scanning all of R
///       on a worker (total scan work m × |R|);
///   (b) detail split: R partitioned, per-fragment partial aggregate states
///       merged via the UDAF Merge callback (one logical scan).
/// plus the scheduling A/B (BM_StaticVsMorselSkew): the same base-split plan
/// run with one work unit per fragment (`morsel_size = |R|`, the legacy
/// static schedule) versus the default morsel-driven schedule, sweeping
/// Zipf skew on the detail's cust/prod dimensions. Under skew the hot cube
/// fragments dominate a static schedule's critical path; the morsel cursor
/// lets idle workers take over their remaining ranges, which the per-worker
/// min/max scan counters make visible.
/// Note: this host exposes a single core, so wall-clock speedup is not
/// expected (static and morsel do identical total work and serialize onto
/// the one core); the counters report the scan-work trade, the dispatch
/// counts, and the per-worker balance that multi-core hosts convert into
/// latency.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "parallel/parallel_mdjoin.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using bench::CachedSales;

constexpr int64_t kRows = 100000;

void BM_SequentialBaseline(benchmark::State& state) {
  const Table& sales = CachedSales(kRows, 2000);
  Table base = *GroupByBase(sales, {"cust"});
  ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};
  for (auto _ : state) {
    Table out = *MdJoin(base, sales, aggs, theta);
    benchmark::DoNotOptimize(out.num_rows());
  }
}
BENCHMARK(BM_SequentialBaseline)->Unit(benchmark::kMillisecond);

void BM_BaseSplitParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const Table& sales = CachedSales(kRows, 2000);
  Table base = *GroupByBase(sales, {"cust"});
  ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};
  ParallelMdJoinStats stats;
  for (auto _ : state) {
    Table out = *ParallelMdJoin(base, sales, aggs, theta, /*num_partitions=*/threads,
                                threads, {}, &stats);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.counters["scan_work_multiplier"] =
      static_cast<double>(stats.total_detail_rows_scanned) / kRows;
}
BENCHMARK(BM_BaseSplitParallel)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_DetailSplitParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const Table& sales = CachedSales(kRows, 2000);
  Table base = *GroupByBase(sales, {"cust"});
  ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};
  ParallelMdJoinStats stats;
  for (auto _ : state) {
    Table out = *ParallelMdJoinDetailSplit(base, sales, aggs, theta,
                                           /*num_partitions=*/threads, threads, {},
                                           &stats);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.counters["scan_work_multiplier"] =
      static_cast<double>(stats.total_detail_rows_scanned) / kRows;
}
BENCHMARK(BM_DetailSplitParallel)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

/// Args: (schedule, zipf×10). schedule 0 = static (one morsel per fragment),
/// 1 = morsel-driven (default size). 1M detail rows against a cust×prod cube
/// base, 8 workers over 8 Theorem 4.1 fragments.
void BM_StaticVsMorselSkew(benchmark::State& state) {
  const bool morsel_driven = state.range(0) == 1;
  const double zipf = static_cast<double>(state.range(1)) / 10.0;
  constexpr int64_t kSkewRows = 1000000;
  constexpr int kThreads = 8;
  const Table& sales = CachedSales(kSkewRows, /*customers=*/500, /*products=*/50,
                                   /*num_months=*/12, zipf);
  Table base = *CubeByBase(sales, {"cust", "prod"});
  ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("prod"), BCol("prod")));
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total"),
                               Min(RCol("sale"), "lo"), Max(RCol("sale"), "hi"),
                               Avg(RCol("sale"), "a")};
  MdJoinOptions options;
  options.morsel_size = morsel_driven ? 0 : sales.num_rows();
  ParallelMdJoinStats stats;
  for (auto _ : state) {
    Table out = *ParallelMdJoin(base, sales, aggs, theta, /*num_partitions=*/kThreads,
                                kThreads, options, &stats);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.counters["zipf_theta"] = zipf;
  state.counters["base_rows"] = static_cast<double>(base.num_rows());
  state.counters["morsels"] = static_cast<double>(stats.morsels_executed);
  state.counters["steal_waits"] = static_cast<double>(stats.steal_waits);
  // Worker balance: 1.0 = perfectly level; static scheduling under skew
  // drives this toward num_partitions / busiest-fragment share.
  state.counters["worker_rows_min"] =
      static_cast<double>(stats.min_worker_detail_rows);
  state.counters["worker_rows_max"] =
      static_cast<double>(stats.max_worker_detail_rows);
  state.counters["scan_work_multiplier"] =
      static_cast<double>(stats.total_detail_rows_scanned) / kSkewRows;
  bench::TagConfig(state, options);
}
BENCHMARK(BM_StaticVsMorselSkew)
    ->ArgPair(0, 0)
    ->ArgPair(1, 0)
    ->ArgPair(0, 8)
    ->ArgPair(1, 8)
    ->ArgPair(0, 11)
    ->ArgPair(1, 11)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  return mdjoin::bench::RunBenchMain(argc, argv, "e10");
}
