/// E10 — §4.1.2 intra-operator parallelism. Two decompositions:
///   (a) Theorem 4.1 base split: m fragments of B, each scanning all of R
///       on a worker (total scan work m × |R|);
///   (b) detail split: R partitioned, per-fragment partial aggregate states
///       merged via the UDAF Merge callback (one logical scan).
/// Note: this host exposes a single core, so wall-clock speedup is not
/// expected; the counters report the scan-work trade the two schemes make
/// and the thread sweep documents scheduling overhead.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "parallel/parallel_mdjoin.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using bench::CachedSales;

constexpr int64_t kRows = 100000;

void BM_SequentialBaseline(benchmark::State& state) {
  const Table& sales = CachedSales(kRows, 2000);
  Table base = *GroupByBase(sales, {"cust"});
  ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};
  for (auto _ : state) {
    Table out = *MdJoin(base, sales, aggs, theta);
    benchmark::DoNotOptimize(out.num_rows());
  }
}
BENCHMARK(BM_SequentialBaseline)->Unit(benchmark::kMillisecond);

void BM_BaseSplitParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const Table& sales = CachedSales(kRows, 2000);
  Table base = *GroupByBase(sales, {"cust"});
  ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};
  ParallelMdJoinStats stats;
  for (auto _ : state) {
    Table out = *ParallelMdJoin(base, sales, aggs, theta, /*num_partitions=*/threads,
                                threads, {}, &stats);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.counters["scan_work_multiplier"] =
      static_cast<double>(stats.total_detail_rows_scanned) / kRows;
}
BENCHMARK(BM_BaseSplitParallel)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_DetailSplitParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const Table& sales = CachedSales(kRows, 2000);
  Table base = *GroupByBase(sales, {"cust"});
  ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};
  ParallelMdJoinStats stats;
  for (auto _ : state) {
    Table out = *ParallelMdJoinDetailSplit(base, sales, aggs, theta,
                                           /*num_partitions=*/threads, threads, {},
                                           &stats);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.counters["scan_work_multiplier"] =
      static_cast<double>(stats.total_detail_rows_scanned) / kRows;
}
BENCHMARK(BM_DetailSplitParallel)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  return mdjoin::bench::RunBenchMain(argc, argv, "e10");
}
