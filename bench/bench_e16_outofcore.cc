/// E16 — out-of-core MD-join: paged block storage against the in-memory
/// operator. The detail relation lives in a paged columnar block file and is
/// streamed through a fixed-budget block cache sized to ~1/10 of the decoded
/// detail bytes, so the working set provably cannot fit — the experiment the
/// storage layer exists for. Arms:
///
///   BM_InMemoryMdJoin   — the resident baseline (same data, same θ): what
///                         the paged arms give up to stay within budget.
///   BM_PagedColdCache   — fresh 10%-budget cache every iteration: every
///                         block faults, decoded residency stays under the
///                         cache budget (resident_peak / cache_budget ≤ 1 —
///                         the bounded-RSS acceptance arm).
///   BM_PagedWarmCache   — cache sized to hold the hot half; steady-state
///                         iterations serve the resident blocks without
///                         faulting (hit_frac published).
///   BM_ZoneMapPruning   — detail sorted on month, θ adds month = 2: zone
///                         maps refute ≥ half the blocks before decode
///                         (pruned_frac published; the A/B test asserts the
///                         same bound).
///   BM_PagedSpill       — partitioned spill over the paged stream: the
///                         constant-memory escape, spill_bytes published.
///
/// Counters per arm: detail_decoded_bytes, cache_budget_bytes,
/// resident_peak, blocks_read/faulted/pruned, hit_frac, pruned_frac,
/// spill_bytes — all folded into BENCH_e16.json via --json_out.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cube/base_tables.h"
#include "storage/block_cache.h"
#include "storage/block_format.h"
#include "storage/out_of_core.h"
#include "storage/paged_table.h"
#include "storage/spill.h"
#include "table/table_ops.h"

namespace mdjoin {
namespace {

using bench::CachedSales;

constexpr int64_t kRows = 200000;
constexpr int64_t kCustomers = 100;
constexpr int64_t kBlockRows = 4096;

/// One block file per variant, written once per process and removed at exit.
struct PagedData {
  std::string path;
  std::unique_ptr<PagedTable> table;
  int64_t decoded_bytes = 0;
  PagedData() = default;
  PagedData(PagedData&&) = default;
  ~PagedData() {
    table.reset();
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
};

PagedData MakePaged(const Table& t, const std::string& tag) {
  PagedData d;
  d.path = std::filesystem::temp_directory_path().string() + "/mdjoin_bench_e16_" +
           tag + "_" + std::to_string(static_cast<long>(::getpid())) + ".mdjb";
  BlockFileOptions options;
  options.block_size_rows = kBlockRows;
  Status s = WriteBlockFile(t, d.path, options);
  MDJ_CHECK(s.ok()) << s.ToString();
  Result<std::unique_ptr<PagedTable>> opened = PagedTable::Open(d.path);
  MDJ_CHECK(opened.ok()) << opened.status().ToString();
  d.table = std::move(*opened);
  for (int b = 0; b < d.table->num_blocks(); ++b) {
    d.decoded_bytes += d.table->ApproxBlockBytes(b);
  }
  return d;
}

const Table& Sales() { return CachedSales(kRows, kCustomers); }

PagedData& PagedSales() {
  static PagedData* d = new PagedData(MakePaged(Sales(), "sales"));
  return *d;
}

/// The zone-map arm's detail: same rows clustered on month, so each block
/// covers a narrow month range and an equality predicate refutes most zones.
PagedData& PagedSalesByMonth() {
  static PagedData* d = [] {
    Result<Table> sorted = SortTableBy(Sales(), {"month"});
    MDJ_CHECK(sorted.ok()) << sorted.status().ToString();
    return new PagedData(MakePaged(*sorted, "bymonth"));
  }();
  return *d;
}

const Table& Base() {
  static Table* base = [] {
    Result<Table> b = GroupByBase(Sales(), {"cust"});
    MDJ_CHECK(b.ok()) << b.status().ToString();
    return new Table(std::move(*b));
  }();
  return *base;
}

std::vector<AggSpec> Aggs() {
  return {Count("n"), Sum(dsl::RCol("sale"), "total")};
}

ExprPtr CustTheta() { return dsl::Eq(dsl::RCol("cust"), dsl::BCol("cust")); }

void BM_InMemoryMdJoin(::benchmark::State& state) {
  const Table& sales = Sales();
  const Table& base = Base();
  const ExprPtr theta = CustTheta();
  for (auto _ : state) {
    Result<Table> out = MdJoin(base, sales, Aggs(), theta);
    MDJ_CHECK(out.ok()) << out.status().ToString();
    ::benchmark::DoNotOptimize(out->num_rows());
  }
  state.counters["detail_rows"] = static_cast<double>(kRows);
  state.counters["detail_decoded_bytes"] =
      static_cast<double>(PagedSales().decoded_bytes);
}
BENCHMARK(BM_InMemoryMdJoin)->MinTime(1.0)->UseRealTime();

void BM_PagedColdCache(::benchmark::State& state) {
  PagedData& paged = PagedSales();
  const Table& base = Base();
  const ExprPtr theta = CustTheta();
  // Detail decoded bytes ≥ 10× the cache budget: the whole point.
  const int64_t budget = paged.decoded_bytes / 10;
  int64_t resident_peak = 0;
  MdJoinStats stats;
  for (auto _ : state) {
    BlockCache::Options copt;
    copt.capacity_bytes = budget;
    BlockCache cache(copt);
    MdJoinOptions md;
    md.block_cache = &cache;
    Result<Table> out = PagedMdJoin(base, *paged.table, Aggs(), theta, md, &stats);
    MDJ_CHECK(out.ok()) << out.status().ToString();
    ::benchmark::DoNotOptimize(out->num_rows());
    resident_peak = std::max(resident_peak, cache.stats().resident_bytes);
  }
  state.counters["detail_rows"] = static_cast<double>(kRows);
  state.counters["detail_decoded_bytes"] = static_cast<double>(paged.decoded_bytes);
  state.counters["cache_budget_bytes"] = static_cast<double>(budget);
  state.counters["resident_peak"] = static_cast<double>(resident_peak);
  state.counters["blocks_read"] = static_cast<double>(stats.blocks_read);
  state.counters["blocks_faulted"] = static_cast<double>(stats.blocks_faulted);
}
BENCHMARK(BM_PagedColdCache)->MinTime(1.0)->UseRealTime();

void BM_PagedWarmCache(::benchmark::State& state) {
  PagedData& paged = PagedSales();
  const Table& base = Base();
  const ExprPtr theta = CustTheta();
  BlockCache::Options copt;
  copt.capacity_bytes = paged.decoded_bytes * 2;
  BlockCache cache(copt);
  MdJoinOptions md;
  md.block_cache = &cache;
  MdJoinStats stats;
  int64_t reads = 0, hits = 0;
  for (auto _ : state) {
    Result<Table> out = PagedMdJoin(base, *paged.table, Aggs(), theta, md, &stats);
    MDJ_CHECK(out.ok()) << out.status().ToString();
    ::benchmark::DoNotOptimize(out->num_rows());
    reads += stats.blocks_read;
    hits += stats.block_cache_hits;
  }
  state.counters["detail_rows"] = static_cast<double>(kRows);
  state.counters["detail_decoded_bytes"] = static_cast<double>(paged.decoded_bytes);
  state.counters["hit_frac"] =
      reads > 0 ? static_cast<double>(hits) / static_cast<double>(reads) : 0;
}
BENCHMARK(BM_PagedWarmCache)->MinTime(1.0)->UseRealTime();

void BM_ZoneMapPruning(::benchmark::State& state) {
  PagedData& paged = PagedSalesByMonth();
  const Table& base = Base();
  const ExprPtr theta =
      dsl::And(CustTheta(), dsl::Eq(dsl::RCol("month"), dsl::Lit(int64_t{2})));
  MdJoinStats stats;
  for (auto _ : state) {
    Result<Table> out = PagedMdJoin(base, *paged.table, Aggs(), theta, {}, &stats);
    MDJ_CHECK(out.ok()) << out.status().ToString();
    ::benchmark::DoNotOptimize(out->num_rows());
  }
  const double total = static_cast<double>(stats.blocks_read + stats.blocks_pruned);
  state.counters["detail_rows"] = static_cast<double>(kRows);
  state.counters["blocks_read"] = static_cast<double>(stats.blocks_read);
  state.counters["blocks_pruned"] = static_cast<double>(stats.blocks_pruned);
  state.counters["pruned_frac"] =
      total > 0 ? static_cast<double>(stats.blocks_pruned) / total : 0;
}
BENCHMARK(BM_ZoneMapPruning)->MinTime(1.0)->UseRealTime();

void BM_PagedSpill(::benchmark::State& state) {
  PagedData& paged = PagedSales();
  const Table& base = Base();
  const ExprPtr theta = CustTheta();
  MdJoinStats stats;
  for (auto _ : state) {
    MdJoinOptions md;
    md.enable_spill = true;
    md.spill_partitions = 8;
    Result<Table> out = PagedMdJoin(base, *paged.table, Aggs(), theta, md, &stats);
    MDJ_CHECK(out.ok()) << out.status().ToString();
    ::benchmark::DoNotOptimize(out->num_rows());
  }
  state.counters["detail_rows"] = static_cast<double>(kRows);
  state.counters["spill_partitions"] = static_cast<double>(stats.spill_partitions);
  state.counters["spill_bytes"] = static_cast<double>(stats.spill_bytes_written);
}
BENCHMARK(BM_PagedSpill)->MinTime(1.0)->UseRealTime();

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  return mdjoin::bench::RunBenchMain(argc, argv, "e16");
}
