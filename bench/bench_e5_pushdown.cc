/// E5 — Theorem 4.2 selection pushdown (Example 4.1): θ's R-only conjuncts
/// (here a year range) evaluated before probing vs inside the residual
/// check. Sweeps the selectivity of the pushed predicate; cost should track
/// the qualifying fraction when pushdown is on and stay flat when off.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using bench::CachedSales;

/// years 1994..1999 uniform => width w selects about w/6 of R.
ExprPtr ThetaWithYearRange(int width) {
  return And(Eq(RCol("prod"), BCol("prod")), Ge(RCol("year"), Lit(1994)),
             Le(RCol("year"), Lit(1994 + width - 1)));
}

void RunCase(benchmark::State& state, bool push) {
  const int width = static_cast<int>(state.range(0));
  const Table& sales = CachedSales(200000, 1000);
  Table base = *GroupByBase(sales, {"prod"});
  MdJoinOptions options;
  options.push_detail_selection = push;
  ExprPtr theta = ThetaWithYearRange(width);
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total")};
  MdJoinStats stats;
  for (auto _ : state) {
    Table out = *MdJoin(base, sales, aggs, theta, options, &stats);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.counters["qualifying_fraction"] =
      static_cast<double>(stats.detail_rows_qualified) /
      static_cast<double>(stats.detail_rows_scanned);
  state.counters["candidate_pairs"] = static_cast<double>(stats.candidate_pairs);
}

void BM_WithPushdown(benchmark::State& state) { RunCase(state, true); }
void BM_WithoutPushdown(benchmark::State& state) { RunCase(state, false); }

BENCHMARK(BM_WithPushdown)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WithoutPushdown)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  return mdjoin::bench::RunBenchMain(argc, argv, "e5");
}
