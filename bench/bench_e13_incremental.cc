/// E13 (extension) — incremental maintenance of a materialized MD-join
/// under appends: MdJoinApplyDelta scans only the delta batch and combines
/// it into the previous result via the Theorem 4.5 roll-up functions, vs.
/// recomputing from the full detail relation. Sweeps the delta fraction;
/// maintenance cost should track |Δ| while recomputation tracks |R|.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/incremental.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "table/table_ops.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using bench::CachedSales;

constexpr int64_t kTotalRows = 200000;

struct Setup {
  Table base;
  Table loaded;    // detail rows already reflected in `materialized`
  Table delta;     // new batch
  Table materialized;
};

Setup MakeSetup(int64_t delta_rows) {
  const Table& all = CachedSales(kTotalRows, 1000);
  Setup s;
  s.base = *GroupByBase(all, {"cust", "month"});
  // Split: first (kTotalRows - delta_rows) loaded, rest is the delta.
  std::vector<int64_t> head, tail;
  for (int64_t r = 0; r < all.num_rows(); ++r) {
    (r < kTotalRows - delta_rows ? head : tail).push_back(r);
  }
  s.loaded = TakeRows(all, head);
  s.delta = TakeRows(all, tail);
  ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("month"), BCol("month")));
  s.materialized = *MdJoin(s.base, s.loaded,
                           {Count("n"), Sum(RCol("sale"), "total"),
                            Max(RCol("sale"), "hi")},
                           theta);
  return s;
}

std::vector<AggSpec> Aggs() {
  return {Count("n"), Sum(RCol("sale"), "total"), Max(RCol("sale"), "hi")};
}

ExprPtr Theta() {
  return And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("month"), BCol("month")));
}

void BM_ApplyDelta(benchmark::State& state) {
  Setup s = MakeSetup(state.range(0));
  MdJoinStats stats;
  for (auto _ : state) {
    Table updated = *MdJoinApplyDelta(s.materialized, s.delta, Aggs(), Theta(), {},
                                      &stats);
    benchmark::DoNotOptimize(updated.num_rows());
  }
  state.counters["delta_rows"] = static_cast<double>(s.delta.num_rows());
  state.counters["rows_scanned"] = static_cast<double>(stats.detail_rows_scanned);
}
BENCHMARK(BM_ApplyDelta)
    ->Arg(2000)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_RecomputeFromScratch(benchmark::State& state) {
  Setup s = MakeSetup(state.range(0));
  Table full = *Concat(s.loaded, s.delta);
  MdJoinStats stats;
  for (auto _ : state) {
    Table recomputed = *MdJoin(s.base, full, Aggs(), Theta(), {}, &stats);
    benchmark::DoNotOptimize(recomputed.num_rows());
  }
  state.counters["rows_scanned"] = static_cast<double>(stats.detail_rows_scanned);
}
BENCHMARK(BM_RecomputeFromScratch)
    ->Arg(2000)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  return mdjoin::bench::RunBenchMain(argc, argv, "e13");
}
