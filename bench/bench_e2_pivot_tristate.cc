/// E2 — Example 2.2 / Figure 1(b): per-customer average sale in NY, NJ, CT.
/// Compares three strategies for the pivoting query:
///   (a) one generalized MD-join (one scan of R);
///   (b) a series of three MD-joins (three scans);
///   (c) the SQL-style plan the paper describes: three filtered GROUP BY
///       subqueries left-outer-joined onto the distinct-customer list.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/generalized.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "ra/filter.h"
#include "ra/group_by.h"
#include "ra/join.h"
#include "table/table_ops.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using bench::CachedSales;

ExprPtr StateTheta(const char* st) {
  return And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("state"), Lit(st)));
}

const std::vector<std::pair<const char*, const char*>>& Pivots() {
  static const auto* kPivots = new std::vector<std::pair<const char*, const char*>>{
      {"NY", "avg_ny"}, {"NJ", "avg_nj"}, {"CT", "avg_ct"}};
  return *kPivots;
}

void BM_GeneralizedMdJoin(benchmark::State& state) {
  const Table& sales = CachedSales(state.range(0), 1000);
  Table base = *GroupByBase(sales, {"cust"});
  std::vector<MdJoinComponent> comps;
  for (const auto& [st, name] : Pivots()) {
    comps.push_back({{Avg(RCol("sale"), name)}, StateTheta(st)});
  }
  MdJoinStats stats;
  for (auto _ : state) {
    Table out = *GeneralizedMdJoin(base, sales, comps, {}, &stats);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.counters["detail_scans"] =
      static_cast<double>(stats.detail_rows_scanned) / state.range(0);
}
BENCHMARK(BM_GeneralizedMdJoin)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);

void BM_SeriesOfMdJoins(benchmark::State& state) {
  const Table& sales = CachedSales(state.range(0), 1000);
  Table base = *GroupByBase(sales, {"cust"});
  int64_t scanned = 0;
  for (auto _ : state) {
    Table step = base.Clone();
    scanned = 0;
    for (const auto& [st, name] : Pivots()) {
      MdJoinStats stats;
      step = *MdJoin(step, sales, {Avg(RCol("sale"), name)}, StateTheta(st), {}, &stats);
      scanned += stats.detail_rows_scanned;
    }
    benchmark::DoNotOptimize(step.num_rows());
  }
  state.counters["detail_scans"] = static_cast<double>(scanned) / state.range(0);
}
BENCHMARK(BM_SeriesOfMdJoins)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);

void BM_SqlOuterJoinBaseline(benchmark::State& state) {
  const Table& sales = CachedSales(state.range(0), 1000);
  for (auto _ : state) {
    Table result = *DistinctOn(sales, {"cust"});
    for (const auto& [st, name] : Pivots()) {
      Table sub = *Filter(sales, Eq(Col("state"), Lit(st)));
      Table grouped = *GroupBy(sub, {"cust"}, {Avg(Col("sale"), name)});
      result = *HashJoin(result, grouped, {"cust"}, {"cust"}, JoinType::kLeftOuter);
    }
    benchmark::DoNotOptimize(result.num_rows());
  }
}
BENCHMARK(BM_SqlOuterJoinBaseline)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);

void BM_SqlCasePivotBaseline(benchmark::State& state) {
  // The strongest single-scan SQL formulation: conditional aggregation,
  // avg(case when state='NY' then sale end). One GROUP BY pass, like the
  // generalized MD-join — the two should be close; the outer-join plan
  // above is what loses.
  const Table& sales = CachedSales(state.range(0), 1000);
  std::vector<AggSpec> aggs;
  for (const auto& [st, name] : Pivots()) {
    aggs.push_back(Avg(CaseWhen({{Eq(Col("state"), Lit(st)), Col("sale")}}, nullptr),
                       name));
  }
  for (auto _ : state) {
    Table result = *GroupBy(sales, {"cust"}, aggs);
    benchmark::DoNotOptimize(result.num_rows());
  }
}
BENCHMARK(BM_SqlCasePivotBaseline)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  return mdjoin::bench::RunBenchMain(argc, argv, "e2");
}
