/// E17 — workload-telemetry overhead and convergence. Three questions:
///
///   1. What does the stats machinery cost when it is off? BM_CubeStatsMode/0
///      runs the E1 cube workload through the plain executor with no
///      feedback store, no history, no analyzed stats — the production
///      default, held to the same < 3% budget as E14's disabled-tracing arm.
///   2. What does it cost when it is on? Mode /1 runs the same plan under
///      EXPLAIN ANALYZE with a live feedback store (estimate annotation +
///      harvest every iteration) and a query-history record per run.
///   3. What does AnalyzeTable itself cost, and does feedback converge?
///      BM_AnalyzeTable prices the offline scan; BM_FeedbackConvergence
///      reports first-run vs steady-state max Q-error as counters
///      (qerr_run1 > qerr_rest is the convergence acceptance).
///
/// Checked-in results: BENCH_e17.json (bench_util.h WriteBenchJson).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/mdjoin.h"
#include "obs/query_profile.h"
#include "optimizer/cost.h"
#include "optimizer/executor.h"
#include "optimizer/plan.h"
#include "stats/feedback.h"
#include "stats/query_log.h"
#include "stats/table_stats.h"

namespace mdjoin {
namespace {

using bench::CachedSales;
using bench::DimsTheta;

PlanPtr CubePlan() {
  return MdJoinPlan(
      CubeBasePlan(TableRef("Sales"), {"prod", "month"}), TableRef("Sales"),
      {Sum(dsl::RCol("sale"), "total"), Count("n")}, DimsTheta({"prod", "month"}));
}

enum StatsMode { kStatsOff = 0, kStatsOn = 1 };

void BM_CubeStatsMode(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const StatsMode mode = static_cast<StatsMode>(state.range(1));
  const Table& sales = CachedSales(rows, 100, 50, 12);
  Catalog catalog;
  if (!catalog.Register("Sales", &sales).ok()) {
    state.SkipWithError("catalog registration failed");
    return;
  }
  PlanPtr plan = CubePlan();

  FeedbackStore feedback;
  QueryHistory history({/*capacity=*/256, /*log_path=*/"", /*slow_query_ms=*/0});
  MdJoinOptions options;
  if (mode == kStatsOn) options.feedback = &feedback;

  double last_qerror = -1;
  for (auto _ : state) {
    if (mode == kStatsOn) {
      QueryProfile profile;
      Result<Table> out = ExplainAnalyze(plan, catalog, options, &profile);
      benchmark::DoNotOptimize(out->num_rows());
      last_qerror = profile.max_qerror;
      QueryRecord record;
      record.fingerprint = PlanFingerprint(plan);
      record.rows = out->num_rows();
      record.max_qerror = profile.max_qerror;
      history.Record(std::move(record));
    } else {
      Result<Table> out = ExecutePlan(plan, catalog, options);
      benchmark::DoNotOptimize(out->num_rows());
    }
  }
  state.counters["detail_rows"] = static_cast<double>(rows);
  if (mode == kStatsOn) {
    state.counters["final_max_qerror"] = last_qerror;
    state.counters["history_records"] =
        static_cast<double>(history.total_recorded());
  }
}
BENCHMARK(BM_CubeStatsMode)
    ->ArgsProduct({{200000, 1000000}, {kStatsOff, kStatsOn}})
    ->Unit(benchmark::kMillisecond);

void BM_AnalyzeTable(benchmark::State& state) {
  // The offline statistics scan: counts + min/max + HLL + an equi-depth
  // histogram per column (the histogram sorts a column copy, which is the
  // dominant term).
  const int64_t rows = state.range(0);
  const Table& sales = CachedSales(rows, 100, 50, 12);
  int64_t ndv_prod = 0;
  for (auto _ : state) {
    Result<TableStats> stats = AnalyzeTable(sales, "Sales");
    if (!stats.ok()) {
      state.SkipWithError("AnalyzeTable failed");
      return;
    }
    ndv_prod = stats->FindColumn("prod")->ndv;
    benchmark::DoNotOptimize(ndv_prod);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["ndv_prod"] = static_cast<double>(ndv_prod);
}
BENCHMARK(BM_AnalyzeTable)
    ->Arg(200000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_FeedbackConvergence(benchmark::State& state) {
  // The convergence property as a measurement: run 1 estimates from the cost
  // model's constants, every later run from harvested cardinalities. The
  // qerr_run1 / qerr_rest counters make the drop visible in BENCH_e17.json.
  const int64_t rows = state.range(0);
  const Table& sales = CachedSales(rows, 100, 50, 12);
  Catalog catalog;
  if (!catalog.Register("Sales", &sales).ok()) {
    state.SkipWithError("catalog registration failed");
    return;
  }
  PlanPtr plan = CubePlan();
  double qerr_run1 = -1, qerr_rest = -1;
  for (auto _ : state) {
    state.PauseTiming();
    FeedbackStore feedback;  // fresh store: each iteration replays run 1..3
    MdJoinOptions options;
    options.feedback = &feedback;
    state.ResumeTiming();
    for (int run = 1; run <= 3; ++run) {
      QueryProfile profile;
      Result<Table> out = ExplainAnalyze(plan, catalog, options, &profile);
      benchmark::DoNotOptimize(out->num_rows());
      if (run == 1) {
        qerr_run1 = profile.max_qerror;
      } else {
        qerr_rest = profile.max_qerror;
      }
    }
  }
  state.counters["qerr_run1"] = qerr_run1;
  state.counters["qerr_rest"] = qerr_rest;
  state.counters["detail_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_FeedbackConvergence)->Arg(200000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  return mdjoin::bench::RunBenchMain(argc, argv, "e17");
}
