#ifndef MDJOIN_BENCH_BENCH_UTIL_H_
#define MDJOIN_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/simd.h"
#include "core/mdjoin.h"
#include "expr/conjuncts.h"
#include "expr/expr.h"
#include "workload/generators.h"

namespace mdjoin {
namespace bench {

/// Cached Sales instances so google-benchmark's repeated setup does not
/// regenerate data. Keyed by (rows, customers, products, months).
inline const Table& CachedSales(int64_t rows, int64_t customers, int64_t products = 100,
                                int num_months = 12, double zipf = 0.0) {
  static std::map<std::string, Table>* cache = new std::map<std::string, Table>();
  std::string key = std::to_string(rows) + "/" + std::to_string(customers) + "/" +
                    std::to_string(products) + "/" + std::to_string(num_months) + "/" +
                    std::to_string(zipf);
  auto it = cache->find(key);
  if (it == cache->end()) {
    SalesConfig config;
    config.num_rows = rows;
    config.num_customers = customers;
    config.num_products = products;
    config.num_months = num_months;
    config.zipf_theta = zipf;
    it = cache->emplace(key, GenerateSales(config)).first;
  }
  return it->second;
}

inline const Table& CachedPayments(int64_t rows, int64_t customers) {
  static std::map<std::string, Table>* cache = new std::map<std::string, Table>();
  std::string key = std::to_string(rows) + "/" + std::to_string(customers);
  auto it = cache->find(key);
  if (it == cache->end()) {
    PaymentsConfig config;
    config.num_rows = rows;
    config.num_customers = customers;
    it = cache->emplace(key, GeneratePayments(config)).first;
  }
  return it->second;
}

/// θ: equality over the given dimensions (base side may hold ALL).
inline ExprPtr DimsTheta(const std::vector<std::string>& dims) {
  std::vector<ExprPtr> eqs;
  for (const std::string& d : dims) {
    eqs.push_back(Expr::Binary(BinaryOp::kEq, Expr::ColumnRef(Side::kBase, d),
                               Expr::ColumnRef(Side::kDetail, d)));
  }
  return CombineConjuncts(std::move(eqs));
}

/// Console reporter that additionally collects one machine-readable record
/// per benchmark run for the harness: name, rows (the "detail_rows" counter
/// when the bench sets it), ns/op, detail-row throughput — plus every
/// user counter the bench set (latency percentiles, shed fractions, QPS,
/// cache hit counts, ...), so bench drivers can publish arbitrary
/// experiment-specific measurements through the same BENCH_*.json pipeline.
class JsonCollectingReporter : public ::benchmark::ConsoleReporter {
 public:
  struct Record {
    std::string name;
    double rows = 0;
    double ns_per_op = 0;
    double rows_per_sec = 0;
    /// All user counters of the run, verbatim (includes "detail_rows").
    std::map<std::string, double> counters;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    ::benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      Record rec;
      rec.name = run.benchmark_name();
      auto it = run.counters.find("detail_rows");
      if (it != run.counters.end()) rec.rows = it->second.value;
      const double iters = run.iterations > 0 ? static_cast<double>(run.iterations) : 1;
      rec.ns_per_op = run.real_accumulated_time / iters * 1e9;
      rec.rows_per_sec = rec.ns_per_op > 0 ? rec.rows * 1e9 / rec.ns_per_op : 0;
      for (const auto& [name, counter] : run.counters) {
        rec.counters[name] = counter.value;
      }
      records_.push_back(std::move(rec));
    }
  }

  const std::vector<Record>& records() const { return records_; }

 private:
  std::vector<Record> records_;
};

/// Publishes an arm's raw-speed configuration as cfg_* counters;
/// WriteBenchJson folds them into the record's "config" block instead of the
/// flat counter list. Call once per benchmark, after the options are final —
/// a record without cfg_* counters is reported at the library defaults
/// (best available SIMD level, dictionary and bytecode on).
inline void TagConfig(::benchmark::State& state, const MdJoinOptions& options) {
  Result<simd::Level> level = simd::ResolveBackend(options.simd);
  state.counters["cfg_simd_level"] =
      level.ok() ? static_cast<double>(*level) : -1.0;
  state.counters["cfg_dict"] = options.use_flat_columns ? 1.0 : 0.0;
  state.counters["cfg_bytecode"] = options.theta_bytecode ? 1.0 : 0.0;
}

/// The git revision the bench binary was built from, injected by
/// bench/CMakeLists.txt at configure time ("unknown" outside a git tree).
#ifndef MDJOIN_GIT_SHA
#define MDJOIN_GIT_SHA "unknown"
#endif

/// Writes the collected records as a JSON array of flat objects. Every record
/// carries the build's git SHA and the harness-supplied wall-clock timestamp
/// so checked-in BENCH_*.json files stay attributable to a revision and run.
inline bool WriteBenchJson(const std::string& path,
                           const std::vector<JsonCollectingReporter::Record>& records,
                           const std::string& timestamp) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"rows\": %.0f, \"ns_per_op\": %.1f, "
                 "\"rows_per_sec\": %.1f",
                 r.name.c_str(), r.rows, r.ns_per_op, r.rows_per_sec);
    for (const auto& [name, value] : r.counters) {
      if (name == "detail_rows") continue;  // already published as "rows"
      if (name.rfind("cfg_", 0) == 0) continue;  // folded into "config" below
      std::fprintf(f, ", \"%s\": %.3f", name.c_str(), value);
    }
    // The arm's raw-speed configuration (TagConfig). Untagged records ran at
    // the library defaults: kAuto resolves to the best level on this host.
    double level_d = static_cast<double>(simd::BestLevel());
    double dict_d = 1.0, bytecode_d = 1.0;
    if (auto c = r.counters.find("cfg_simd_level"); c != r.counters.end())
      level_d = c->second;
    if (auto c = r.counters.find("cfg_dict"); c != r.counters.end()) dict_d = c->second;
    if (auto c = r.counters.find("cfg_bytecode"); c != r.counters.end())
      bytecode_d = c->second;
    std::fprintf(f, ", \"config\": {\"simd\": \"%s\", \"dictionary\": %s, "
                 "\"theta_bytecode\": %s}",
                 level_d < 0 ? "unavailable"
                             : simd::LevelName(static_cast<simd::Level>(
                                   static_cast<int>(level_d))),
                 dict_d != 0 ? "true" : "false", bytecode_d != 0 ? "true" : "false");
    std::fprintf(f, ", \"git_sha\": \"%s\", \"timestamp\": \"%s\"}%s\n", MDJOIN_GIT_SHA,
                 timestamp.c_str(), i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

/// Shared main body for every bench target. Handles `--json_out` /
/// `--json_out=<path>` (default path BENCH_<experiment>.json in the working
/// directory) and `--timestamp=<string>` (wall-clock run timestamp recorded
/// verbatim in every JSON record; the harness passes `date -u +%FT%TZ`),
/// which google-benchmark would otherwise reject as unknown flags — so they
/// are parsed and stripped from argv before Initialize().
inline int RunBenchMain(int argc, char** argv, const std::string& experiment) {
  std::string json_path;
  std::string timestamp;
  bool json = false;
  std::vector<char*> kept;
  kept.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json_out") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json = true;
      json_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--timestamp=", 12) == 0) {
      timestamp = argv[i] + 12;
    } else {
      kept.push_back(argv[i]);
    }
  }
  if (json && json_path.empty()) json_path = "BENCH_" + experiment + ".json";
  int kept_argc = static_cast<int>(kept.size());
  ::benchmark::Initialize(&kept_argc, kept.data());
  if (!json) {
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
  }
  JsonCollectingReporter reporter;
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!WriteBenchJson(json_path, reporter.records(), timestamp)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu records to %s\n", reporter.records().size(),
               json_path.c_str());
  return 0;
}

}  // namespace bench
}  // namespace mdjoin

#endif  // MDJOIN_BENCH_BENCH_UTIL_H_
