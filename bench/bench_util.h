#ifndef MDJOIN_BENCH_BENCH_UTIL_H_
#define MDJOIN_BENCH_BENCH_UTIL_H_

#include <map>
#include <string>
#include <vector>

#include "expr/conjuncts.h"
#include "expr/expr.h"
#include "workload/generators.h"

namespace mdjoin {
namespace bench {

/// Cached Sales instances so google-benchmark's repeated setup does not
/// regenerate data. Keyed by (rows, customers, products, months).
inline const Table& CachedSales(int64_t rows, int64_t customers, int64_t products = 100,
                                int num_months = 12, double zipf = 0.0) {
  static std::map<std::string, Table>* cache = new std::map<std::string, Table>();
  std::string key = std::to_string(rows) + "/" + std::to_string(customers) + "/" +
                    std::to_string(products) + "/" + std::to_string(num_months) + "/" +
                    std::to_string(zipf);
  auto it = cache->find(key);
  if (it == cache->end()) {
    SalesConfig config;
    config.num_rows = rows;
    config.num_customers = customers;
    config.num_products = products;
    config.num_months = num_months;
    config.zipf_theta = zipf;
    it = cache->emplace(key, GenerateSales(config)).first;
  }
  return it->second;
}

inline const Table& CachedPayments(int64_t rows, int64_t customers) {
  static std::map<std::string, Table>* cache = new std::map<std::string, Table>();
  std::string key = std::to_string(rows) + "/" + std::to_string(customers);
  auto it = cache->find(key);
  if (it == cache->end()) {
    PaymentsConfig config;
    config.num_rows = rows;
    config.num_customers = customers;
    it = cache->emplace(key, GeneratePayments(config)).first;
  }
  return it->second;
}

/// θ: equality over the given dimensions (base side may hold ALL).
inline ExprPtr DimsTheta(const std::vector<std::string>& dims) {
  std::vector<ExprPtr> eqs;
  for (const std::string& d : dims) {
    eqs.push_back(Expr::Binary(BinaryOp::kEq, Expr::ColumnRef(Side::kBase, d),
                               Expr::ColumnRef(Side::kDetail, d)));
  }
  return CombineConjuncts(std::move(eqs));
}

}  // namespace bench
}  // namespace mdjoin

#endif  // MDJOIN_BENCH_BENCH_UTIL_H_
