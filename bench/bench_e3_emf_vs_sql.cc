/// E3 — the §5 performance claim (headline experiment). Example 2.5: for
/// each (prod, month) of 1997, count sales between the previous month's and
/// the next month's average sale. The paper reports its MD-join/EMF
/// prototype an order of magnitude faster than a commercial DBMS executing
/// the multi-block SQL. We compare, on the same substrate:
///   (a) the MD-join plan: three chained MD-joins (X: prev avg, Y: next avg,
///       Z: the between-count), each an indexed single scan;
///   (b) the relational plan: per-(prod,month) averages via GROUP BY, two
///       self-joins to attach prev/next averages, σ, then COUNT GROUP BY,
///       outer-joined back to keep empty groups.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "ra/filter.h"
#include "ra/group_by.h"
#include "ra/join.h"
#include "table/table_ops.h"
#include "ra/project.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using bench::CachedSales;

constexpr int64_t kProducts = 100;

void BM_MdJoinPlan(benchmark::State& state) {
  const Table& raw = CachedSales(state.range(0), 1000, kProducts);
  Table sales = *Filter(raw, Eq(Col("year"), Lit(1997)));
  Table base = *GroupByBase(sales, {"prod", "month"});
  ExprPtr prod_eq = Eq(RCol("prod"), BCol("prod"));
  ExprPtr theta_x = And(prod_eq, Eq(RCol("month"), Sub(BCol("month"), Lit(1))));
  ExprPtr theta_y = And(prod_eq, Eq(RCol("month"), Add(BCol("month"), Lit(1))));
  for (auto _ : state) {
    Table step = *MdJoin(base, sales, {Avg(RCol("sale"), "prev_avg")}, theta_x);
    step = *MdJoin(step, sales, {Avg(RCol("sale"), "next_avg")}, theta_y);
    ExprPtr theta_z = And(prod_eq, Eq(RCol("month"), BCol("month")),
                          Gt(RCol("sale"), BCol("prev_avg")),
                          Lt(RCol("sale"), BCol("next_avg")));
    Table out = *MdJoin(step, sales, {Count("between_count")}, theta_z);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.counters["groups"] = static_cast<double>(base.num_rows());
}
BENCHMARK(BM_MdJoinPlan)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(200000)
    ->Arg(500000)
    ->Unit(benchmark::kMillisecond);

void BM_RelationalPlan(benchmark::State& state) {
  const Table& raw = CachedSales(state.range(0), 1000, kProducts);
  Table sales = *Filter(raw, Eq(Col("year"), Lit(1997)));
  for (auto _ : state) {
    // Subquery A: per-(prod, month) averages.
    Table avgs = *GroupBy(sales, {"prod", "month"}, {Avg(Col("sale"), "a")});
    // Self-join 1: attach previous month's average to each sale row.
    Table prev_key = *Project(
        avgs, {{Col("prod"), "prod"}, {Add(Col("month"), Lit(1)), "month"},
               {Col("a"), "prev_avg"}});
    Table with_prev = *HashJoin(sales, prev_key, {"prod", "month"}, {"prod", "month"});
    // Self-join 2: attach next month's average.
    Table next_key = *Project(
        avgs, {{Col("prod"), "prod"}, {Sub(Col("month"), Lit(1)), "month"},
               {Col("a"), "next_avg"}});
    Table with_both =
        *HashJoin(with_prev, next_key, {"prod", "month"}, {"prod", "month"});
    // σ: between the two averages; then the final GROUP BY count.
    Table qualified = *Filter(with_both, And(Gt(Col("sale"), Col("prev_avg")),
                                             Lt(Col("sale"), Col("next_avg"))));
    Table counts = *GroupBy(qualified, {"prod", "month"}, {Count("between_count")});
    // Outer join back onto all groups (empty groups must appear).
    Table base = *DistinctOn(sales, {"prod", "month"});
    Table out = *HashJoin(base, counts, {"prod", "month"}, {"prod", "month"},
                          JoinType::kLeftOuter);
    benchmark::DoNotOptimize(out.num_rows());
  }
}
BENCHMARK(BM_RelationalPlan)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(200000)
    ->Arg(500000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  return mdjoin::bench::RunBenchMain(argc, argv, "e3");
}
