/// E4 — Theorem 4.1 / §4.1.1 in-memory staging: when the base-values table
/// exceeds the memory budget, B is processed in fragments, each fragment
/// costing one full scan of the detail relation. Sweeps the number of passes
/// and reports the measured scan amplification — "a well-defined increase in
/// the number of scans of R".

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "table/table_ops.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using bench::CachedSales;

void BM_MemoryBudgetPasses(benchmark::State& state) {
  const int64_t rows = 100000;
  const int64_t customers = 4096;
  const int passes = static_cast<int>(state.range(0));
  const Table& sales = CachedSales(rows, customers);
  Table base = *GroupByBase(sales, {"cust"});
  MdJoinOptions options;
  options.base_rows_per_pass = (base.num_rows() + passes - 1) / passes;
  ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};
  MdJoinStats stats;
  for (auto _ : state) {
    Table out = *MdJoin(base, sales, aggs, theta, options, &stats);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.counters["passes"] = static_cast<double>(stats.passes_over_detail);
  state.counters["detail_rows_scanned"] = static_cast<double>(stats.detail_rows_scanned);
  state.counters["scan_amplification"] =
      static_cast<double>(stats.detail_rows_scanned) / static_cast<double>(rows);
}
BENCHMARK(BM_MemoryBudgetPasses)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_UnionOfPartitionsOperatorForm(benchmark::State& state) {
  // The same theorem in its algebraic form: ∪ᵢ MD(Bᵢ, R) materialized
  // fragment by fragment (what the parallel evaluator distributes).
  const int64_t rows = 100000;
  const int m = static_cast<int>(state.range(0));
  const Table& sales = CachedSales(rows, 4096);
  Table base = *GroupByBase(sales, {"cust"});
  std::vector<Table> parts = PartitionIntoN(base, m);
  ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};
  for (auto _ : state) {
    int64_t total_rows = 0;
    for (const Table& part : parts) {
      Table piece = *MdJoin(part, sales, aggs, theta);
      total_rows += piece.num_rows();
    }
    benchmark::DoNotOptimize(total_rows);
  }
  state.counters["fragments"] = m;
}
BENCHMARK(BM_UnionOfPartitionsOperatorForm)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  return mdjoin::bench::RunBenchMain(argc, argv, "e4");
}
