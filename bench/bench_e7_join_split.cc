/// E7 — Theorem 4.4: a series of MD-joins over different detail relations
/// (Example 3.3, Sales + Payments per customer/month) rewritten as an
/// equijoin of two independent MD-joins. The theorem's payoff is moving each
/// MD-join to its relation's site; locally it should cost about the same —
/// the bench verifies the rewrite is free, and a third case simulates the
/// distributed shape (per-state-site local MD-joins equi-joined together,
/// the paper's Trenton/Albany scenario, using Theorem 4.2 at each site).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "ra/filter.h"
#include "ra/join.h"
#include "workload/generators.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using bench::CachedPayments;
using bench::CachedSales;

ExprPtr CustMonthTheta() {
  return And(Eq(RCol("cust"), BCol("cust")), Eq(RCol("month"), BCol("month")));
}

void BM_SequentialTwoDetails(benchmark::State& state) {
  const Table& sales = CachedSales(state.range(0), 500);
  const Table& payments = CachedPayments(state.range(0) / 2, 500);
  Table base = *GroupByBase(sales, {"cust", "month"});
  for (auto _ : state) {
    Table step = *MdJoin(base, sales, {Sum(RCol("sale"), "total_sales")},
                         CustMonthTheta());
    Table out = *MdJoin(step, payments, {Sum(RCol("amount"), "total_paid")},
                        CustMonthTheta());
    benchmark::DoNotOptimize(out.num_rows());
  }
}
BENCHMARK(BM_SequentialTwoDetails)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_SplitIntoEquiJoin(benchmark::State& state) {
  const Table& sales = CachedSales(state.range(0), 500);
  const Table& payments = CachedPayments(state.range(0) / 2, 500);
  Table base = *GroupByBase(sales, {"cust", "month"});
  for (auto _ : state) {
    Table left = *MdJoin(base, sales, {Sum(RCol("sale"), "total_sales")},
                         CustMonthTheta());
    Table right = *MdJoin(base, payments, {Sum(RCol("amount"), "total_paid")},
                          CustMonthTheta());
    Table out = *HashJoin(left, right, {"cust", "month"}, {"cust", "month"});
    benchmark::DoNotOptimize(out.num_rows());
  }
}
BENCHMARK(BM_SplitIntoEquiJoin)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatedDistributedSites(benchmark::State& state) {
  // Example 2.2's distributed reading: Sales pre-partitioned by state across
  // sites. Each site evaluates its local MD-join against only its fragment
  // (Theorem 4.2 made the per-site predicate a fragment selection); the
  // coordinator equi-joins the per-site answers (Theorem 4.4).
  const Table& sales = CachedSales(state.range(0), 500, 100, 12);
  Table base = *GroupByBase(sales, {"cust"});
  const char* sites[] = {"NY", "NJ", "CT"};
  // Site-local fragments, built once (the data already lives there).
  std::vector<Table> fragments;
  for (const char* st : sites) {
    fragments.push_back(*Filter(sales, Eq(Col("state"), Lit(st))));
  }
  for (auto _ : state) {
    Table result = base.Clone();
    for (size_t i = 0; i < fragments.size(); ++i) {
      std::string name = std::string("avg_") + sites[i];
      Table local = *MdJoin(base, fragments[i], {Avg(RCol("sale"), name)},
                            Eq(RCol("cust"), BCol("cust")));
      result = *HashJoin(result, local, {"cust"}, {"cust"});
    }
    benchmark::DoNotOptimize(result.num_rows());
  }
}
BENCHMARK(BM_SimulatedDistributedSites)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  return mdjoin::bench::RunBenchMain(argc, argv, "e7");
}
