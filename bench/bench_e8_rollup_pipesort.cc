/// E8 — Theorem 4.5 roll-up and Figure 2's PIPESORT paths. Prints the
/// pipelined-path plan for a 2-dimensional cube (the Figure 2 shape: one
/// pipelined chain plus one re-sorted cuboid), then measures three cube
/// strategies:
///   (a) PIPESORT execution — full cuboid from the detail relation, every
///       other cuboid rolled up from its tree parent (Theorem 4.5);
///   (b) detail-only — every cuboid recomputed from the detail relation;
///   (c) one direct MD-join over the whole cube base (the multi-granularity
///       index, 2^d probes per tuple).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "cube/pipesort.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using bench::CachedSales;
using bench::DimsTheta;

void PrintFigure2() {
  const Table& sales = CachedSales(10000, 100, 50, 12);
  // Figure 2 uses two attributes A, B; here A=prod (50 values), B=month (12).
  CubeLattice lattice = *CubeLattice::Make({"prod", "month"});
  auto cardinality = *CuboidCardinalities(sales, lattice);
  PipesortPlan plan = *BuildPipesortPlan(lattice, cardinality);
  std::printf("E8 / Figure 2: PIPESORT pipelined paths for cube(prod, month):\n%s",
              plan.ToString().c_str());
  std::printf("sorts required: %d (1 initial + %d re-sorts)\n\n", plan.num_sorts(),
              plan.num_sorts() - 1);

  CubeLattice lat3 = *CubeLattice::Make({"prod", "month", "state"});
  auto card3 = *CuboidCardinalities(sales, lat3);
  PipesortPlan plan3 = *BuildPipesortPlan(lat3, card3);
  std::printf("3-dimensional plan for cube(prod, month, state):\n%s",
              plan3.ToString().c_str());
  std::printf("sorts required: %d for %d cuboids\n\n", plan3.num_sorts(), 1 << 3);
}

const std::vector<std::string>& Dims3() {
  static const auto* kDims =
      new std::vector<std::string>{"prod", "month", "state"};
  return *kDims;
}

void BM_PipesortRollup(benchmark::State& state) {
  const Table& sales = CachedSales(state.range(0), 100, 50, 12);
  CubeLattice lattice = *CubeLattice::Make(Dims3());
  auto cardinality = *CuboidCardinalities(sales, lattice);
  PipesortPlan plan = *BuildPipesortPlan(lattice, cardinality);
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total"), Count("n")};
  CubeExecStats stats;
  for (auto _ : state) {
    Table cube = *ExecutePipesortPlan(plan, sales, aggs, &stats);
    benchmark::DoNotOptimize(cube.num_rows());
  }
  state.counters["sorts"] = static_cast<double>(stats.sorts);
  state.counters["rows_scanned"] = static_cast<double>(stats.rows_scanned);
}
BENCHMARK(BM_PipesortRollup)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_DetailOnlyCube(benchmark::State& state) {
  const Table& sales = CachedSales(state.range(0), 100, 50, 12);
  CubeLattice lattice = *CubeLattice::Make(Dims3());
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total"), Count("n")};
  CubeExecStats stats;
  for (auto _ : state) {
    Table cube = *ComputeCubeFromDetailOnly(lattice, sales, aggs, &stats);
    benchmark::DoNotOptimize(cube.num_rows());
  }
  state.counters["sorts"] = static_cast<double>(stats.sorts);
  state.counters["rows_scanned"] = static_cast<double>(stats.rows_scanned);
}
BENCHMARK(BM_DetailOnlyCube)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_DirectMdJoinCube(benchmark::State& state) {
  const Table& sales = CachedSales(state.range(0), 100, 50, 12);
  Table base = *CubeByBase(sales, Dims3());
  ExprPtr theta = DimsTheta(Dims3());
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total"), Count("n")};
  MdJoinStats stats;
  for (auto _ : state) {
    Table cube = *MdJoin(base, sales, aggs, theta, {}, &stats);
    benchmark::DoNotOptimize(cube.num_rows());
  }
  state.counters["index_masks"] = static_cast<double>(stats.index_masks);
  state.counters["candidate_pairs"] = static_cast<double>(stats.candidate_pairs);
}
BENCHMARK(BM_DirectMdJoinCube)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  mdjoin::PrintFigure2();
  return mdjoin::bench::RunBenchMain(argc, argv, "e8");
}
