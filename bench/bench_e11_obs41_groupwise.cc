/// E11 — Observation 4.1: range/value selections on the base-values table
/// transfer through θ's equi conjuncts to the detail relation, enabling
/// group-wise (partition-local) processing — the Ross–Srivastava partitioned
/// cube expressed algebraically (§4.4's final derivation). Compares:
///   (a) the direct MD-join over the full cube base (every tuple probed
///       against every granularity bucket);
///   (b) PartitionedCube: per-value fragments of B against matching
///       fragments of R, plus one full scan for the Di=ALL slice.
/// Also measures the plain Observation 4.1 rewrite on a single range query.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "cube/partitioned_cube.h"
#include "ra/filter.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using bench::CachedSales;
using bench::DimsTheta;

void BM_DirectCube(benchmark::State& state) {
  const Table& sales = CachedSales(state.range(0), 200, 50, 12);
  std::vector<std::string> dims = {"prod", "month"};
  Table base = *CubeByBase(sales, dims);
  ExprPtr theta = DimsTheta(dims);
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total")};
  MdJoinStats stats;
  for (auto _ : state) {
    Table cube = *MdJoin(base, sales, aggs, theta, {}, &stats);
    benchmark::DoNotOptimize(cube.num_rows());
  }
  state.counters["detail_rows_scanned"] = static_cast<double>(stats.detail_rows_scanned);
}
BENCHMARK(BM_DirectCube)->Arg(20000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_PartitionedCubeObs41(benchmark::State& state) {
  const Table& sales = CachedSales(state.range(0), 200, 50, 12);
  std::vector<std::string> dims = {"prod", "month"};
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total")};
  PartitionedCubeStats stats;
  for (auto _ : state) {
    Table cube = *PartitionedCube(sales, dims, aggs, /*partition_dim=*/"month", &stats);
    benchmark::DoNotOptimize(cube.num_rows());
  }
  state.counters["partitions"] = static_cast<double>(stats.partitions);
  state.counters["full_scans"] = static_cast<double>(stats.full_detail_scans);
  state.counters["detail_rows_scanned"] = static_cast<double>(stats.detail_rows_scanned);
}
BENCHMARK(BM_PartitionedCubeObs41)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void RunRangeCase(benchmark::State& state, bool transfer) {
  // Per-customer totals for cust <= K: the base selection either transfers
  // to R (Observation 4.1) or R is scanned in full.
  const Table& sales = CachedSales(100000, 2000);
  const int64_t hi = state.range(0);
  Table base = *GroupByBase(sales, {"cust"});
  Table restricted_base = *Filter(base, Le(Col("cust"), Lit(hi)));
  ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total")};
  MdJoinStats stats;
  if (transfer) {
    Table restricted_detail = *Filter(sales, Le(Col("cust"), Lit(hi)));
    for (auto _ : state) {
      Table out = *MdJoin(restricted_base, restricted_detail, aggs, theta, {}, &stats);
      benchmark::DoNotOptimize(out.num_rows());
    }
  } else {
    for (auto _ : state) {
      Table out = *MdJoin(restricted_base, sales, aggs, theta, {}, &stats);
      benchmark::DoNotOptimize(out.num_rows());
    }
  }
  state.counters["detail_rows_scanned"] = static_cast<double>(stats.detail_rows_scanned);
}

void BM_RangeWithTransfer(benchmark::State& state) { RunRangeCase(state, true); }
void BM_RangeWithoutTransfer(benchmark::State& state) { RunRangeCase(state, false); }

BENCHMARK(BM_RangeWithTransfer)
    ->Arg(100)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RangeWithoutTransfer)
    ->Arg(100)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  return mdjoin::bench::RunBenchMain(argc, argv, "e11");
}
