/// E14 — observability overhead A/B. The tracing/metrics instrumentation in
/// the scan, pass, and parallel layers must be invisible when no trace is
/// being collected: a disabled Span is one relaxed load, metric flushes are
/// one batched fetch_add per scan range. This driver measures the same cube
/// MD-join (the E1 workload) in three modes:
///
///   /0  tracing off       — no trace ever started (the production default;
///                           this is the "instrumentation compiled in but
///                           disabled" arm the < 3% budget applies to)
///   /1  tracing enabled   — a live trace collecting every span/instant
///   /2  explain analyze   — profiled execution through the plan executor
///
/// Acceptance: mode /0 vs the pre-instrumentation baseline (tracked by the
/// checked-in BENCH_obs.json deltas against BENCH_e1.json's equivalent
/// workload) stays within 3%. Mode /1 quantifies the cost of actually
/// collecting a trace, mode /2 the cost of per-operator profiling.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "obs/trace.h"
#include "optimizer/executor.h"
#include "optimizer/plan.h"
#include "table/table_ops.h"

namespace mdjoin {
namespace {

using bench::CachedSales;
using bench::DimsTheta;

enum ObsMode { kTracingOff = 0, kTracingEnabled = 1, kExplainAnalyze = 2 };

void BM_CubeObsMode(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const ObsMode mode = static_cast<ObsMode>(state.range(1));
  const Table& sales = CachedSales(rows, 100, 50, 12);
  std::vector<std::string> dims = {"prod", "month"};
  Table base = *CubeByBase(sales, dims);
  ExprPtr theta = DimsTheta(dims);
  std::vector<AggSpec> aggs = {Sum(dsl::RCol("sale"), "total"), Count("n"),
                               Min(dsl::RCol("sale"), "lo"),
                               Max(dsl::RCol("sale"), "hi"),
                               Avg(dsl::RCol("sale"), "mean")};
  MdJoinStats stats;
  int64_t trace_events = 0;
  for (auto _ : state) {
    // Restart per iteration so the enabled arm pays steady-state appends,
    // not unbounded buffer growth across iterations.
    if (mode == kTracingEnabled) Tracing::Start();
    Table cube = *MdJoin(base, sales, aggs, theta, {}, &stats);
    benchmark::DoNotOptimize(cube.num_rows());
    if (mode == kTracingEnabled) {
      trace_events = Tracing::event_count();
      Tracing::Stop();
    }
  }
  state.counters["base_rows"] = static_cast<double>(base.num_rows());
  state.counters["detail_rows"] = static_cast<double>(rows);
  if (mode == kTracingEnabled) {
    state.counters["trace_events"] = static_cast<double>(trace_events);
  }
}
BENCHMARK(BM_CubeObsMode)
    ->ArgsProduct({{200000, 1000000}, {kTracingOff, kTracingEnabled}})
    ->Unit(benchmark::kMillisecond);

void BM_CubeExplainAnalyze(benchmark::State& state) {
  // Profiled plan execution vs plain: the per-node timing/counter capture.
  const int64_t rows = state.range(0);
  const bool profiled = state.range(1) != 0;
  const Table& sales = CachedSales(rows, 100, 50, 12);
  Catalog catalog;
  if (!catalog.Register("Sales", &sales).ok()) {
    state.SkipWithError("catalog registration failed");
    return;
  }
  PlanPtr plan = MdJoinPlan(
      CubeBasePlan(TableRef("Sales"), {"prod", "month"}), TableRef("Sales"),
      {Sum(dsl::RCol("sale"), "total"), Count("n")},
      DimsTheta({"prod", "month"}));
  for (auto _ : state) {
    if (profiled) {
      QueryProfile profile;
      Result<Table> out = ExplainAnalyze(plan, catalog, {}, &profile);
      benchmark::DoNotOptimize(out->num_rows());
    } else {
      Result<Table> out = ExecutePlan(plan, catalog);
      benchmark::DoNotOptimize(out->num_rows());
    }
  }
  state.counters["detail_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_CubeExplainAnalyze)
    ->ArgsProduct({{200000}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  return mdjoin::bench::RunBenchMain(argc, argv, "obs");
}
