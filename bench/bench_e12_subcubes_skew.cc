/// E12 (extension) — two ablations beyond the paper's explicit experiments:
///
/// (a) Subcube materialization (§4.4/§6 future work): greedy HRU-style view
///     selection over the lattice, materialized with Theorem 4.5 roll-ups.
///     Compares answering every granularity from k materialized views vs.
///     recomputing each from the detail relation.
///
/// (b) Zipf skew: the MD-join's base index degrades gracefully under heavy
///     key skew (one bucket holds a hot key's rows, but probe count per
///     tuple stays 1); sweeps θ_zipf on the customer dimension.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "cube/pipesort.h"
#include "cube/subcube_selection.h"
#include "workload/generators.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using bench::CachedSales;
using bench::DimsTheta;

const std::vector<std::string>& Dims3() {
  static const auto* kDims = new std::vector<std::string>{"prod", "month", "state"};
  return *kDims;
}

void BM_AnswerAllFromSubcubes(benchmark::State& state) {
  const int max_views = static_cast<int>(state.range(0));
  const Table& sales = CachedSales(100000, 200, 50, 12);
  CubeLattice lattice = *CubeLattice::Make(Dims3());
  auto cardinality = *CuboidCardinalities(sales, lattice);
  SubcubeSelection sel = *SelectSubcubesGreedy(lattice, cardinality, max_views);
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total")};
  auto materialized = *MaterializeSubcubes(sel, lattice, cardinality, sales, aggs);
  for (auto _ : state) {
    int64_t total_rows = 0;
    for (CuboidMask target : lattice.AllCuboids()) {
      Table answer = *AnswerFromSubcubes(sel, lattice, cardinality, materialized,
                                         aggs, target);
      total_rows += answer.num_rows();
    }
    benchmark::DoNotOptimize(total_rows);
  }
  state.counters["views"] = static_cast<double>(sel.materialized.size());
  state.counters["benefit"] = sel.total_benefit;
}
BENCHMARK(BM_AnswerAllFromSubcubes)->Arg(1)->Arg(3)->Arg(6)->Unit(
    benchmark::kMillisecond);

void BM_AnswerAllFromDetail(benchmark::State& state) {
  const Table& sales = CachedSales(100000, 200, 50, 12);
  CubeLattice lattice = *CubeLattice::Make(Dims3());
  std::vector<AggSpec> aggs = {Sum(RCol("sale"), "total")};
  ExprPtr theta = DimsTheta(Dims3());
  for (auto _ : state) {
    int64_t total_rows = 0;
    for (CuboidMask target : lattice.AllCuboids()) {
      Table base = *CuboidBase(sales, lattice, target);
      Table answer = *MdJoin(base, sales, aggs, theta);
      total_rows += answer.num_rows();
    }
    benchmark::DoNotOptimize(total_rows);
  }
}
BENCHMARK(BM_AnswerAllFromDetail)->Unit(benchmark::kMillisecond);

void BM_SkewedMdJoin(benchmark::State& state) {
  const double zipf = static_cast<double>(state.range(0)) / 100.0;
  const Table& sales = CachedSales(100000, 2000, 100, 12, zipf);
  Table base = *GroupByBase(sales, {"cust"});
  ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};
  MdJoinStats stats;
  for (auto _ : state) {
    Table out = *MdJoin(base, sales, aggs, theta, {}, &stats);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.counters["zipf_theta"] = zipf;
  state.counters["base_rows"] = static_cast<double>(base.num_rows());
  state.counters["pairs_per_tuple"] =
      static_cast<double>(stats.candidate_pairs) / 100000.0;
}
BENCHMARK(BM_SkewedMdJoin)->Arg(0)->Arg(60)->Arg(120)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  return mdjoin::bench::RunBenchMain(argc, argv, "e12");
}
