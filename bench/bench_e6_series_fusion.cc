/// E6 — Theorem 4.3 series fusion: k independent MD-joins over the same
/// detail relation evaluated as (a) k separate operators — k scans of R —
/// vs (b) one generalized MD-join — a single scan. Sweeps k; the paper's
/// claim is that runtime tracks the number of scans.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/generalized.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "workload/generators.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using bench::CachedSales;

/// Component i: average sale in state i per customer.
std::vector<MdJoinComponent> MakeComponents(int k) {
  std::vector<MdJoinComponent> comps;
  for (int i = 0; i < k; ++i) {
    std::string name = "avg_" + StateName(i);
    comps.push_back({{Avg(RCol("sale"), name)},
                     And(Eq(RCol("cust"), BCol("cust")),
                         Eq(RCol("state"), Lit(StateName(i))))});
  }
  return comps;
}

void BM_FusedGeneralized(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const Table& sales = CachedSales(100000, state.range(1));
  Table base = *GroupByBase(sales, {"cust"});
  std::vector<MdJoinComponent> comps = MakeComponents(k);
  MdJoinStats stats;
  for (auto _ : state) {
    Table out = *GeneralizedMdJoin(base, sales, comps, {}, &stats);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.counters["k"] = k;
  state.counters["scans_of_R"] =
      static_cast<double>(stats.detail_rows_scanned) / 100000.0;
}
BENCHMARK(BM_FusedGeneralized)
    ->ArgsProduct({{1, 2, 4, 8}, {1000, 50000}})
    ->Unit(benchmark::kMillisecond);

void BM_UnfusedSeries(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const Table& sales = CachedSales(100000, state.range(1));
  Table base = *GroupByBase(sales, {"cust"});
  std::vector<MdJoinComponent> comps = MakeComponents(k);
  int64_t scanned = 0;
  for (auto _ : state) {
    Table step = base.Clone();
    scanned = 0;
    for (const MdJoinComponent& comp : comps) {
      MdJoinStats stats;
      step = *MdJoin(step, sales, comp.aggs, comp.theta, {}, &stats);
      scanned += stats.detail_rows_scanned;
    }
    benchmark::DoNotOptimize(step.num_rows());
  }
  state.counters["k"] = k;
  state.counters["scans_of_R"] = static_cast<double>(scanned) / 100000.0;
}
BENCHMARK(BM_UnfusedSeries)
    ->ArgsProduct({{1, 2, 4, 8}, {1000, 50000}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  return mdjoin::bench::RunBenchMain(argc, argv, "e6");
}
