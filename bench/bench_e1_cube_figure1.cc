/// E1 — Figure 1(a): the CUBE BY query of Example 2.1 as one MD-join.
/// Prints the figure's output-table shape on the running example, then
/// measures cube computation via MD-join across data sizes and dimension
/// counts. Counters report the multi-granularity index's ALL-mask buckets
/// (2^d) and per-tuple candidate work.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "ra/filter.h"
#include "table/table_ops.h"

namespace mdjoin {
namespace {

using bench::CachedSales;
using bench::DimsTheta;

void PrintFigure1a() {
  // The paper's Figure 1(a) layout on a small instance: cube over
  // (prod, month, state) with Sum(sale), ALL rows included.
  const Table& sales = CachedSales(200, 8, 4, 4);
  std::vector<std::string> dims = {"prod", "month", "state"};
  Table base = *CubeByBase(sales, dims);
  Table cube = *MdJoin(base, sales, {Sum(dsl::RCol("sale"), "sum_sale")},
                       DimsTheta(dims));
  std::printf("E1 / Figure 1(a): CUBE BY (prod, month, state), Sum(sale) — %lld rows\n",
              static_cast<long long>(cube.num_rows()));
  // CubeByBase emits finest granularity first and the grand total last, the
  // reading order of the paper's figure; show the head and the final row.
  std::printf("%s", cube.ToString(8).c_str());
  Table last(cube.schema());
  last.AppendRowFrom(cube, cube.num_rows() - 1);
  std::printf("last row (grand total):\n%s\n", last.ToString().c_str());
}

void BM_CubeMdJoin(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const int ndims = static_cast<int>(state.range(1));
  const Table& sales = CachedSales(rows, 100, 50, 12);
  std::vector<std::string> all_dims = {"prod", "month", "state"};
  std::vector<std::string> dims(all_dims.begin(), all_dims.begin() + ndims);
  Table base = *CubeByBase(sales, dims);
  ExprPtr theta = DimsTheta(dims);
  std::vector<AggSpec> aggs = {Sum(dsl::RCol("sale"), "total"), Count("n")};
  MdJoinStats stats;
  for (auto _ : state) {
    Table cube = *MdJoin(base, sales, aggs, theta, {}, &stats);
    benchmark::DoNotOptimize(cube.num_rows());
  }
  state.counters["base_rows"] = static_cast<double>(base.num_rows());
  state.counters["index_masks"] = static_cast<double>(stats.index_masks);
  state.counters["candidate_pairs"] = static_cast<double>(stats.candidate_pairs);
  state.counters["detail_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_CubeMdJoin)
    ->ArgsProduct({{10000, 50000, 200000}, {1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

void BM_CubeMdJoinGuarded(benchmark::State& state) {
  // BM_CubeMdJoin with a QueryGuard attached (no limits set, default 4096-row
  // check stride): the delta against the unguarded rows is the whole cost of
  // the guardrail machinery on the hot scan — the budget is < 5%.
  const int64_t rows = state.range(0);
  const int ndims = static_cast<int>(state.range(1));
  const Table& sales = CachedSales(rows, 100, 50, 12);
  std::vector<std::string> all_dims = {"prod", "month", "state"};
  std::vector<std::string> dims(all_dims.begin(), all_dims.begin() + ndims);
  Table base = *CubeByBase(sales, dims);
  ExprPtr theta = DimsTheta(dims);
  std::vector<AggSpec> aggs = {Sum(dsl::RCol("sale"), "total"), Count("n")};
  for (auto _ : state) {
    QueryGuard guard;
    MdJoinOptions options;
    options.guard = &guard;
    Table cube = *MdJoin(base, sales, aggs, theta, options);
    benchmark::DoNotOptimize(cube.num_rows());
  }
  state.counters["base_rows"] = static_cast<double>(base.num_rows());
}
BENCHMARK(BM_CubeMdJoinGuarded)
    ->ArgsProduct({{10000, 50000, 200000}, {1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

void BM_CubeExecutionMode(benchmark::State& state) {
  // The vectorization A/B at cube scale: identical query, scan style toggled
  // via MdJoinOptions::execution_mode. arg1 = 0 → tuple-at-a-time baseline,
  // 1 → block-at-a-time with flat aggregate state. The acceptance target for
  // the vectorized path is ≥2× over the row path at 1M detail rows.
  const int64_t rows = state.range(0);
  const bool vectorized = state.range(1) != 0;
  const Table& sales = CachedSales(rows, 100, 50, 12);
  std::vector<std::string> dims = {"prod", "month"};
  Table base = *CubeByBase(sales, dims);
  ExprPtr theta = DimsTheta(dims);
  std::vector<AggSpec> aggs = {Sum(dsl::RCol("sale"), "total"), Count("n"),
                               Min(dsl::RCol("sale"), "lo"),
                               Max(dsl::RCol("sale"), "hi"),
                               Avg(dsl::RCol("sale"), "mean")};
  MdJoinOptions options;
  options.execution_mode = vectorized ? ExecutionMode::kVectorized : ExecutionMode::kRow;
  MdJoinStats stats;
  for (auto _ : state) {
    Table cube = *MdJoin(base, sales, aggs, theta, options, &stats);
    benchmark::DoNotOptimize(cube.num_rows());
  }
  state.counters["base_rows"] = static_cast<double>(base.num_rows());
  state.counters["blocks"] = static_cast<double>(stats.blocks);
  state.counters["detail_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_CubeExecutionMode)
    ->ArgsProduct({{200000, 1000000}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

/// The raw-speed ladder on the 2-D cube. arg1 picks the arm:
///   0 baseline_pr2 — the vectorized scan as PR 2 shipped it: no SIMD
///     kernels, no dictionary/flat columns, θ through the closure tree.
///   1 scalar_full  — all current machinery pinned to the scalar SIMD level
///     (isolates the algorithmic wins from the instruction-set win).
///   2 auto_full    — best available SIMD level; the headline arm. The
///     acceptance bar is ≥1.5× over arm 0 at 1M rows.
///   3 auto_pred    — auto_full plus detail-only predicates (a
///     dictionary-coded string test and a sale range), so the compare
///     kernels, dense-block path, and fused predicate+aggregate path all
///     fire; fused_blocks/dense_blocks counters make that visible.
///   4 baseline_pred — arm 3's θ under arm 0's configuration: the paired
///     baseline for the predicated A/B (same query, closure-tree string
///     compares and Value-cell updates instead of code compares + kernels).
void BM_CubeRawSpeed(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const int arm = static_cast<int>(state.range(1));
  const Table& sales = CachedSales(rows, 100, 50, 12);
  std::vector<std::string> dims = {"prod", "month"};
  Table base = *CubeByBase(sales, dims);
  ExprPtr theta = DimsTheta(dims);
  if (arm == 3 || arm == 4) {
    theta = dsl::And(std::move(theta),
                     dsl::Ne(dsl::RCol("state"), dsl::Lit("CA")),
                     dsl::Gt(dsl::RCol("sale"), dsl::Lit(25.0)));
  }
  std::vector<AggSpec> aggs = {Sum(dsl::RCol("sale"), "total"), Count("n"),
                               Min(dsl::RCol("sale"), "lo"),
                               Max(dsl::RCol("sale"), "hi"),
                               Avg(dsl::RCol("sale"), "mean")};
  MdJoinOptions options;
  options.execution_mode = ExecutionMode::kVectorized;
  if (arm == 0 || arm == 4) {
    options.simd = simd::Backend::kScalar;
    options.use_flat_columns = false;
    options.theta_bytecode = false;
  } else if (arm == 1) {
    options.simd = simd::Backend::kScalar;
  }
  MdJoinStats stats;
  for (auto _ : state) {
    Table cube = *MdJoin(base, sales, aggs, theta, options, &stats);
    benchmark::DoNotOptimize(cube.num_rows());
  }
  state.counters["arm"] = arm;
  state.counters["base_rows"] = static_cast<double>(base.num_rows());
  state.counters["detail_rows"] = static_cast<double>(rows);
  state.counters["dense_blocks"] = static_cast<double>(stats.dense_blocks);
  state.counters["fused_blocks"] = static_cast<double>(stats.fused_blocks);
  state.counters["kernel_invocations"] =
      static_cast<double>(stats.kernel_invocations);
  state.counters["probe_memo_hits"] =
      static_cast<double>(stats.index_probe_memo_hits);
  bench::TagConfig(state, options);
}
BENCHMARK(BM_CubeRawSpeed)
    ->ArgsProduct({{200000, 1000000}, {0, 1, 2, 3, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_GroupingSetsViaSameOperator(benchmark::State& state) {
  // The decoupling payoff: switching the group definition (cube → unpivot
  // marginals, the [GFC98] use case) changes only the base table.
  const int64_t rows = state.range(0);
  const Table& sales = CachedSales(rows, 100, 50, 12);
  std::vector<std::string> dims = {"prod", "month", "state"};
  Table base = *UnpivotBase(sales, dims);
  ExprPtr theta = DimsTheta(dims);
  std::vector<AggSpec> aggs = {Sum(dsl::RCol("sale"), "total"), Count("n")};
  for (auto _ : state) {
    Table marginals = *MdJoin(base, sales, aggs, theta);
    benchmark::DoNotOptimize(marginals.num_rows());
  }
  state.counters["base_rows"] = static_cast<double>(base.num_rows());
}
BENCHMARK(BM_GroupingSetsViaSameOperator)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  mdjoin::PrintFigure1a();
  return mdjoin::bench::RunBenchMain(argc, argv, "e1");
}
