/// E9 — §4.5 indexing the base-values table: Algorithm 3.1's inner loop
/// visits all of B (nested loop) unless B is hashed on θ's equi part, in
/// which case each detail tuple touches only its relative set Rel(t).
/// Sweeps |B|; the nested loop should degrade linearly in |B| while the
/// indexed evaluator stays flat. A third case measures a computed-key index
/// (Example 2.5's month±1), which plain hash aggregation cannot express.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/mdjoin.h"
#include "cube/base_tables.h"

namespace mdjoin {
namespace {

using namespace mdjoin::dsl;  // NOLINT
using bench::CachedSales;

constexpr int64_t kDetailRows = 20000;  // modest: the nested loop is O(|B|·|R|)

void RunCase(benchmark::State& state, bool use_index) {
  const int64_t customers = state.range(0);
  const Table& sales = CachedSales(kDetailRows, customers);
  Table base = *GroupByBase(sales, {"cust"});
  MdJoinOptions options;
  options.use_index = use_index;
  ExprPtr theta = Eq(RCol("cust"), BCol("cust"));
  std::vector<AggSpec> aggs = {Count("n"), Sum(RCol("sale"), "total")};
  MdJoinStats stats;
  for (auto _ : state) {
    Table out = *MdJoin(base, sales, aggs, theta, options, &stats);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.counters["base_rows"] = static_cast<double>(base.num_rows());
  state.counters["candidate_pairs"] = static_cast<double>(stats.candidate_pairs);
  state.counters["pairs_per_tuple"] = static_cast<double>(stats.candidate_pairs) /
                                      static_cast<double>(kDetailRows);
}

void BM_IndexedProbe(benchmark::State& state) { RunCase(state, true); }
void BM_NestedLoop(benchmark::State& state) { RunCase(state, false); }

BENCHMARK(BM_IndexedProbe)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NestedLoop)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_ComputedKeyIndex(benchmark::State& state) {
  // Example 2.5's previous-month link: the index key on B is the computed
  // expression month - 1; a tuple still probes a single bucket.
  const Table& sales = CachedSales(kDetailRows, state.range(0));
  Table base = *GroupByBase(sales, {"cust", "month"});
  ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")),
                      Eq(RCol("month"), Sub(BCol("month"), Lit(1))));
  std::vector<AggSpec> aggs = {Avg(RCol("sale"), "prev_avg")};
  MdJoinStats stats;
  for (auto _ : state) {
    Table out = *MdJoin(base, sales, aggs, theta, {}, &stats);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.counters["base_rows"] = static_cast<double>(base.num_rows());
  state.counters["pairs_per_tuple"] = static_cast<double>(stats.candidate_pairs) /
                                      static_cast<double>(kDetailRows);
}
BENCHMARK(BM_ComputedKeyIndex)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdjoin

int main(int argc, char** argv) {
  return mdjoin::bench::RunBenchMain(argc, argv, "e9");
}
